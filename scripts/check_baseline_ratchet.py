#!/usr/bin/env python3
"""Baseline ratchets: debt may only shrink, banked perf may only rise.

Two locks, one guard:

**Analysis debt** (``analysis-baseline.json`` vs ``analysis-baseline.lock``).
The baseline exists for *transitional* debt — entries are supposed to
disappear as their exit plans execute, never to accumulate.  The
analyzer itself cannot tell a long-standing entry from one added five
minutes ago, so this guard compares the baseline against a committed
lock file holding the entry set the team has reviewed:

* an entry in the baseline but not in the lock is **new debt** — the
  build fails; fix the finding or get the addition reviewed and run
  ``--update``;
* an entry in the lock but not in the baseline means debt was paid
  down — the run passes and suggests ``--update`` to tighten the lock
  so the entry cannot quietly come back.

**Bench ratchets** (``benchmarks/baselines/BENCH_*.json`` vs
``benchmarks/baselines/ratchets.lock``).  Benchmark keys whose leaf name
starts with ``ratchet_`` are banked performance floors (see
``benchmarks/check_regression.py``).  The committed *baseline* side of
those keys is what this guard ratchets: a committed ratchet value may
never drop below (or vanish from) the locked value, so a
``--update-baselines`` run cannot quietly launder a perf regression into
the baseline — lowering a floor fails here until the lock itself is
re-reviewed and rewritten with ``--update``.

Both lock formats are one line per entry, tab-separated — line-diffable
in review, no JSON nesting to mis-merge:

* analysis: ``rule<TAB>path<TAB>content``
* bench:    ``artifact<TAB>dotted.key<TAB>value``
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINE = REPO_ROOT / "analysis-baseline.json"
DEFAULT_LOCK = REPO_ROOT / "analysis-baseline.lock"
DEFAULT_BENCH_BASELINES = REPO_ROOT / "benchmarks" / "baselines"
DEFAULT_BENCH_LOCK = DEFAULT_BENCH_BASELINES / "ratchets.lock"

#: Leaf-name prefix marking a benchmark key as a banked floor (kept in
#: sync with ``benchmarks/check_regression.py``).
RATCHET_PREFIX = "ratchet_"


def baseline_keys(path: Path) -> list[str]:
    """The baseline's entries as canonical, sorted lock lines."""
    payload = json.loads(path.read_text())
    return sorted(
        "\t".join((entry["rule"], entry["path"], entry["content"]))
        for entry in payload.get("entries", [])
    )


def lock_keys(path: Path) -> list[str]:
    return sorted(
        line for line in path.read_text().splitlines() if line.strip()
    )


def _flatten(value: object, prefix: str = "") -> dict[str, object]:
    """Nested JSON -> ``{dotted.path: scalar}`` (lists indexed)."""
    flat: dict[str, object] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            flat.update(_flatten(value[key], child))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            flat.update(_flatten(item, f"{prefix}[{index}]"))
    else:
        flat[prefix] = value
    return flat


def bench_ratchets(baseline_dir: Path) -> dict[tuple[str, str], float]:
    """Every ``ratchet_*`` key in the committed bench baselines."""
    ratchets: dict[tuple[str, str], float] = {}
    for artifact in sorted(baseline_dir.glob("BENCH_*.json")):
        flat = _flatten(json.loads(artifact.read_text()))
        for path, value in flat.items():
            leaf = path.rsplit(".", 1)[-1]
            if leaf.startswith(RATCHET_PREFIX) and isinstance(
                value, (int, float)
            ):
                ratchets[(artifact.name, path)] = float(value)
    return ratchets


def bench_lock(path: Path) -> dict[tuple[str, str], float]:
    locked: dict[tuple[str, str], float] = {}
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        artifact, key, value = line.split("\t")
        locked[(artifact, key)] = float(value)
    return locked


def write_bench_lock(
    path: Path, ratchets: dict[tuple[str, str], float]
) -> None:
    lines = [
        f"{artifact}\t{key}\t{value:g}"
        for (artifact, key), value in sorted(ratchets.items())
    ]
    path.write_text("".join(line + "\n" for line in lines))


def check_bench_ratchets(
    baseline_dir: Path, lock_path: Path
) -> tuple[int, list[str]]:
    """Returns (exit status, messages) for the bench-ratchet side."""
    ratchets = bench_ratchets(baseline_dir)
    if not lock_path.is_file():
        if not ratchets:
            return 0, []
        return 1, [
            f"error: {lock_path} is missing but the bench baselines carry "
            f"{len(ratchets)} ratchet key(s); run --update to create it"
        ]
    locked = bench_lock(lock_path)
    messages: list[str] = []
    status = 0
    for (artifact, key), floor in sorted(locked.items()):
        current = ratchets.get((artifact, key))
        if current is None:
            messages.append(
                f"bench ratchet: {artifact} lost its banked key {key} "
                f"(locked at {floor:g})"
            )
            status = 1
        elif current < floor:
            messages.append(
                f"bench ratchet: {artifact} {key} dropped to {current:g}, "
                f"below the locked floor {floor:g} — a perf win was "
                "un-banked; restore it or re-lock with --update after review"
            )
            status = 1
    grown = sorted(
        (entry, value)
        for entry, value in ratchets.items()
        if entry not in locked or value > locked[entry]
    )
    if status == 0 and grown:
        messages.append(
            f"bench ratchet: {len(grown)} key(s) rose above (or are new to) "
            "the lock; run --update to bank them"
        )
    if status == 0:
        messages.append(
            f"ok: {len(ratchets)} bench ratchet key(s), none below the lock"
        )
    return status, messages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Fail when analysis-baseline.json grows or a committed bench "
            "ratchet drops."
        ),
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, metavar="FILE",
    )
    parser.add_argument(
        "--lock", type=Path, default=DEFAULT_LOCK, metavar="FILE",
    )
    parser.add_argument(
        "--bench-baselines", type=Path, default=DEFAULT_BENCH_BASELINES,
        metavar="DIR",
    )
    parser.add_argument(
        "--bench-lock", type=Path, default=DEFAULT_BENCH_LOCK,
        metavar="FILE",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite both locks from the current baselines (after review)",
    )
    args = parser.parse_args(argv)

    keys = baseline_keys(args.baseline)
    if args.update:
        args.lock.write_text("".join(key + "\n" for key in keys))
        print(f"locked {len(keys)} baseline entry(ies) in {args.lock.name}")
        ratchets = bench_ratchets(args.bench_baselines)
        write_bench_lock(args.bench_lock, ratchets)
        print(
            f"locked {len(ratchets)} bench ratchet key(s) in "
            f"{args.bench_lock.name}"
        )
        return 0
    if not args.lock.is_file():
        print(
            f"error: {args.lock} is missing; run "
            f"{Path(sys.argv[0]).name} --update to create it"
        )
        return 1
    locked = lock_keys(args.lock)
    added = sorted(set(keys) - set(locked))
    if added:
        print("baseline ratchet: new debt entries are not allowed —")
        for key in added:
            rule, path, content = key.split("\t")
            print(f"  + [{rule}] {path}: {content!r}")
        print(
            "fix the finding (or annotate/pragma it with a rationale); "
            "if the entry was reviewed, re-lock with --update"
        )
        return 1
    removed = sorted(set(locked) - set(keys))
    if removed:
        print(
            f"baseline shrank by {len(removed)} entry(ies); run "
            "--update to tighten the lock"
        )
    print(f"ok: {len(keys)} baseline entry(ies), all within the locked set")
    bench_status, messages = check_bench_ratchets(
        args.bench_baselines, args.bench_lock
    )
    for message in messages:
        print(message)
    return bench_status


if __name__ == "__main__":
    raise SystemExit(main())
