#!/usr/bin/env python3
"""Baseline ratchet: ``analysis-baseline.json`` may only shrink.

The baseline exists for *transitional* debt — entries are supposed to
disappear as their exit plans execute, never to accumulate.  The
analyzer itself cannot tell a long-standing entry from one added five
minutes ago, so this guard compares the baseline against a committed
lock file (``analysis-baseline.lock``) holding the entry set the team
has reviewed:

* an entry in the baseline but not in the lock is **new debt** — the
  build fails; fix the finding or get the addition reviewed and run
  ``--update``;
* an entry in the lock but not in the baseline means debt was paid
  down — the run passes and suggests ``--update`` to tighten the lock
  so the entry cannot quietly come back.

The lock format is one line per entry, tab-separated
``rule<TAB>path<TAB>content`` — line-diffable in review, no JSON
nesting to mis-merge.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINE = REPO_ROOT / "analysis-baseline.json"
DEFAULT_LOCK = REPO_ROOT / "analysis-baseline.lock"


def baseline_keys(path: Path) -> list[str]:
    """The baseline's entries as canonical, sorted lock lines."""
    payload = json.loads(path.read_text())
    return sorted(
        "\t".join((entry["rule"], entry["path"], entry["content"]))
        for entry in payload.get("entries", [])
    )


def lock_keys(path: Path) -> list[str]:
    return sorted(
        line for line in path.read_text().splitlines() if line.strip()
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when analysis-baseline.json grows.",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, metavar="FILE",
    )
    parser.add_argument(
        "--lock", type=Path, default=DEFAULT_LOCK, metavar="FILE",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the lock from the current baseline (after review)",
    )
    args = parser.parse_args(argv)

    keys = baseline_keys(args.baseline)
    if args.update:
        args.lock.write_text("".join(key + "\n" for key in keys))
        print(f"locked {len(keys)} baseline entry(ies) in {args.lock.name}")
        return 0
    if not args.lock.is_file():
        print(
            f"error: {args.lock} is missing; run "
            f"{Path(sys.argv[0]).name} --update to create it"
        )
        return 1
    locked = lock_keys(args.lock)
    added = sorted(set(keys) - set(locked))
    if added:
        print("baseline ratchet: new debt entries are not allowed —")
        for key in added:
            rule, path, content = key.split("\t")
            print(f"  + [{rule}] {path}: {content!r}")
        print(
            "fix the finding (or annotate/pragma it with a rationale); "
            "if the entry was reviewed, re-lock with --update"
        )
        return 1
    removed = sorted(set(locked) - set(keys))
    if removed:
        print(
            f"baseline shrank by {len(removed)} entry(ies); run "
            "--update to tighten the lock"
        )
    print(f"ok: {len(keys)} baseline entry(ies), all within the locked set")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
