"""Integrated Budget Performance Document — the paper's ~1-week application.

"NETMARK was used to extract and integrate information from thousands of
NASA task plans containing the required budget information and compose an
integrated IBPD document."

This example runs that pipeline over a synthetic task-plan corpus: ingest
mixed-format plans, pull every Budget section with one context query,
compose the integrated document with XSLT, and print the roll-ups.

Run:  python examples/ibpd_report.py
"""

from repro.apps import IbpdAssembler
from repro.sgml import serialize
from repro.workloads import format_dollars, generate_task_plans


def main() -> None:
    files, facts = generate_task_plans(count=40, seed=2005)
    assembler = IbpdAssembler()
    loaded = assembler.load_task_plans(files)
    print(f"loaded {loaded} task plans\n")

    result = assembler.assemble()

    print("IBPD totals by NASA center:")
    for center, total in result.total_by_center().items():
        print(f"  {center:<10} {format_dollars(total)}")

    print("\nIBPD totals by fiscal year:")
    for year, total in result.total_by_year().items():
        print(f"  {year}  {format_dollars(total)}")

    truth = sum(fact.total for fact in facts)
    status = "match" if truth == result.grand_total else "MISMATCH"
    print(f"\nGrand total: {format_dollars(result.grand_total)} "
          f"(ground truth {format_dollars(truth)} — {status})")

    print(f"\nComposed document: {result.chapter_count} chapters; "
          "first two shown:")
    xml = serialize(result.document, indent=2)
    shown = 0
    for line in xml.splitlines():
        print(line)
        if "</chapter>" in line:
            shown += 1
            if shown == 2:
                break


if __name__ == "__main__":
    main()
