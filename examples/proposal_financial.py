"""Proposal Financial Management — the paper's ~1-hour application.

Generates a synthetic batch of NASA-style proposals (Word- and PDF-like
formats), ingests them, and answers the aggregate questions the paper
lists: "proposal numbers by NASA division type, dollar amounts requested
etc."  Extraction happens entirely through context queries; the only
application code is two regular expressions.

Run:  python examples/proposal_financial.py
"""

from repro.apps import ProposalFinancialManagement
from repro.workloads import format_dollars, generate_proposals


def main() -> None:
    files, facts = generate_proposals(count=30, seed=2005)
    app = ProposalFinancialManagement()
    loaded = app.load_proposals(files)
    print(f"loaded {loaded} proposals "
          f"(formats: {sorted({f.format for f in files})})\n")

    report = app.build_report()

    print("Proposals by division:")
    for division, count in report.count_by_division().items():
        print(f"  {division:<22} {count}")

    print("\nDollars requested by division:")
    for division, amount in report.amount_by_division().items():
        print(f"  {division:<22} {format_dollars(amount)}")

    print(f"\nTotal requested: {format_dollars(report.total_requested)}")
    truth = sum(fact.amount for fact in facts)
    print(f"Ground truth:    {format_dollars(truth)} "
          f"({'match' if truth == report.total_requested else 'MISMATCH'})")

    print("\nProposals over $2.5M:")
    for record in report.over_threshold(2_500_000):
        print(f"  {record.proposal_id}  {format_dollars(record.amount):>12}  "
              f"{record.principal_investigator} ({record.division})")


if __name__ == "__main__":
    main()
