"""Federated search with capability augmentation — the §2.1.5 walkthrough.

A databank spans three very different sources:

* a full NETMARK node (context + content + phrase natively),
* a legacy keyword-only repository modelled on the NASA Lessons Learned
  Information Server ("this source allows only 'Content search' kinds of
  queries"),
* a structured anomaly tracker (fielded records).

The query ``Context=Title&Content=Engine`` is the paper's own example:
NETMARK pushes the content fragment to the legacy source, fetches only
the candidate documents, and extracts the Title sections client-side.

Run:  python examples/federated_search.py
"""

from repro import Netmark
from repro.federation import ContentOnlySource, Record, StructuredSource
from repro.workloads import generate_lessons


def main() -> None:
    # A full NETMARK node with engineering review documents.
    reviews = Netmark("reviews")
    reviews.ingest(
        "board-42.ndoc",
        "{\\ndoc1}\n"
        "{\\style Heading1}Title\n"
        "{\\style Normal}Engine failure review board report.\n"
        "{\\style Heading1}Findings\n"
        "{\\style Normal}Cracked turbine blade in the main engine.\n",
    )

    # The Lessons Learned stand-in: keyword search only.
    llis = ContentOnlySource("llis", generate_lessons(count=30, seed=2005))

    # A structured anomaly tracker.
    tracker = StructuredSource(
        "tracker",
        [
            Record("A-1", (("Title", "Engine sensor dropout"),
                           ("Severity", "High"))),
            Record("A-2", (("Title", "Window scratch"),
                           ("Severity", "Low"))),
        ],
    )

    hub = Netmark("hub")
    hub.create_databank("engineering", "everything about engines")
    hub.add_source("engineering", reviews.as_source())
    hub.add_source("engineering", llis)
    hub.add_source("engineering", tracker)

    query = "Context=Title&Content=Engine&databank=engineering"
    print(f"Q: {query}\n")
    results = hub.federated_search(query)
    for match in results:
        print(f"  {match.brief()}")

    report = hub.router.last_report
    print(f"\nfan-out: {report.fan_out} sources; matches per source: "
          f"{report.source_matches}")
    print(f"augmented sources: {report.augmented_sources}")
    for name, augmentation in report.augmentation.items():
        print(
            f"  {name}: source prefiltered to "
            f"{augmentation.native_candidates} candidates; client re-parsed "
            f"{augmentation.residual_documents} documents "
            f"({augmentation.residual_nodes} nodes) to apply the Context "
            "half of the query"
        )


if __name__ == "__main__":
    main()
