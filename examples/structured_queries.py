"""Structured access: the SQL surface and context aliases.

Two extensions beyond the quickstart:

1. The paper's "NETMARK Extensible APIs" offer ODBC-style access — this
   reproduction backs that with a SQL subset over the same ORDBMS that
   stores the XML nodes.  You can query the generated schema (the DOC and
   XML tables of Fig 5) directly, or keep ordinary application tables in
   the same database.
2. Context aliases: the lean, one-line answer to §4's virtual-view
   discussion — "Budget" can stand for every vocabulary the sources use.

Run:  python examples/structured_queries.py
"""

from repro import Netmark
from repro.ordbms import execute_sql


def main() -> None:
    nm = Netmark("sql-demo")
    nm.ingest("plan-a.md", "# Budget\nalpha task dollars\n# Schedule\nQ1\n")
    nm.ingest("plan-b.md", "# Cost Details\nbeta task dollars\n")
    nm.ingest("plan-c.ndoc",
              "{\\ndoc1}\n{\\style Heading1}Funding\n"
              "{\\style Normal}gamma task dollars\n")

    database = nm.database  # the ORDBMS underneath the XML store

    print("The generated schema itself is queryable (Fig 5's two tables):")
    for row in execute_sql(
        database,
        "SELECT format, COUNT(*) AS docs FROM doc GROUP BY format",
    ).rows:
        print(f"  {row['FORMAT']:<10} {row['DOCS']} document(s)")

    print("\nNode statistics straight off the XML table:")
    for row in execute_sql(
        database,
        "SELECT nodetype, COUNT(*) AS n FROM xml GROUP BY nodetype "
        "ORDER BY nodetype",
    ).rows:
        print(f"  nodetype {row['NODETYPE']}: {row['N']} rows")

    print("\nText search through SQL (CONTAINS lowers onto the text index):")
    for row in execute_sql(
        database,
        "SELECT doc_id, nodedata FROM xml WHERE CONTAINS(nodedata, 'dollars')",
    ).rows:
        print(f"  doc {row['DOC_ID']}: {row['NODEDATA']!r}")

    print("\nApplication tables live alongside the store:")
    execute_sql(database, "CREATE TABLE owners (doc VARCHAR PRIMARY KEY, "
                          "who VARCHAR)")
    execute_sql(database, "INSERT INTO owners (doc, who) VALUES "
                          "('plan-a.md', 'Maluf'), ('plan-b.md', 'Bell')")
    rows = execute_sql(
        database,
        "SELECT doc.file_name, owners.who FROM doc "
        "JOIN owners ON doc.file_name = owners.doc ORDER BY file_name",
    ).rows
    for row in rows:
        print(f"  {row['FILE_NAME']} is owned by {row['WHO']}")

    print("\nContext aliases span the three budget vocabularies:")
    print("  before alias:",
          [m.file_name for m in nm.search("Context=Budget")])
    nm.define_context_alias("Budget", "Budget", "Cost Details", "Funding")
    print("  after alias: ",
          [m.file_name for m in nm.search("Context=Budget")])

    # Intelligent storage survives restarts: snapshot and restore.
    from repro.store import XmlStore

    snapshot = nm.store.dump()
    restored = XmlStore.restore(snapshot)
    print(f"\nSnapshot: {len(snapshot.splitlines())} lines; restored store "
          f"holds {len(restored)} documents, "
          f"{restored.node_count} nodes — identical to the original "
          f"({len(nm.store)} documents, {nm.store.node_count} nodes).")


if __name__ == "__main__":
    main()
