"""Quickstart: the complete NETMARK flow in one page.

Drop documents of different formats into a NETMARK node, let the daemon
ingest them, run the paper's three kinds of XDB queries, and compose the
results into a new document with XSLT.

Run:  python examples/quickstart.py
"""

from repro import Netmark

WORD_DOC = r"""{\ndoc1}
{\style Title}Shuttle Program Review
{\style Heading1}Technology Gap
{\style Normal}The gap is **shrinking** quickly across programs.
{\style Heading1}Budget
{\style Normal}We request funds for shuttle engine work.
"""

PDF_DOC = """%NPDF-1.0
[F24] Program Assessment
[F14] Technology Gap
[F10] Margins hold steady; nothing is shrinking on this side.
[F14] Cost Details
[F10] Shuttle budget aggregated per center.
"""

SPREADSHEET = "Item,FY04,FY05\nTravel,\"10,000\",12000\nEquipment,5000,7000\n"

REPORT_XSL = """<xsl:stylesheet>
  <xsl:template match="/">
    <report query="{results/@query}">
      <xsl:apply-templates select="results/result"/>
    </report>
  </xsl:template>
  <xsl:template match="result">
    <chapter doc="{@doc}">
      <heading><xsl:value-of select="context"/></heading>
      <body><xsl:value-of select="normalize-space(content)"/></body>
    </chapter>
  </xsl:template>
</xsl:stylesheet>"""


def main() -> None:
    nm = Netmark("quickstart")

    # 1. Ingest: drag files into the WebDAV folder, wake the daemon.
    nm.drop("review.ndoc", WORD_DOC)
    nm.drop("assessment.npdf", PDF_DOC)
    nm.drop("budget.csv", SPREADSHEET)
    records = nm.poll()
    print(f"ingested {sum(1 for r in records if r.ok)} documents "
          f"({sum(r.node_count for r in records)} nodes, "
          f"{nm.store.table_count} tables — always two)\n")

    # 2. Query: the paper's three query kinds.
    for query in (
        "Context=Technology Gap",             # context search
        "Content=Shuttle",                    # content (keyword) search
        "Context=Technology Gap&Content=Shrinking",  # combined
        "Context=Travel",                     # hits the spreadsheet too
    ):
        print(f"Q: {query}")
        for match in nm.search(query):
            print(f"   {match.brief()}")
        print()

    # 3. Compose: format results into a new document via XSLT (Fig 7).
    nm.install_stylesheet("report.xsl", REPORT_XSL)
    response = nm.http_get("/search?Context=Budget|Cost Details&xslt=report.xsl")
    print("Composed report:")
    print(response.body)


if __name__ == "__main__":
    main()
