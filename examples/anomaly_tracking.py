"""Anomaly Tracking — integrated querying of two record databases.

The two trackers use different vocabularies for the same concepts
(Description vs Summary, Severity vs Criticality).  NETMARK spans the
mismatch with context *alternatives* in the query — no virtual views, no
schema mappings (the §4 discussion).

Run:  python examples/anomaly_tracking.py
"""

from repro.apps import AnomalyTrackingApp
from repro.workloads import generate_tracker_a, generate_tracker_b


def main() -> None:
    app = AnomalyTrackingApp(
        tracker_a=generate_tracker_a(count=25, seed=2005),
        tracker_b=generate_tracker_b(count=25, seed=2006),
    )
    print(f"databank assembled in {app.netmark.assembly_steps} declarative "
          "steps (create databank + two source lines)\n")

    for keyword in ("engine", "avionics"):
        hits = app.search_descriptions(keyword)
        print(f"Anomalies mentioning {keyword!r}: {len(hits)}")
        for hit in hits[:4]:
            print(f"  [{hit.tracker}] {hit.record_key}: "
                  f"{hit.description[:70]}")
        print()

    high = app.all_with_severity("High")
    print(f"High-severity/criticality anomalies across both trackers: "
          f"{len(high)}")
    for hit in high[:5]:
        print(f"  [{hit.tracker}] {hit.record_key}: {hit.description[:70]}")

    print("\nRaw XDB escape hatch — open items in tracker B:")
    for match in app.raw_search("Context=Disposition&Content=Open"):
        print(f"  {match.file_name}")


if __name__ == "__main__":
    main()
