"""Crash matrix — kill the store at every WAL write and recover.

The durability claim behind DESIGN.md §9: wherever the process dies, a
reopen lands on a transaction boundary — the store either holds a
document completely or not at all, with physical ROWIDs preserved — and
the recovered store passes a full fsck.  This bench runs a small ingest
workload once per (fault kind × WAL append) and reports the matrix; the
fsck report of the last recovered store lands in the JSON artifact so CI
can archive it.
"""

from conftest import print_table, write_artifact

from repro.ordbms import MemoryLogDevice
from repro.resilience import crash_matrix
from repro.store import XmlStore, check_store

DOCS = (
    ("memo.md", "# Memo\n\nShip the crash matrix.\n"),
    ("notes.md", "# Notes\n\n- torn tails\n- losers\n"),
    ("plan.md", "# Plan\n\nRecover, then verify.\n"),
)


def observable_state(store: XmlStore) -> tuple:
    """What a client can see: the catalog plus total live node count."""
    catalog = tuple(
        (entry.doc_id, entry.file_name) for entry in store.documents()
    )
    return (catalog, store.node_count)


def test_report_crash_matrix(benchmark):
    def report():
        boundaries: list[tuple] = []

        def run(device):
            store = XmlStore.open(device)
            boundaries.append(observable_state(store))
            for name, text in DOCS:
                store.store_text(text, name)
                boundaries.append(observable_state(store))

        matrix = crash_matrix(MemoryLogDevice, run)
        per_kind: dict[str, dict[str, int]] = {}
        last_report = None
        for point in matrix.points:
            tally = per_kind.setdefault(
                point.kind, {"points": 0, "boundary": 0, "fsck_clean": 0}
            )
            tally["points"] += 1
            assert point.crashed, (
                f"append {point.index} ({point.kind}) did not crash"
            )
            recovered = XmlStore.open(point.device)
            if observable_state(recovered) in boundaries:
                tally["boundary"] += 1
            last_report = check_store(recovered.database)
            if last_report.ok:
                tally["fsck_clean"] += 1
        print_table(
            f"Crash matrix: {matrix.total_appends} WAL appends x "
            f"{len(per_kind)} fault kinds",
            ["kind", "crash points", "at a boundary", "fsck clean"],
            [
                [kind, t["points"], t["boundary"], t["fsck_clean"]]
                for kind, t in sorted(per_kind.items())
            ],
        )
        write_artifact(
            "BENCH_crash_matrix.json",
            "crash_matrix",
            {
                "documents": len(DOCS),
                "wal_appends": matrix.total_appends,
                "boundaries": len(boundaries),
                "kinds": {
                    kind: tally for kind, tally in sorted(per_kind.items())
                },
                "last_fsck_report": (
                    last_report.as_dict() if last_report else None
                ),
            },
        )
        # The property itself: every crash point recovered to a boundary
        # and every recovered store is internally consistent.
        for kind, tally in per_kind.items():
            assert tally["boundary"] == tally["points"], kind
            assert tally["fsck_clean"] == tally["points"], kind

    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_no_fault_baseline(benchmark):
    def report():
        def run(device):
            store = XmlStore.open(device)
            for name, text in DOCS:
                store.store_text(text, name)

        matrix = crash_matrix(MemoryLogDevice, run, kinds=())
        reopened = XmlStore.open(matrix.baseline.target)
        report_ = check_store(reopened.database)
        print_table(
            "Crash matrix baseline: clean run, clean reopen",
            ["wal appends", "documents", "nodes", "fsck"],
            [[
                matrix.total_appends,
                len(reopened),
                reopened.node_count,
                "clean" if report_.ok else "VIOLATIONS",
            ]],
        )
        write_artifact(
            "BENCH_crash_matrix.json",
            "baseline",
            {
                "wal_appends": matrix.total_appends,
                "documents": len(reopened),
                "nodes": reopened.node_count,
                "fsck_ok": report_.ok,
            },
        )
        assert len(reopened) == len(DOCS)
        assert report_.ok

    benchmark.pedantic(report, rounds=1, iterations=1)


def test_bench_recovery_reopen(benchmark):
    """Time a reopen-with-recovery of the full workload's log."""
    device = MemoryLogDevice()
    store = XmlStore.open(device)
    for name, text in DOCS:
        store.store_text(text, name)
    log_text = device.read_log()
    checkpoint = device.load_checkpoint()

    def reopen():
        fresh = MemoryLogDevice()
        fresh.append(log_text)
        if checkpoint is not None:
            fresh.save_checkpoint(checkpoint)
        return XmlStore.open(fresh)

    recovered = benchmark(reopen)
    assert len(recovered) == len(DOCS)
