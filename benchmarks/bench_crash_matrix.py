"""Crash matrix — kill the store at every WAL write and recover.

The durability claim behind DESIGN.md §9: wherever the process dies, a
reopen lands on a transaction boundary — the store either holds a
document completely or not at all, with physical ROWIDs preserved — and
the recovered store passes a full fsck.  This bench runs a small ingest
workload once per (fault kind × WAL append) and reports the matrix; the
fsck report of the last recovered store lands in the JSON artifact so CI
can archive it.

The cluster half (DESIGN.md §12) lifts the same idea to whole nodes:
kill the coordinator or a follower at every append of its device, drive
a network partition through an election, and crash the 2PC coordinator
at every protocol gate — reporting failover ticks, replication lag at
the kill, and the committed-ingest loss count (which must be zero,
everywhere, always) into ``BENCH_cluster_failover.json``.
"""

from conftest import print_table, write_artifact

from repro.cluster.harness import (
    coordinator_kill_matrix,
    follower_kill_matrix,
    partition_drill,
    twopc_crash_matrix,
)
from repro.ordbms import MemoryLogDevice
from repro.resilience import crash_matrix
from repro.store import XmlStore, check_store

DOCS = (
    ("memo.md", "# Memo\n\nShip the crash matrix.\n"),
    ("notes.md", "# Notes\n\n- torn tails\n- losers\n"),
    ("plan.md", "# Plan\n\nRecover, then verify.\n"),
)


def observable_state(store: XmlStore) -> tuple:
    """What a client can see: the catalog plus total live node count."""
    catalog = tuple(
        (entry.doc_id, entry.file_name) for entry in store.documents()
    )
    return (catalog, store.node_count)


def test_report_crash_matrix(benchmark):
    def report():
        boundaries: list[tuple] = []

        def run(device):
            store = XmlStore.open(device)
            boundaries.append(observable_state(store))
            for name, text in DOCS:
                store.store_text(text, name)
                boundaries.append(observable_state(store))

        matrix = crash_matrix(MemoryLogDevice, run)
        per_kind: dict[str, dict[str, int]] = {}
        last_report = None
        for point in matrix.points:
            tally = per_kind.setdefault(
                point.kind, {"points": 0, "boundary": 0, "fsck_clean": 0}
            )
            tally["points"] += 1
            assert point.crashed, (
                f"append {point.index} ({point.kind}) did not crash"
            )
            recovered = XmlStore.open(point.device)
            if observable_state(recovered) in boundaries:
                tally["boundary"] += 1
            last_report = check_store(recovered.database)
            if last_report.ok:
                tally["fsck_clean"] += 1
        print_table(
            f"Crash matrix: {matrix.total_appends} WAL appends x "
            f"{len(per_kind)} fault kinds",
            ["kind", "crash points", "at a boundary", "fsck clean"],
            [
                [kind, t["points"], t["boundary"], t["fsck_clean"]]
                for kind, t in sorted(per_kind.items())
            ],
        )
        write_artifact(
            "BENCH_crash_matrix.json",
            "crash_matrix",
            {
                "documents": len(DOCS),
                "wal_appends": matrix.total_appends,
                "boundaries": len(boundaries),
                "kinds": {
                    kind: tally for kind, tally in sorted(per_kind.items())
                },
                "last_fsck_report": (
                    last_report.as_dict() if last_report else None
                ),
            },
        )
        # The property itself: every crash point recovered to a boundary
        # and every recovered store is internally consistent.
        for kind, tally in per_kind.items():
            assert tally["boundary"] == tally["points"], kind
            assert tally["fsck_clean"] == tally["points"], kind

    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_no_fault_baseline(benchmark):
    def report():
        def run(device):
            store = XmlStore.open(device)
            for name, text in DOCS:
                store.store_text(text, name)

        matrix = crash_matrix(MemoryLogDevice, run, kinds=())
        reopened = XmlStore.open(matrix.baseline.target)
        report_ = check_store(reopened.database)
        print_table(
            "Crash matrix baseline: clean run, clean reopen",
            ["wal appends", "documents", "nodes", "fsck"],
            [[
                matrix.total_appends,
                len(reopened),
                reopened.node_count,
                "clean" if report_.ok else "VIOLATIONS",
            ]],
        )
        write_artifact(
            "BENCH_crash_matrix.json",
            "baseline",
            {
                "wal_appends": matrix.total_appends,
                "documents": len(reopened),
                "nodes": reopened.node_count,
                "fsck_ok": report_.ok,
            },
        )
        assert len(reopened) == len(DOCS)
        assert report_.ok

    benchmark.pedantic(report, rounds=1, iterations=1)


def _failover_section(matrix) -> dict:
    """The gated summary of one node-kill matrix (all work counters)."""
    survived = [p for p in matrix.points if not p.died_at_boot]
    lags = [p.lag_at_kill for p in survived if p.lag_at_kill is not None]
    return {
        "device_appends": matrix.total_appends,
        "kill_points": len(matrix.points),
        "boot_kills": len(matrix.points) - len(survived),
        "acked_per_run": matrix.baseline_acked,
        "lost_total": matrix.total_lost,
        "all_converged": matrix.all_converged,
        "all_fsck_clean": matrix.all_fsck_clean,
        "max_failover_ticks": matrix.max_failover_ticks,
        "max_lag_at_kill": max(lags) if lags else 0,
    }


def test_report_cluster_failover_matrix(benchmark):
    """Kill a whole node at every WAL append; nothing acked may vanish."""

    def report():
        coordinator = coordinator_kill_matrix()
        follower = follower_kill_matrix()
        rows = []
        for label, matrix in (
            ("coordinator", coordinator),
            ("follower", follower),
        ):
            section = _failover_section(matrix)
            rows.append(
                [
                    label,
                    section["kill_points"],
                    section["lost_total"],
                    "yes" if section["all_converged"] else "NO",
                    "yes" if section["all_fsck_clean"] else "NO",
                    section["max_failover_ticks"],
                    section["max_lag_at_kill"],
                ]
            )
        print_table(
            "Cluster failover matrix: node killed at every device append",
            [
                "victim", "kill points", "acked lost", "converged",
                "fsck clean", "max failover ticks", "max lag at kill",
            ],
            rows,
        )
        write_artifact(
            "BENCH_cluster_failover.json",
            "node_kill",
            {
                "coordinator": _failover_section(coordinator),
                "follower": _failover_section(follower),
            },
        )
        # The headline guarantee, asserted over every kill point.
        assert coordinator.total_lost == 0
        assert follower.total_lost == 0
        assert coordinator.all_converged and follower.all_converged
        assert coordinator.all_fsck_clean and follower.all_fsck_clean
        # Follower deaths never trigger elections.
        assert follower.max_failover_ticks == 0

    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_cluster_partition_and_twopc(benchmark):
    """Minority-coordinator partition + 2PC coordinator crash gates."""

    def report():
        drill = partition_drill()
        twopc = twopc_crash_matrix()
        print_table(
            "Partition drill: coordinator isolated in the minority",
            [
                "demoted", "winner", "refused in minority", "acked",
                "lost", "converged", "failover ticks",
            ],
            [[
                drill.demoted,
                drill.winner,
                drill.refused_in_minority,
                drill.acked_total,
                drill.lost,
                "yes" if drill.converged else "NO",
                drill.failover_ticks,
            ]],
        )
        print_table(
            "2PC crash matrix: coordinator killed at every gate",
            ["gate", "occurrence", "atomic", "committed everywhere"],
            [
                [
                    point.operation,
                    point.occurrence,
                    "yes" if point.atomic else "NO",
                    "yes" if point.committed_everywhere else "no",
                ]
                for point in twopc.points
            ],
        )
        write_artifact(
            "BENCH_cluster_failover.json",
            "partition",
            {
                "demoted": drill.demoted,
                "winner": drill.winner,
                "refused_in_minority": drill.refused_in_minority,
                "acked_total": drill.acked_total,
                "lost": drill.lost,
                "converged": drill.converged,
                "fsck_clean": drill.fsck_clean,
                "failover_ticks": drill.failover_ticks,
            },
        )
        write_artifact(
            "BENCH_cluster_failover.json",
            "two_phase_commit",
            {
                "crash_points": len(twopc.points),
                "all_atomic": twopc.all_atomic,
                "committed_everywhere": sum(
                    1 for p in twopc.points if p.committed_everywhere
                ),
            },
        )
        assert drill.lost == 0 and drill.converged and drill.fsck_clean
        assert twopc.all_atomic

    benchmark.pedantic(report, rounds=1, iterations=1)


def test_bench_cluster_failover_cycle(benchmark):
    """Time one kill -> detect -> elect -> catch-up -> converge cycle."""
    from repro.cluster import NetmarkCluster

    def cycle():
        cluster = NetmarkCluster(["n1", "n2", "n3"], heartbeat_timeout=2)
        cluster.ingest("memo.md", DOCS[0][1])
        cluster.kill("n1")
        cluster.tick(4)
        cluster.ingest("plan.md", DOCS[2][1])
        cluster.revive("n1")
        cluster.catch_up("n1")
        return cluster

    cluster = benchmark(cycle)
    dumps = cluster.dumps()
    assert len(dumps) == 3 and len(set(dumps.values())) == 1


def test_bench_recovery_reopen(benchmark):
    """Time a reopen-with-recovery of the full workload's log."""
    device = MemoryLogDevice()
    store = XmlStore.open(device)
    for name, text in DOCS:
        store.store_text(text, name)
    log_text = device.read_log()
    checkpoint = device.load_checkpoint()

    def reopen():
        fresh = MemoryLogDevice()
        fresh.append(log_text)
        if checkpoint is not None:
            fresh.save_checkpoint(checkpoint)
        return XmlStore.open(fresh)

    recovered = benchmark(reopen)
    assert len(recovered) == len(DOCS)
