"""ABL-IDX — ablation: text-index-first query evaluation.

The paper (§2.1.4): queries are answered "by first querying the text
index for the search key".  This ablation removes that design choice
(``QueryEngine(use_index=False)`` scans every NODEDATA value) and shows
the index is what makes context/content search scale: the speedup factor
grows with corpus size while answers stay identical.
"""

import time

import pytest
from conftest import print_table

from repro.query.engine import QueryEngine
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus

SIZES = (50, 150, 400)
QUERIES = ("Content=shuttle", "Context=Schedule", 'Content="launch operations"')


@pytest.fixture(scope="module")
def stores():
    loaded = {}
    for size in SIZES:
        store = XmlStore()
        for file in generate_corpus(CorpusSpec(documents=size, seed=500)):
            store.store_text(file.text, file.name)
        loaded[size] = store
    return loaded


def _best_of(callable_, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_report_ablation_textindex(benchmark, stores):
    def report():
        rows = []
        speedups_by_size = {}
        for size in SIZES:
            store = stores[size]
            indexed = QueryEngine(store, use_index=True)
            scanning = QueryEngine(store, use_index=False)
            for query in QUERIES:
                left = [(m.file_name, m.context) for m in indexed.execute(query)]
                right = [(m.file_name, m.context) for m in scanning.execute(query)]
                assert left == right, (size, query)  # identical answers
                indexed_time = _best_of(lambda: indexed.execute(query), 3)
                scan_time = _best_of(lambda: scanning.execute(query), 2)
                speedup = scan_time / indexed_time
                speedups_by_size.setdefault(size, []).append(speedup)
                rows.append(
                    [size, query, f"{indexed_time * 1000:.2f}ms",
                     f"{scan_time * 1000:.2f}ms", f"{speedup:.1f}x"]
                )
        print_table(
            "ABL-IDX: index-first vs full scan",
            ["docs", "query", "indexed", "scan", "speedup"],
            rows,
        )
        mean = {
            size: sum(values) / len(values)
            for size, values in speedups_by_size.items()
        }
        # Shape: the index wins at every size, decisively for selective
        # queries (phrase), and the advantage holds at the largest corpus.
        # (Mean-vs-mean growth across sizes is too timing-noisy to gate
        # on: broad keyword queries are dominated by section
        # reconstruction, which both paths share.)
        assert all(speedup > 1.0 for values in speedups_by_size.values()
                   for speedup in values)
        assert mean[SIZES[-1]] > 2.0
    benchmark.pedantic(report, rounds=1, iterations=1)


@pytest.mark.parametrize("use_index", (True, False), ids=("indexed", "scan"))
def test_bench_content_search(benchmark, stores, use_index):
    engine = QueryEngine(stores[SIZES[1]], use_index=use_index)
    benchmark(engine.execute, "Content=shuttle")
