"""Shared helpers for the benchmark harness.

Every bench module regenerates one table or figure of the paper (see
DESIGN.md §4).  Conventions:

* ``test_report_*`` functions print the paper-style rows/series (run with
  ``pytest benchmarks/ --benchmark-only -s`` to see them) and assert the
  *shape* claims — who wins, by roughly what factor, where the curves
  bend.  Absolute numbers are environment-specific and never asserted.
* ``test_bench_*`` functions time the underlying operations with
  pytest-benchmark.
"""

from __future__ import annotations

import json
from pathlib import Path

# Capture manager handle, filled in by pytest_configure, so experiment
# tables stay visible even though pytest captures test stdout.
_CAPTURE = [None]

#: Where figure artifacts (``BENCH_fig6.json`` etc.) land: the repo root,
#: so CI can upload them with a plain glob.
ARTIFACT_DIR = Path(__file__).resolve().parent.parent


def write_artifact(name: str, section: str, payload: object) -> None:
    """Merge one figure's measurements into its ``BENCH_*.json`` artifact.

    Each report test owns one ``section`` key; read-modify-write keeps
    the sections independent of test execution order.
    """
    path = ARTIFACT_DIR / name
    data: dict[str, object] = {}
    if path.exists():
        data = json.loads(path.read_text())
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def pytest_configure(config):
    _CAPTURE[0] = config.pluginmanager.getplugin("capturemanager")


def _emit(text: str) -> None:
    manager = _CAPTURE[0]
    if manager is not None:
        with manager.global_and_fixture_disabled():
            print(text)
    else:  # pragma: no cover - plugin always present under pytest
        print(text)


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print one aligned experiment table (bypasses pytest capture)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in rendered)) if rendered
        else len(header)
        for index, header in enumerate(headers)
    ]
    lines = [f"\n=== {title} ==="]
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    _emit("\n".join(lines))
