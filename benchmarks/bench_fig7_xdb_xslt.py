"""FIG7 — XDB Query search + XSLT transformation (paper Fig 7).

"In this URL we may also specify an XSLT stylesheet which specifies how
the results are to be formatted and composed into a new document."

The bench drives the full Fig 7 flow through the HTTP endpoint — parse
the query URL, run context+content search, render result XML, apply the
stylesheet — and reports the stage breakdown, so the composition cost is
visible relative to the search cost.
"""

import time

import pytest
from conftest import print_table

from repro.netmark import Netmark
from repro.workloads import CorpusSpec, generate_corpus
from repro.xslt import compile_stylesheet, transform

REPORT_XSL = """<xsl:stylesheet>
  <xsl:template match="/">
    <report query="{results/@query}">
      <xsl:apply-templates select="results/result">
        <xsl:sort select="@doc"/>
      </xsl:apply-templates>
      <coverage><xsl:value-of select="count(results/result)"/></coverage>
    </report>
  </xsl:template>
  <xsl:template match="result">
    <chapter doc="{@doc}">
      <heading><xsl:value-of select="context"/></heading>
      <body><xsl:value-of select="normalize-space(content)"/></body>
    </chapter>
  </xsl:template>
</xsl:stylesheet>"""


@pytest.fixture(scope="module")
def node():
    netmark = Netmark("fig7")
    files = generate_corpus(CorpusSpec(documents=150, seed=300))
    netmark.ingest_many([(f.name, f.text) for f in files])
    netmark.install_stylesheet("report.xsl", REPORT_XSL)
    return netmark


def test_report_fig7_stage_breakdown(benchmark, node):
    def report():
        query = "Context=Budget"
        start = time.perf_counter()
        results = node.search(query)
        search_time = time.perf_counter() - start

        start = time.perf_counter()
        result_xml = results.to_xml()
        render_time = time.perf_counter() - start

        stylesheet = compile_stylesheet(REPORT_XSL)
        start = time.perf_counter()
        composed = transform(stylesheet, result_xml)
        transform_time = time.perf_counter() - start

        print_table(
            "FIG7: XDB Query + XSLT composition stages",
            ["stage", "time", "output"],
            [
                ["search", f"{search_time * 1000:.2f}ms", f"{len(results)} sections"],
                ["render results XML", f"{render_time * 1000:.2f}ms",
                 f"{result_xml.count()} nodes"],
                ["XSLT transform", f"{transform_time * 1000:.2f}ms",
                 f"{len(composed.find_all('chapter'))} chapters"],
            ],
        )
        # Shape: composition produces one chapter per matched section and the
        # coverage element agrees.
        assert len(composed.find_all("chapter")) == len(results)
        assert composed.find("coverage").text_content() == str(len(results))
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_fig7_http_end_to_end(benchmark, node):
    def report():
        response = node.http_get("/search?Context=Budget&xslt=report.xsl")
        assert response.ok
        assert "<report" in response.body and "<chapter" in response.body
        print(f"\nFIG7 end-to-end response size: {len(response.body)} chars")
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_bench_search_only(benchmark, node):
    benchmark(node.search, "Context=Budget")


def test_bench_search_plus_composition(benchmark, node):
    benchmark(node.http_get, "/search?Context=Budget&xslt=report.xsl")


def test_bench_xslt_compile(benchmark):
    benchmark(compile_stylesheet, REPORT_XSL)


def test_bench_xslt_transform_only(benchmark, node):
    stylesheet = compile_stylesheet(REPORT_XSL)
    source = node.search("Context=Budget").to_xml()
    benchmark(transform, stylesheet, source)
