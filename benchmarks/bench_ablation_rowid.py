"""ABL-ROWID — ablation: physical-ROWID traversal links.

"We have exploited the feature of physical row-ids in Oracle for very
fast traversal between nodes that are related."

The ablation replaces each O(1) physical hop with the logical
alternative a rowid-less design would use — a B+tree lookup on the node's
key (``NODEID``/``PARENTNODEID``) — and re-runs the query engine's hot
traversal (resolve every content hit to its governing context, then
collect the section).  Both variants produce identical answers; the
physical path must do it with strictly fewer lookup operations — the
machine-independent proxy for the I/O Oracle's physical rowids saved.
(In this all-in-memory substrate a B+tree probe costs nanoseconds, so
wall-clock times are close; on the paper's disk-backed Oracle each probe
is potentially a page read, which is why the design matters there.)
"""

import time

import pytest
from conftest import print_table

from repro.ordbms.table import ROWID_PSEUDO
from repro.sgml.nodetypes import NodeType
from repro.store import XmlStore, governing_context, section_text
from repro.workloads import CorpusSpec, generate_corpus


@pytest.fixture(scope="module")
def store():
    loaded = XmlStore()
    for file in generate_corpus(CorpusSpec(documents=150, seed=600)):
        loaded.store_text(file.text, file.name)
    return loaded


def _content_hits(store, term="shuttle"):
    index = store.xml_table.text_index_on("NODEDATA")
    rows = [store.xml_table.fetch(rowid) for rowid in index.lookup(term)]
    return [row for row in rows if row["NODETYPE"] == int(NodeType.TEXT)]


# -- the rowid-less traversal (what the design avoids) ----------------------


class KeyJoinTraversal:
    """Parent/sibling navigation through logical-key index lookups."""

    def __init__(self, store: XmlStore) -> None:
        self.table = store.xml_table
        self.probes = 0

    def parent_of(self, row):
        self.probes += 1
        parent_id = row["PARENTNODEID"]
        if parent_id is None:
            return None
        [parent] = self.table.lookup("NODEID", parent_id)
        return parent

    def children_of(self, row):
        self.probes += 1
        children = self.table.lookup("PARENTNODEID", row["NODEID"])
        children.sort(key=lambda child: child["ORDINAL"])
        return children

    def governing_context(self, row):
        current = row
        while True:
            parent = self.parent_of(current)
            if parent is None:
                return None
            if parent["NODETYPE"] == int(NodeType.CONTEXT):
                return parent
            best = None
            for sibling in self.children_of(parent):
                if sibling["ORDINAL"] >= current["ORDINAL"]:
                    break
                if sibling["NODETYPE"] == int(NodeType.CONTEXT):
                    best = sibling
            if best is not None:
                return best
            current = parent

    def section_text(self, context_row):
        siblings = self.children_of(self.parent_of(context_row))
        pieces = []
        started = False
        for sibling in siblings:
            if sibling["NODEID"] == context_row["NODEID"]:
                started = True
                continue
            if not started:
                continue
            if sibling["NODETYPE"] == int(NodeType.CONTEXT):
                break
            pieces.extend(self._texts(sibling))
        return " ".join(pieces)

    def _texts(self, row):
        out = []
        if row["NODETYPE"] == int(NodeType.TEXT) and row["NODEDATA"]:
            out.append(row["NODEDATA"].strip())
        for child in self.children_of(row):
            out.extend(self._texts(child))
        return out


def _resolve_physical(store, hits):
    answers = []
    for hit in hits:
        context = governing_context(store.database, hit)
        if context is not None:
            answers.append(
                (context["NODEID"], section_text(store.database, context))
            )
    return answers


def _resolve_keyjoin(store, hits):
    traversal = KeyJoinTraversal(store)
    answers = []
    for hit in hits:
        context = traversal.governing_context(hit)
        if context is not None:
            answers.append(
                (context["NODEID"], traversal.section_text(context))
            )
    return answers, traversal.probes


def test_report_ablation_rowid(benchmark, store):
    def report():
        hits = _content_hits(store)
        assert hits

        store.database.stats.reset()
        start = time.perf_counter()
        physical = _resolve_physical(store, hits)
        physical_time = time.perf_counter() - start
        physical_fetches = store.database.stats.rowid_fetches

        start = time.perf_counter()
        keyjoin, keyjoin_probes = _resolve_keyjoin(store, hits)
        keyjoin_time = time.perf_counter() - start

        # Identical context resolution (section text can differ in whitespace
        # normalisation only; compare per-context identity and word bags).
        assert [answer[0] for answer in physical] == [a[0] for a in keyjoin]
        for (_, left), (_, right) in zip(physical, keyjoin):
            assert left.split() == right.split()

        print_table(
            "ABL-ROWID: physical links vs key joins "
            f"({len(hits)} content hits resolved)",
            ["variant", "time", "index-probes/rowid-fetches"],
            [
                ["physical ROWID hops", f"{physical_time * 1000:.2f}ms",
                 f"{physical_fetches} O(1) fetches"],
                ["logical key joins", f"{keyjoin_time * 1000:.2f}ms",
                 f"{keyjoin_probes} B+tree probes"],
            ],
        )
        # Shape: the physical design needs strictly fewer lookups; every
        # one it does is O(1) instead of a tree descent.
        assert physical_fetches < keyjoin_probes
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_bench_physical_traversal(benchmark, store):
    hits = _content_hits(store)
    benchmark(_resolve_physical, store, hits)


def test_bench_keyjoin_traversal(benchmark, store):
    hits = _content_hits(store)
    benchmark(lambda: _resolve_keyjoin(store, hits))
