"""The CI perf-regression gate: fresh BENCH_*.json vs committed baselines.

The figure benchmarks (``bench_fig6_context_search.py`` etc.) write their
measurements as JSON artifacts in the repo root.  Most of those numbers
are *deterministic work counters* — rows fetched, WAL appends, breaker
trips — which must match the committed baseline **exactly**: a drifted
counter means the engine silently started doing more (or less) work.
Timing-pattern numbers (``queries_per_second`` and friends) are
environment noise on shared CI runners, so they are reported but only
*gated* (at a relative tolerance) when ``--gate-timings`` is passed —
e.g. on a dedicated perf box.  Other floats (ratios like
``call_reduction``) sit in between and get the tolerance by default.

Keys whose leaf name starts with ``ratchet_`` are **monotone floors**:
the fresh value must be >= the committed baseline, always gated, no
timing exemption.  Benches write them as hard-asserted claims (e.g.
``ratchet_speedup_floor``), so once a win is banked in the baseline a
later change can only keep it or raise it — lowering the floor fails CI
until the regression is owned via ``--update-baselines`` *and* the
separate ``scripts/check_baseline_ratchet.py`` bench lock is re-locked.

Usage::

    python benchmarks/check_regression.py            # gate (CI mode)
    python benchmarks/check_regression.py --update-baselines

Exit status 1 on any gated regression; the delta table always prints.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: The artifacts the gate watches (repo-root file names).
GATED_ARTIFACTS = (
    "BENCH_fig6.json",
    "BENCH_fig8.json",
    "BENCH_crash_matrix.json",
    "BENCH_cluster_failover.json",
    "BENCH_concurrent.json",
    "BENCH_overload.json",
    "BENCH_cache_differential.json",
)

#: Leaf-name prefix marking a key as a monotone floor: fresh >= baseline
#: or the gate fails, regardless of type or timing pattern.
RATCHET_PREFIX = "ratchet_"

#: Key fragments that mark a float as a *timing* — noisy on shared CI,
#: gated only under ``--gate-timings``.  ``speedup`` and ``overhead`` are
#: ratios *of* timings, so they inherit the noise.
TIMING_PATTERNS = (
    "per_second", "_seconds", "_ms", "latency", "elapsed", "speedup",
    "overhead",
)

#: Relative tolerance for floats (timings under --gate-timings, ratios
#: always).  25% absorbs interpreter and allocator jitter while still
#: catching a real 2x regression.
DEFAULT_TOLERANCE = 0.25


def is_timing_key(path: str) -> bool:
    leaf = path.rsplit(".", 1)[-1]
    return any(pattern in leaf for pattern in TIMING_PATTERNS)


def is_ratchet_key(path: str) -> bool:
    return path.rsplit(".", 1)[-1].startswith(RATCHET_PREFIX)


def flatten(value: object, prefix: str = "") -> dict[str, object]:
    """Nested JSON -> ``{dotted.path: scalar}`` (lists indexed)."""
    flat: dict[str, object] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten(value[key], child))
    elif isinstance(value, list):
        flat[f"{prefix}.len" if prefix else "len"] = len(value)
        for index, item in enumerate(value):
            flat.update(flatten(item, f"{prefix}[{index}]"))
    else:
        flat[prefix] = value
    return flat


class Delta:
    """One compared key: baseline vs fresh plus the gate verdict."""

    __slots__ = ("artifact", "path", "baseline", "fresh", "status")

    def __init__(
        self,
        artifact: str,
        path: str,
        baseline: object,
        fresh: object,
        status: str,
    ) -> None:
        self.artifact = artifact
        self.path = path
        self.baseline = baseline
        self.fresh = fresh
        self.status = status  # ok | drift | REGRESSION | missing | new

    @property
    def failed(self) -> bool:
        return self.status == "REGRESSION"


def compare_values(
    path: str,
    baseline: object,
    fresh: object,
    tolerance: float,
    gate_timings: bool,
) -> str:
    """The gate verdict for one key (see module docstring for the tiers)."""
    if type(baseline) is bool or type(fresh) is bool:
        return "ok" if baseline == fresh else "REGRESSION"
    if is_ratchet_key(path):
        # Monotone floor: the banked value may only hold or rise.  The
        # timing exemption deliberately does not apply — ratchet keys are
        # asserted claims the bench already enforced, not measurements.
        if isinstance(baseline, (int, float)) and isinstance(
            fresh, (int, float)
        ):
            return "ok" if float(fresh) >= float(baseline) else "REGRESSION"
        return "REGRESSION"
    if isinstance(baseline, (int, float)) and isinstance(fresh, (int, float)):
        if isinstance(baseline, int) and isinstance(fresh, int):
            # Work counters: exact.
            return "ok" if baseline == fresh else "REGRESSION"
        # Floats: relative tolerance; timings only gate when asked.
        scale = max(abs(float(baseline)), 1e-9)
        relative = abs(float(fresh) - float(baseline)) / scale
        if relative <= tolerance:
            return "ok"
        if is_timing_key(path) and not gate_timings:
            return "drift"
        return "REGRESSION"
    return "ok" if baseline == fresh else "REGRESSION"


def compare_artifact(
    name: str,
    baseline_data: object,
    fresh_data: object,
    tolerance: float,
    gate_timings: bool,
) -> list[Delta]:
    baseline_flat = flatten(baseline_data)
    fresh_flat = flatten(fresh_data)
    deltas: list[Delta] = []
    for path in sorted(set(baseline_flat) | set(fresh_flat)):
        if path not in fresh_flat:
            deltas.append(
                Delta(name, path, baseline_flat[path], None, "REGRESSION")
            )
        elif path not in baseline_flat:
            # New measurements are fine — they become part of the next
            # --update-baselines run.
            deltas.append(Delta(name, path, None, fresh_flat[path], "new"))
        else:
            status = compare_values(
                path,
                baseline_flat[path],
                fresh_flat[path],
                tolerance,
                gate_timings,
            )
            deltas.append(
                Delta(name, path, baseline_flat[path], fresh_flat[path], status)
            )
    return deltas


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(deltas: list[Delta], verbose: bool) -> str:
    """The human-readable delta table (only non-ok rows unless verbose)."""
    rows = [
        (d.artifact, d.path, _fmt(d.baseline), _fmt(d.fresh), d.status)
        for d in deltas
        if verbose or d.status != "ok"
    ]
    ok_count = sum(1 for d in deltas if d.status == "ok")
    headers = ("artifact", "key", "baseline", "fresh", "status")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(
        f"{ok_count} key(s) ok, "
        f"{sum(1 for d in deltas if d.status == 'drift')} drifted (ungated), "
        f"{sum(1 for d in deltas if d.status == 'new')} new, "
        f"{sum(1 for d in deltas if d.failed)} regressed"
    )
    return "\n".join(lines)


def check(
    fresh_dir: Path,
    baseline_dir: Path,
    artifacts: tuple[str, ...] = GATED_ARTIFACTS,
    tolerance: float = DEFAULT_TOLERANCE,
    gate_timings: bool = False,
) -> tuple[list[Delta], list[str]]:
    """Compare every artifact; returns (deltas, hard errors)."""
    deltas: list[Delta] = []
    errors: list[str] = []
    for name in artifacts:
        fresh_path = fresh_dir / name
        baseline_path = baseline_dir / name
        if not baseline_path.exists():
            errors.append(
                f"no committed baseline for {name}: run with "
                "--update-baselines after generating artifacts"
            )
            continue
        if not fresh_path.exists():
            errors.append(
                f"fresh artifact {name} missing from {fresh_dir}: run "
                "the figure benchmarks first (pytest benchmarks/ -q)"
            )
            continue
        deltas.extend(
            compare_artifact(
                name,
                json.loads(baseline_path.read_text()),
                json.loads(fresh_path.read_text()),
                tolerance,
                gate_timings,
            )
        )
    return deltas, errors


def update_baselines(
    fresh_dir: Path,
    baseline_dir: Path,
    artifacts: tuple[str, ...] = GATED_ARTIFACTS,
) -> list[str]:
    """Copy fresh artifacts over the committed baselines."""
    baseline_dir.mkdir(parents=True, exist_ok=True)
    updated: list[str] = []
    for name in artifacts:
        fresh_path = fresh_dir / name
        if fresh_path.exists():
            shutil.copyfile(fresh_path, baseline_dir / name)
            updated.append(name)
    return updated


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifacts",
        nargs="*",
        default=list(GATED_ARTIFACTS),
        help="artifact file names to gate (default: the figure set)",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=REPO_ROOT,
        help="where the freshly generated BENCH_*.json live (repo root)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=BASELINE_DIR,
        help="committed baseline directory (benchmarks/baselines)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative tolerance for float keys (default 0.25)",
    )
    parser.add_argument(
        "--gate-timings",
        action="store_true",
        help="also fail on timing-pattern floats (dedicated perf boxes)",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="copy the fresh artifacts over the committed baselines",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print every compared key, not just the interesting ones",
    )
    args = parser.parse_args(argv)
    artifacts = tuple(args.artifacts)

    if args.update_baselines:
        updated = update_baselines(args.fresh_dir, args.baseline_dir, artifacts)
        for name in updated:
            print(f"baseline updated: {args.baseline_dir / name}")
        if not updated:
            print("no fresh artifacts found; nothing updated", file=sys.stderr)
            return 1
        return 0

    deltas, errors = check(
        args.fresh_dir,
        args.baseline_dir,
        artifacts,
        args.tolerance,
        args.gate_timings,
    )
    print(render_table(deltas, args.verbose))
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    if errors or any(d.failed for d in deltas):
        print("perf gate: FAIL", file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
