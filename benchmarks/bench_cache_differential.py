"""Cache-correctness differential drill (the PR 10 CI gate artifact).

One store, two engines — cache-enabled and bare — driven through a
seeded pseudo-random interleaving of queries, ingests, replacements and
deletions.  Every query's rendered XML must be **byte-identical** across
the two engines; any divergence is counted as a mismatch and fails the
run on the spot.

The artifact (``BENCH_cache_differential.json``) carries only
deterministic counters — schedule composition, cache hit/miss traffic,
``mismatches`` (always 0) — so the perf-regression gate compares it
exactly: a changed hit count means the keying or invalidation behaviour
changed, and ``mismatches`` anything but 0 means the cache lied.
"""

import random

from conftest import print_table, write_artifact

from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.sgml.serializer import serialize
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus

SEED = 2010
STEPS = 150
WRITE_EVERY = 0.25  # probability a step mutates instead of querying

QUERIES = [
    "Context=Budget",
    "Context=Technology Gap",
    "Content=relay",
    "Content=relay marker",
    "Content=relay,milestones",
    "Context=Budget&Content=relay",
    "Context=Budget&limit=3",
    "Context=Risk Assessment&Content=schedule",
    "Context=Budget&Doc=doc-00",
    "Context=Budget&Format=md",
    "Context=Budget&Cache=0",
]


def _xml(result) -> str:
    return serialize(result.to_xml(), indent=2)


def test_report_cache_differential(benchmark):
    def report():
        rng = random.Random(SEED)
        store = XmlStore()
        cached = QueryEngine(store, cache=QueryCache())
        baseline = QueryEngine(store)
        files = generate_corpus(
            CorpusSpec(documents=30, seed=SEED, planted_term="relay")
        )
        pending = list(files[10:])
        loaded = []
        for file in files[:10]:
            store.store_text(file.text, file.name)
            loaded.append(file)

        queries = writes = mismatches = 0
        for _ in range(STEPS):
            if rng.random() < WRITE_EVERY:
                writes += 1
                choice = rng.random()
                if choice < 0.5 and pending:
                    file = pending.pop(0)
                    store.store_text(file.text, file.name)
                    loaded.append(file)
                elif choice < 0.8 and loaded:
                    file = rng.choice(loaded)
                    text = file.text
                    if file.name.endswith(".md"):
                        text += "\nAmended relay budget paragraph.\n"
                    store.replace_text(text, file.name)
                elif len(loaded) > 2:
                    file = loaded.pop(rng.randrange(len(loaded)))
                    entry = store.lookup_by_name(file.name)
                    store.delete_document(entry.doc_id)
                continue
            queries += 1
            query = rng.choice(QUERIES)
            got = _xml(cached.execute(query))
            want = _xml(baseline.execute(query))
            if got != want:
                mismatches += 1
                raise AssertionError(f"cache diverged on {query!r}")

        result_counters = cached.cache.snapshot_counters()
        lift_counters = store.lift_cache.snapshot_counters()
        assert result_counters["hits"] > 0  # the schedule replayed
        assert mismatches == 0
        print_table(
            f"Cache differential: seed {SEED}, {STEPS} steps",
            ["queries", "writes", "result hits", "result misses",
             "lift hits", "mismatches"],
            [[queries, writes, result_counters["hits"],
              result_counters["misses"], lift_counters["hits"],
              mismatches]],
        )
        write_artifact(
            "BENCH_cache_differential.json",
            "differential",
            {
                "seed": SEED,
                "steps": STEPS,
                "queries": queries,
                "writes": writes,
                "result_cache_hits": result_counters["hits"],
                "result_cache_misses": result_counters["misses"],
                "result_cache_evictions": result_counters["evictions"],
                "lift_cache_hits": lift_counters["hits"],
                "lift_cache_misses": lift_counters["misses"],
                "lift_cache_invalidations": lift_counters["invalidations"],
                "lift_cache_rejected_puts": lift_counters["rejected_puts"],
                "mismatches": mismatches,
                "byte_identical": mismatches == 0,
            },
        )
    benchmark.pedantic(report, rounds=1, iterations=1)
