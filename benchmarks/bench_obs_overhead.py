"""OBS — what the observability layer costs on the Fig 6 workload.

The instrumentation contract (DESIGN.md §10) is "counters per call, not
per row; spans only at stage boundaries" — cheap enough to leave on in
production.  This bench holds the layer to that promise on the Fig 6
context-search workload:

* **metrics on** (the default) must cost < 5% over the fully disabled
  layer;
* the **no-op tracer** (``NULL_TRACER``, what every component uses until
  a composition root swaps in a real one) must cost ~0%.

Timings are best-of-``REPEATS`` over ``QUERIES_PER_ROUND`` queries, so a
single noisy round cannot manufacture (or hide) an overhead.
"""

import time

import pytest
from conftest import print_table, write_artifact

from repro import obs
from repro.obs import NULL_TRACER
from repro.query.engine import QueryEngine
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus

DOCUMENTS = 400
HEADING = "Budget"
REPEATS = 15
QUERIES_PER_ROUND = 10

#: The mixed Fig 6 query diet: pure context, pure content, combined.
QUERIES = (
    f"Context={HEADING}",
    "Content=shuttle",
    f"Context={HEADING}&Content=resource",
)


@pytest.fixture(scope="module")
def store():
    files = generate_corpus(CorpusSpec(documents=DOCUMENTS, seed=200))
    loaded = XmlStore()
    for file in files:
        loaded.store_text(file.text, file.name)
    return loaded


def _best_round_seconds(run_round) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run_round()
        best = min(best, time.perf_counter() - start)
    return best


def _overhead_pct(base: float, measured: float) -> float:
    return round((measured - base) / base * 100.0, 2)


def test_report_obs_overhead(benchmark, store):
    def report():
        engine = QueryEngine(store)

        def plain_round():
            for _ in range(QUERIES_PER_ROUND):
                for query in QUERIES:
                    engine.execute(query)

        def traced_round():
            # The disabled-layer round plus the no-op span every traced
            # request pays when tracing is off.
            for _ in range(QUERIES_PER_ROUND):
                for query in QUERIES:
                    with NULL_TRACER.span("request", query=query):
                        engine.execute(query)

        previous_registry = obs.push_registry()
        previous_enabled = obs.set_enabled(False)
        try:
            off_seconds = _best_round_seconds(plain_round)
            noop_tracer_seconds = _best_round_seconds(traced_round)
            obs.set_enabled(True)
            obs.push_registry()
            on_seconds = _best_round_seconds(plain_round)
            series_recorded = len(obs.snapshot())
        finally:
            obs.set_enabled(previous_enabled)
            obs.set_registry(previous_registry)

        metrics_pct = _overhead_pct(off_seconds, on_seconds)
        tracer_pct = _overhead_pct(off_seconds, noop_tracer_seconds)
        queries_per_round = QUERIES_PER_ROUND * len(QUERIES)
        print_table(
            f"OBS overhead: {queries_per_round} Fig6 queries/round, "
            f"{DOCUMENTS} docs, best of {REPEATS}",
            ["configuration", "round", "overhead"],
            [
                ["obs disabled", f"{off_seconds * 1000:.2f}ms", "-"],
                ["metrics on", f"{on_seconds * 1000:.2f}ms",
                 f"{metrics_pct:+.2f}%"],
                ["no-op tracer", f"{noop_tracer_seconds * 1000:.2f}ms",
                 f"{tracer_pct:+.2f}%"],
            ],
        )
        write_artifact(
            "BENCH_obs_overhead.json",
            "fig6_overhead",
            {
                "documents": DOCUMENTS,
                "queries_per_round": queries_per_round,
                "repeats": REPEATS,
                "disabled_queries_per_second": round(
                    queries_per_round / off_seconds, 1
                ),
                "metrics_on_queries_per_second": round(
                    queries_per_round / on_seconds, 1
                ),
                "metrics_on_overhead_pct": metrics_pct,
                "noop_tracer_overhead_pct": tracer_pct,
                "metric_series_recorded": series_recorded,
            },
        )
        # Shape claims: the layer recorded real series, yet stayed under
        # its budget — <5% with metrics on, ~0% with the no-op tracer.
        assert series_recorded > 0
        assert metrics_pct < 5.0
        assert tracer_pct < 2.0
    benchmark.pedantic(report, rounds=1, iterations=1)
