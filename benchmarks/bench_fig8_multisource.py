"""FIG8 — highly scalable and flexible integration (paper Fig 8).

Applications ↔ thin routers ↔ data sources.  The bench grows the number
of sources in one databank and measures:

* fan-out query latency versus source count (should grow ~linearly — the
  router adds no super-linear coordination cost);
* the marginal cost of declaring a new source (constant, one line);
* mixed-capability fan-out: adding capability-limited sources keeps
  working, with augmentation confined to those sources.
"""

import time

import pytest
from conftest import print_table

from repro.federation import ContentOnlySource, NetmarkSource, Router
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus

SOURCE_COUNTS = (1, 2, 4, 8, 16)


def _netmark_source(index: int) -> NetmarkSource:
    store = XmlStore()
    files = generate_corpus(
        CorpusSpec(documents=10, seed=400 + index, formats=("md",))
    )
    for file in files:
        store.store_text(file.text, f"s{index}-{file.name}")
    return NetmarkSource(f"src{index:02d}", store)


@pytest.fixture(scope="module")
def sources():
    return [_netmark_source(index) for index in range(max(SOURCE_COUNTS))]


def test_report_fig8_fanout_scaling(benchmark, sources):
    def report():
        rows = []
        times = {}
        for count in SOURCE_COUNTS:
            router = Router()
            bank = router.create_databank("app")
            for source in sources[:count]:
                bank.add_source(source)
            start = time.perf_counter()
            results = router.execute("Context=Budget&databank=app")
            elapsed = time.perf_counter() - start
            times[count] = elapsed
            assert router.last_report.fan_out == count
            rows.append(
                [count, len(results), f"{elapsed * 1000:.2f}ms",
                 f"{elapsed * 1000 / count:.2f}ms"]
            )
        print_table(
            "FIG8: databank fan-out vs number of sources",
            ["sources", "matches", "latency", "latency/source"],
            rows,
        )
        # Shape: ~linear scaling — per-source latency does not blow up.
        per_source = [times[count] / count for count in SOURCE_COUNTS]
        assert max(per_source) < 10 * min(per_source)
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_fig8_mixed_capabilities(benchmark, sources):
    def report():
        router = Router()
        bank = router.create_databank("mixed")
        for source in sources[:4]:
            bank.add_source(source)
        legacy = ContentOnlySource(
            "legacy",
            {
                f"l{i}.md": f"# Budget\nlegacy dollars {i}\n\n# Other\nnoise\n"
                for i in range(5)
            },
        )
        bank.add_source(legacy)
        results = router.execute("Context=Budget&Content=dollars&databank=mixed")
        report = router.last_report
        print_table(
            "FIG8: mixed-capability fan-out",
            ["source", "matches", "augmented"],
            [
                [name, count, "yes" if name in report.augmented_sources else "no"]
                for name, count in report.source_matches.items()
            ],
        )
        assert report.augmented_sources == ["legacy"]
        assert report.source_matches["legacy"] == 5
        assert len(results) >= 5
    benchmark.pedantic(report, rounds=1, iterations=1)


@pytest.mark.parametrize("count", SOURCE_COUNTS)
def test_bench_fanout(benchmark, sources, count):
    router = Router()
    bank = router.create_databank("app")
    for source in sources[:count]:
        bank.add_source(source)
    benchmark(router.execute, "Context=Budget&databank=app")


def test_bench_declare_source(benchmark, sources):
    """The marginal integration act: one databank line."""
    router = Router()
    counter = [0]

    def declare():
        bank = router.create_databank(f"app{counter[0]}")
        counter[0] += 1
        bank.add_source(sources[0])

    benchmark(declare)
