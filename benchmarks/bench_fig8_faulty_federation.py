"""FIG8 under fire — the federated fan-out with injected faults.

The paper's integration claim (applications ↔ thin routers ↔ data
sources) is only useful if a dead or flaky source degrades the answer
instead of destroying it.  This bench drives the FIG8 workload through
the chaos harness and reports:

* a killed source: every query still answers, flagged partial, with all
  matches the healthy sources hold — and the circuit breaker sheds the
  dead source after its failure threshold;
* a flaky source (N failures, then recovery): retries absorb the
  transient window and the fan-out returns to complete answers;
* the null case: with no faults scripted, the guarded router does zero
  retries, trips no breakers, and returns byte-identical XML to an
  unguarded router.

Everything is deterministic (logical clock + seeded RNG), so the table
rows replay exactly; ``tests/resilience/test_replay.py`` asserts that.
"""

import pytest
from conftest import print_table, write_artifact

from repro.federation import Router
from repro.resilience import (
    BreakerConfig,
    FaultPlan,
    LogicalClock,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.resilience.harness import (
    DEFAULT_QUERIES,
    build_sources,
    healthy_baseline,
    run_chaos,
)
from repro.sgml.serializer import serialize


@pytest.fixture(scope="module")
def sources():
    return build_sources(source_count=3, docs_per_source=6, seed=1400)


def test_report_killed_source_degrades(benchmark, sources):
    def report():
        clock = LogicalClock()
        plan = FaultPlan(clock=clock)
        plan.fail("src00", times=None)  # hard down for the whole run
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2),
            breaker=BreakerConfig(failure_threshold=2, cooldown=64),
            clock=clock,
        )
        degraded = healthy_baseline(sources, exclude=("src00",))
        chaos = run_chaos(sources, plan=plan, policy=policy, rounds=3)
        print_table(
            "FIG8 chaos: src00 killed (3 rounds, breaker threshold 2)",
            ["query", "status", "matches", "expected", "lost source"],
            [
                [
                    outcome.query,
                    outcome.status,
                    outcome.matches,
                    degraded[outcome.query],
                    ",".join(outcome.failed_sources + outcome.skipped_sources),
                ]
                for outcome in chaos.outcomes
            ],
        )
        write_artifact(
            "BENCH_fig8.json",
            "killed_source",
            {
                "rounds": 3,
                "queries": len(chaos.outcomes),
                "failed": chaos.failed,
                "partial": chaos.partial,
                "breaker_trips": chaos.trips,
                "outcomes": [
                    {
                        "query": o.query,
                        "status": o.status,
                        "matches": o.matches,
                        "expected": degraded[o.query],
                    }
                    for o in chaos.outcomes
                ],
            },
        )
        # Never a hard failure: every query answers, flagged partial.
        assert chaos.failed == 0
        assert chaos.partial == len(chaos.outcomes)
        # Completeness bound: partial answers hold every healthy match.
        for outcome in chaos.outcomes:
            assert outcome.matches == degraded[outcome.query]
        # The breaker opened once and then shed the dead source.
        assert chaos.trips == 1
        assert chaos.outcomes[-1].skipped_sources == ("src00",)
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_flaky_source_recovers(benchmark, sources):
    def report():
        clock = LogicalClock()
        plan = FaultPlan(clock=clock)
        # One bad window: the first 2 searches fail, then full recovery.
        plan.fail("src01", "native_search", times=2)
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3), clock=clock
        )
        healthy = healthy_baseline(sources)
        chaos = run_chaos(sources, plan=plan, policy=policy, rounds=2)
        print_table(
            "FIG8 chaos: src01 flaky (2 transient failures, retry budget 3)",
            ["query", "status", "matches", "retries"],
            [
                [o.query, o.status, o.matches, o.retries]
                for o in chaos.outcomes
            ],
        )
        write_artifact(
            "BENCH_fig8.json",
            "flaky_source",
            {
                "rounds": 2,
                "queries": len(chaos.outcomes),
                "failed": chaos.failed,
                "partial": chaos.partial,
                "retries": chaos.retries,
                "faults_injected": chaos.injected,
                "breaker_trips": chaos.trips,
            },
        )
        # Retries absorbed the window: every answer stayed complete.
        assert chaos.partial == chaos.failed == 0
        assert chaos.retries == 2 and chaos.injected == 2
        assert chaos.trips == 0
        for outcome in chaos.outcomes:
            assert outcome.matches == healthy[outcome.query]
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_no_faults_no_overhead(benchmark, sources):
    def report():
        guarded = run_chaos(
            sources, plan=None, policy=ResiliencePolicy(), rounds=1
        )
        plain = run_chaos(sources, plan=None, policy=None, rounds=1)
        rows = []
        for g, p in zip(guarded.outcomes, plain.outcomes):
            rows.append([g.query, g.status, g.matches, p.matches])
        print_table(
            "FIG8 chaos: null plan (guarded vs unguarded router)",
            ["query", "status", "matches", "unguarded matches"],
            rows,
        )
        write_artifact(
            "BENCH_fig8.json",
            "null_plan",
            {
                "queries": len(guarded.outcomes),
                "retries": guarded.retries,
                "breaker_trips": guarded.trips,
                "faults_injected": guarded.injected,
                "guarded_equals_unguarded": all(
                    g.status == "complete" and g.matches == p.matches
                    for g, p in zip(guarded.outcomes, plain.outcomes)
                ),
            },
        )
        assert guarded.retries == guarded.trips == guarded.injected == 0
        for g, p in zip(guarded.outcomes, plain.outcomes):
            assert g.status == "complete" and g.matches == p.matches
        # Byte-identical answers, proven on the serialized XML.
        for query in DEFAULT_QUERIES:
            assert _answer(sources, query, ResiliencePolicy()) == _answer(
                sources, query, None
            )
    benchmark.pedantic(report, rounds=1, iterations=1)


def _answer(sources, query, policy):
    router = Router(resilience=policy)
    bank = router.create_databank("app")
    for source in sources:
        bank.add_source(source)
    results = router.execute(f"{query}&databank=app")
    return serialize(results.to_xml(), indent=2)


def test_bench_guarded_fanout(benchmark, sources):
    """Latency cost of the resilience layer on the happy path."""
    router = Router(resilience=ResiliencePolicy())
    bank = router.create_databank("app")
    for source in sources:
        bank.add_source(source)
    benchmark(router.execute, "Content=chaos&databank=app")


def test_bench_degraded_fanout(benchmark, sources):
    """Fan-out latency once the breaker has shed a dead source."""
    clock = LogicalClock()
    plan = FaultPlan(clock=clock)
    plan.fail("src00", times=None)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=1),
        breaker=BreakerConfig(failure_threshold=1, cooldown=1_000_000),
        clock=clock,
    )
    router = Router(resilience=policy)
    bank = router.create_databank("app")
    for source in sources:
        bank.add_source(plan.wrap_source(source))
    router.execute("Content=chaos&databank=app")  # trips the breaker
    assert policy.breakers.open_names() == ["src00"]
    benchmark(router.execute, "Content=chaos&databank=app")
