"""FIG5 — the NETMARK generated schema (paper Fig 5).

The figure's claim is structural: **two tables store every document
type**.  The experiment contrasts NETMARK with the schema-dependent
relational-shredding baseline as document-type diversity grows:

* table count: NETMARK constant at 2, shredding grows with each new
  element vocabulary;
* DDL statements issued during loading: NETMARK zero after bootstrap;
* load latency for the same documents through both stores.
"""

import pytest
from conftest import print_table

from repro.baselines.shredded import ShreddedXmlStore
from repro.converters import convert
from repro.store import XmlStore
from repro.workloads import WordStream

#: Progressively diverse document types (distinct element vocabularies).
def _document_batches():
    stream = WordStream(55)
    batches = []
    # Batch 1: canonical upmarked documents (section/context/content).
    batches.append(
        [
            convert(f"# H{i}\n\n{stream.paragraph()}\n", f"d{i}.md")
            for i in range(5)
        ]
    )
    # Batches 2..6: raw XML vocabularies, new tags per batch.
    vocabularies = [
        ("report", "title", "finding"),
        ("memo", "to", "body"),
        ("slide", "bullet", "notes"),
        ("invoice", "lineitem", "total"),
        ("log", "entry", "stamp"),
    ]
    for batch_no, (a, b, c) in enumerate(vocabularies):
        batch = []
        for i in range(5):
            xml = (
                f"<{a}><{b}>{stream.word()}</{b}>"
                f"<{c}>{stream.sentence()}</{c}></{a}>"
            )
            batch.append(convert(xml, f"x{batch_no}-{i}.xml"))
        batches.append(batch)
    return batches


def test_report_fig5_schema_growth(benchmark):
    def report():
        netmark = XmlStore()
        shredded = ShreddedXmlStore()
        netmark_ddl_base = netmark.database.catalog.ddl_statements
        rows = []
        for batch_no, batch in enumerate(_document_batches(), start=1):
            for document in batch:
                netmark.store_document(document)
                shredded.store_document(document)
            rows.append(
                [
                    batch_no,
                    netmark.table_count,
                    shredded.table_count,
                    netmark.database.catalog.ddl_statements - netmark_ddl_base,
                ]
            )
        print_table(
            "FIG5: tables after each new document-type batch",
            ["batch", "netmark-tables", "shredded-tables", "netmark-ddl-after-boot"],
            rows,
        )
        # Shape: NETMARK flat at 2 with zero post-bootstrap DDL; shredding
        # strictly grows with each new vocabulary.
        assert all(row[1] == 2 for row in rows)
        assert all(row[3] == 0 for row in rows)
        shredded_counts = [row[2] for row in rows]
        assert shredded_counts == sorted(shredded_counts)
        assert shredded_counts[-1] > shredded_counts[0]
    benchmark.pedantic(report, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def mixed_documents():
    return [document for batch in _document_batches() for document in batch]


def test_bench_netmark_load(benchmark, mixed_documents):
    def load():
        store = XmlStore()
        for document in mixed_documents:
            store.store_document(document)
        return store

    store = benchmark(load)
    assert store.table_count == 2


def test_bench_shredded_load(benchmark, mixed_documents):
    def load():
        store = ShreddedXmlStore()
        for document in mixed_documents:
            store.store_document(document)
        return store

    store = benchmark(load)
    assert store.table_count > 2
