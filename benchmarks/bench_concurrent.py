"""CONCURRENT — multi-worker serving under MVCC snapshot isolation.

The paper's middleware serves many WebDAV/HTTP clients at once while the
daemon ingests in the background.  This bench measures that whole read
path end to end:

* QPS vs worker count through :class:`~repro.server.workers.WorkerPool`
  — four workers must answer at least 2x the single-worker rate;
* reader latency while :class:`~repro.server.workers.IngestThread` bulk
  ingests — a pinned reader's results stay byte-identical to the
  quiesced run for the entire ingest (the acceptance property);
* version-GC reclamation — pinned history survives the sweep, released
  history is reclaimed.

Workers spend most of each request streaming the response body back to
a (simulated) WAN client, which is where real NETMARK deployments spend
their wall clock; see :class:`_SlowClientApi`.
"""

import statistics
import time

import pytest
from conftest import print_table, write_artifact

from repro.netmark import Netmark
from repro.server.workers import IngestThread, WorkerPool
from repro.sgml.serializer import serialize
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus

WORKER_COUNTS = (1, 2, 4)
REQUESTS = 40
READS = 16
#: Per-response client drain.  ``time.sleep`` releases the GIL exactly
#: like a socket write to a slow client does, so worker-count scaling is
#: visible even on a single core: the drains overlap, the (brief) query
#: compute serializes.
CLIENT_DRAIN_SECONDS = 0.010
#: ``Cache=0`` keeps this bench measuring the uncached MVCC read path:
#: the facade enables the result cache, and a pool of cache replays
#: would measure lookup latency, not worker scaling over real queries.
QUERY_TARGET = "/search?Context=Budget&limit=5&Cache=0"
QUERY = "Context=Budget"
#: Engine-level spelling of the same opt-out, for the pinned-reader
#: latency drill: a cache replay would hide the seqlock/MVCC cost the
#: bench exists to measure.
UNCACHED_QUERY = QUERY + "&Cache=0"


class _SlowClientApi:
    """The in-process API plus a simulated client drain per response.

    In the paper's deployment each response streams to a WebDAV client
    over the network: the worker is occupied but the interpreter is
    idle.  Wrapping the API (rather than slowing the library) keeps the
    simulation local to this bench.
    """

    def __init__(self, api, drain_seconds=CLIENT_DRAIN_SECONDS):
        self._api = api
        self._drain = drain_seconds

    def request(self, method, target, body=""):
        response = self._api.request(method, target, body)
        time.sleep(self._drain)  # the client drains the response body
        return response


@pytest.fixture(scope="module")
def node():
    loaded = Netmark()
    for file in generate_corpus(CorpusSpec(documents=60, seed=140)):
        loaded.drop(file.name, file.text)
    loaded.poll()
    return loaded


def test_report_worker_scaling(benchmark, node):
    """QPS vs worker count on the fig6 read workload (+ client drain)."""

    def report():
        expected = node.api.get(QUERY_TARGET).body  # also warms the index
        api = _SlowClientApi(node.api)
        rows = []
        series = []
        single_qps = None
        for workers in WORKER_COUNTS:
            with WorkerPool(api, workers=workers) as pool:
                start = time.perf_counter()
                futures = [
                    pool.submit("GET", QUERY_TARGET)
                    for _ in range(REQUESTS)
                ]
                responses = [
                    future.result(timeout=120) for future in futures
                ]
                elapsed = time.perf_counter() - start
            ok = sum(1 for response in responses if response.ok)
            identical = all(
                response.body == expected for response in responses
            )
            qps = REQUESTS / elapsed
            if single_qps is None:
                single_qps = qps
            speedup = qps / single_qps
            assert ok == REQUESTS
            assert identical  # every worker reads the same committed state
            rows.append(
                [workers, REQUESTS, f"{qps:.1f}", f"{speedup:.2f}x"]
            )
            series.append(
                {
                    "workers": workers,
                    "requests": REQUESTS,
                    "responses_ok": ok,
                    "byte_identical": identical,
                    "queries_per_second": round(qps, 1),
                    "speedup": round(speedup, 2),
                }
            )
        print_table(
            f"CONCURRENT: {QUERY_TARGET} QPS vs worker count "
            f"({CLIENT_DRAIN_SECONDS * 1000:.0f}ms client drain)",
            ["workers", "requests", "qps", "speedup"],
            rows,
        )
        write_artifact("BENCH_concurrent.json", "worker_scaling", series)
        # Acceptance: four workers answer at >= 2x the single-worker rate.
        assert series[-1]["workers"] == 4
        assert series[-1]["speedup"] >= 2.0
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_reader_latency_during_ingest(benchmark):
    """A pinned reader during bulk ingest: byte-identical, never blocked."""

    def report():
        files = generate_corpus(CorpusSpec(documents=48, seed=141))
        node = Netmark()
        for file in files[:16]:
            node.drop(file.name, file.text)
        node.poll()
        engine = node.api.engine

        # Quiesced baseline: same pinned-read path, nothing else running.
        quiesced_latencies = []
        with node.store.snapshot() as pin:
            matches = len(engine.execute(UNCACHED_QUERY, snapshot=pin))
            for _ in range(READS):
                start = time.perf_counter()
                quiesced = serialize(
                    engine.execute(UNCACHED_QUERY, snapshot=pin).to_xml(), indent=2
                )
                quiesced_latencies.append(time.perf_counter() - start)

        for file in files[16:]:
            node.drop(file.name, file.text)
        retries_before = sum(
            table.read_retries for table in node.store.database.catalog
        )

        ingest_latencies = []
        observed = set()
        with node.store.snapshot() as pin:
            ingest = IngestThread(node.daemon)
            ingest.start()
            for _ in range(READS):
                start = time.perf_counter()
                observed.add(
                    serialize(
                        engine.execute(UNCACHED_QUERY, snapshot=pin).to_xml(),
                        indent=2,
                    )
                )
                ingest_latencies.append(time.perf_counter() - start)
            ingested = ingest.stop(timeout=120)
            # One more read after the full ingest committed: the pin
            # still reproduces the pre-ingest answer.
            observed.add(
                serialize(
                    engine.execute(UNCACHED_QUERY, snapshot=pin).to_xml(), indent=2
                )
            )
        retries = (
            sum(table.read_retries for table in node.store.database.catalog)
            - retries_before
        )

        byte_identical = observed == {quiesced}
        assert byte_identical  # the acceptance property
        assert ingested == len(files) - 16
        quiesced_p50 = statistics.median(quiesced_latencies)
        ingest_p50 = statistics.median(ingest_latencies)
        print_table(
            f"CONCURRENT: pinned '{QUERY}' reads during bulk ingest "
            f"({ingested} documents)",
            ["phase", "reads", "p50", "max", "seqlock retries"],
            [
                [
                    "quiesced",
                    READS,
                    f"{quiesced_p50 * 1000:.2f}ms",
                    f"{max(quiesced_latencies) * 1000:.2f}ms",
                    "-",
                ],
                [
                    "during ingest",
                    READS + 1,
                    f"{ingest_p50 * 1000:.2f}ms",
                    f"{max(ingest_latencies) * 1000:.2f}ms",
                    retries,
                ],
            ],
        )
        write_artifact(
            "BENCH_concurrent.json",
            "reader_latency_during_ingest",
            {
                "documents_preloaded": 16,
                "documents_ingested": ingested,
                "reads": READS,
                "result_matches": matches,
                "byte_identical": byte_identical,
                "quiesced_p50_latency_ms": round(quiesced_p50 * 1000, 3),
                "ingest_p50_latency_ms": round(ingest_p50 * 1000, 3),
                "ingest_max_latency_ms": round(
                    max(ingest_latencies) * 1000, 3
                ),
                "latency_ratio": round(
                    ingest_p50 / max(quiesced_p50, 1e-9), 2
                ),
            },
        )
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_version_gc_reclamation(benchmark):
    """GC never touches pinned history; released history is reclaimed."""

    def report():
        corpus = generate_corpus(CorpusSpec(documents=12, seed=142))
        store = XmlStore()
        for file in corpus[:6]:
            store.store_text(file.text, file.name)
        entry = store.documents()[0]
        quiesced = serialize(store.document(entry.doc_id), indent=2)

        with store.snapshot() as pin:
            # corpus[6] shares entry 0's format (period-6 format cycle),
            # so the converter accepts it under the old name.
            store.replace_text(corpus[6].text, entry.file_name)
            reclaimed_pinned = store.database.vacuum_versions()
            pinned = serialize(
                store.document(entry.doc_id, snapshot=pin), indent=2
            )
            assert pinned == quiesced  # the sweep spared the pinned rows
        reclaimed_after = store.database.vacuum_versions()
        versions_left = sum(
            table.version_count for table in store.database.catalog
        )
        assert reclaimed_after > 0
        assert versions_left == 0

        print_table(
            "CONCURRENT: version-GC around one superseded document",
            ["sweep", "reclaimed", "versions left"],
            [
                ["while pinned", reclaimed_pinned, "-"],
                ["after release", reclaimed_after, versions_left],
            ],
        )
        write_artifact(
            "BENCH_concurrent.json",
            "version_gc",
            {
                "reclaimed_while_pinned": reclaimed_pinned,
                "reclaimed_after_release": reclaimed_after,
                "reclaimed_total": store.database.mvcc.reclaimed_total,
                "versions_left": versions_left,
            },
        )
    benchmark.pedantic(report, rounds=1, iterations=1)
