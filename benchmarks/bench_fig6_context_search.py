"""FIG6 — context search across a document collection (paper Fig 6).

"A context search query, such as Context=Introduction, will return the
content portion in the 'Introduction' sections in all the documents in a
document collection."

The bench loads mixed-format corpora of growing size and measures:

* context-search latency via the production path (text index + ROWID
  traversal) versus the full-scan fallback — the index path must win by a
  factor that *grows* with corpus size;
* recall correctness against the generator's ground truth (every document
  generated with the heading must be found).
"""

import time

import pytest
from conftest import print_table

from repro.query.engine import QueryEngine
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus

SIZES = (50, 150, 400)
HEADING = "Budget"


def _loaded_store(size: int) -> tuple[XmlStore, int]:
    files = generate_corpus(CorpusSpec(documents=size, seed=200))
    store = XmlStore()
    expected = 0
    for file in files:
        store.store_text(file.text, file.name)
        if HEADING in file.headings:
            expected += 1
    return store, expected


@pytest.fixture(scope="module")
def stores():
    return {size: _loaded_store(size) for size in SIZES}


def _timed(callable_, repeats=5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_report_fig6_context_search(benchmark, stores):
    def report():
        rows = []
        for size in SIZES:
            store, expected = stores[size]
            indexed = QueryEngine(store, use_index=True)
            scanning = QueryEngine(store, use_index=False)
            indexed_time, indexed_result = _timed(
                lambda engine=indexed: engine.execute(f"Context={HEADING}")
            )
            scan_time, scan_result = _timed(
                lambda engine=scanning: engine.execute(f"Context={HEADING}"),
                repeats=2,
            )
            assert len(indexed_result) == expected  # perfect recall
            assert len(scan_result) == expected
            rows.append(
                [
                    size,
                    expected,
                    f"{indexed_time * 1000:.2f}ms",
                    f"{scan_time * 1000:.2f}ms",
                    f"{scan_time / indexed_time:.1f}x",
                ]
            )
        print_table(
            f"FIG6: Context={HEADING} over growing collections",
            ["docs", "matches", "index-path", "scan-path", "speedup"],
            rows,
        )
        # Shape: the index path wins everywhere.
        for row in rows:
            assert float(row[4][:-1]) > 1.0
    benchmark.pedantic(report, rounds=1, iterations=1)


@pytest.mark.parametrize("size", SIZES)
def test_bench_context_search_indexed(benchmark, stores, size):
    store, expected = stores[size]
    engine = QueryEngine(store)
    result = benchmark(engine.execute, f"Context={HEADING}")
    assert len(result) == expected


def test_bench_combined_search(benchmark, stores):
    store, _ = stores[SIZES[-1]]
    engine = QueryEngine(store)
    benchmark(engine.execute, f"Context={HEADING}&Content=resource")


def test_bench_content_search(benchmark, stores):
    store, _ = stores[SIZES[-1]]
    engine = QueryEngine(store)
    benchmark(engine.execute, "Content=shuttle")
