"""FIG6 — context search across a document collection (paper Fig 6).

"A context search query, such as Context=Introduction, will return the
content portion in the 'Introduction' sections in all the documents in a
document collection."

The bench loads mixed-format corpora of growing size and measures:

* context-search latency via the production path (text index + ROWID
  traversal) versus the full-scan fallback — the index path must win by a
  factor that *grows* with corpus size;
* recall correctness against the generator's ground truth (every document
  generated with the heading must be found).
"""

import dataclasses
import time

import pytest
from conftest import print_table, write_artifact

from repro.ordbms.table import Table
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.query.language import format_query, parse_query
from repro.query.results import ResultSet
from repro.sgml.serializer import serialize
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus

SIZES = (50, 150, 400)
HEADING = "Budget"


def _loaded_store(size: int) -> tuple[XmlStore, int]:
    files = generate_corpus(CorpusSpec(documents=size, seed=200))
    store = XmlStore()
    expected = 0
    for file in files:
        store.store_text(file.text, file.name)
        if HEADING in file.headings:
            expected += 1
    return store, expected


@pytest.fixture(scope="module")
def stores():
    return {size: _loaded_store(size) for size in SIZES}


def _timed(callable_, repeats=5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_report_fig6_context_search(benchmark, stores):
    def report():
        rows = []
        series = []
        for size in SIZES:
            store, expected = stores[size]
            indexed = QueryEngine(store, use_index=True)
            scanning = QueryEngine(store, use_index=False)
            indexed_time, indexed_result = _timed(
                lambda engine=indexed: engine.execute(f"Context={HEADING}")
            )
            scan_time, scan_result = _timed(
                lambda engine=scanning: engine.execute(f"Context={HEADING}"),
                repeats=2,
            )
            assert len(indexed_result) == expected  # perfect recall
            assert len(scan_result) == expected
            rows.append(
                [
                    size,
                    expected,
                    f"{indexed_time * 1000:.2f}ms",
                    f"{scan_time * 1000:.2f}ms",
                    f"{scan_time / indexed_time:.1f}x",
                ]
            )
            series.append(
                {
                    "documents": size,
                    "matches": expected,
                    "indexed_queries_per_second": round(1 / indexed_time, 1),
                    "scan_queries_per_second": round(1 / scan_time, 1),
                    "speedup": round(scan_time / indexed_time, 2),
                }
            )
        print_table(
            f"FIG6: Context={HEADING} over growing collections",
            ["docs", "matches", "index-path", "scan-path", "speedup"],
            rows,
        )
        write_artifact("BENCH_fig6.json", "context_search", series)
        # Shape: the index path wins everywhere.
        for row in rows:
            assert float(row[4][:-1]) > 1.0
    benchmark.pedantic(report, rounds=1, iterations=1)


class _TableCalls:
    """Count physical table traffic while a block runs."""

    def __init__(self):
        self.point = 0
        self.batch = 0
        self.rows = 0

    @property
    def calls(self):
        return self.point + self.batch

    def __enter__(self):
        self._fetch, self._fetch_many = Table.fetch, Table.fetch_many
        counter = self

        def fetch(table, rowid):
            counter.point += 1
            counter.rows += 1
            return counter._fetch(table, rowid)

        def fetch_many(table, rowids):
            rowids = list(rowids)
            counter.batch += 1
            counter.rows += len(rowids)
            return counter._fetch_many(table, rowids)

        Table.fetch, Table.fetch_many = fetch, fetch_many
        return self

    def __exit__(self, *exc_info):
        Table.fetch, Table.fetch_many = self._fetch, self._fetch_many
        return False


def test_report_limit_pushdown_fetches(benchmark, stores):
    """Limit-5 combined query vs the eager drain-then-limit baseline.

    The baseline reproduces the pre-plan read path's behaviour: compute
    every match, materialize every section, then throw away all but the
    first five.  The cursor pipeline must answer byte-identically while
    issuing at least 5x fewer physical table calls.
    """

    def report():
        store, _ = stores[SIZES[-1]]
        query = parse_query(f"Context={HEADING}&Content=resource&limit=5")
        engine = QueryEngine(store)

        with _TableCalls() as eager:
            eager_ctx, root = engine.compile(
                dataclasses.replace(query, limit=None)
            )
            matches = list(root.rows())
            for match in matches:
                match.context, match.content  # eager composition
            eager_set = ResultSet(format_query(query))
            eager_set.extend(matches)
            eager_set = eager_set.limited(query.limit)

        with _TableCalls() as lazy:
            start = time.perf_counter()
            lazy_ctx, root = engine.compile(query)
            lazy_set = ResultSet(format_query(query))
            lazy_set.extend(list(root.rows()))
            for match in lazy_set.matches:
                match.context, match.content
            elapsed = time.perf_counter() - start

        assert len(lazy_set.matches) == query.limit
        identical = serialize(lazy_set.to_xml(), indent=2) == serialize(
            eager_set.to_xml(), indent=2
        )
        print_table(
            f"FIG6: limit pushdown, {format_query(query)} "
            f"({SIZES[-1]} docs, {len(matches)} total matches)",
            ["path", "table calls", "point", "batched", "rows fetched"],
            [
                ["eager drain", eager.calls, eager.point, eager.batch,
                 eager.rows],
                ["cursor pipeline", lazy.calls, lazy.point, lazy.batch,
                 lazy.rows],
            ],
        )
        write_artifact(
            "BENCH_fig6.json",
            "limit_pushdown",
            {
                "query": format_query(query),
                "documents": SIZES[-1],
                "total_matches": len(matches),
                "eager_table_calls": eager.calls,
                "lazy_table_calls": lazy.calls,
                "eager_rows_fetched": eager.rows,
                "lazy_rows_fetched": lazy.rows,
                "eager_hops": eager_ctx.accessor.stats.parent_hops
                + eager_ctx.accessor.stats.sibling_hops,
                "lazy_hops": lazy_ctx.accessor.stats.parent_hops
                + lazy_ctx.accessor.stats.sibling_hops,
                "call_reduction": round(eager.calls / lazy.calls, 2),
                "queries_per_second": round(1 / elapsed, 1),
                "byte_identical": identical,
            },
        )
        assert identical  # the pushdown may never change the answer
        assert eager.calls >= 5 * lazy.calls
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_result_cache(benchmark, stores):
    """Hot-query replay through the generation-keyed result cache.

    The cache's acceptance claim (PR 10): a hot fig6 context search at
    the largest corpus must replay at >= 5x the uncached engine's
    throughput, byte-identically, and a hot hit must touch the physical
    tables **zero** times.  The 5x floor is hard-asserted here and
    banked in the artifact as ``ratchet_speedup_floor`` — the perf gate
    treats it as a monotone floor, so the win cannot quietly regress.
    """

    def report():
        store, expected = stores[SIZES[-1]]
        query = f"Context={HEADING}"
        uncached_engine = QueryEngine(store)
        cached_engine = QueryEngine(store, cache=QueryCache())
        uncached_time, uncached_result = _timed(
            lambda: uncached_engine.execute(query)
        )
        first = cached_engine.execute(query)  # the priming miss
        assert not first.cached
        cached_time, cached_result = _timed(
            lambda: cached_engine.execute(query), repeats=9
        )
        assert cached_result.cached
        assert len(cached_result) == expected
        identical = serialize(cached_result.to_xml(), indent=2) == serialize(
            uncached_result.to_xml(), indent=2
        )
        with _TableCalls() as hot:
            hit = cached_engine.execute(query)
        assert hit.cached
        speedup = uncached_time / cached_time
        print_table(
            f"FIG6: result cache, Context={HEADING} ({SIZES[-1]} docs)",
            ["path", "best run", "QPS", "table calls"],
            [
                ["uncached engine", f"{uncached_time * 1000:.2f}ms",
                 f"{1 / uncached_time:.0f}", "-"],
                ["cached replay", f"{cached_time * 1e6:.1f}us",
                 f"{1 / cached_time:.0f}", hot.calls],
            ],
        )
        write_artifact(
            "BENCH_fig6.json",
            "result_cache",
            {
                "documents": SIZES[-1],
                "matches": expected,
                "uncached_queries_per_second": round(1 / uncached_time, 1),
                "cached_queries_per_second": round(1 / cached_time, 1),
                "speedup": round(speedup, 1),
                "ratchet_speedup_floor": 5,
                "hot_hit_table_calls": hot.calls,
                "byte_identical": identical,
            },
        )
        assert identical  # the cache may never change the answer
        assert hot.calls == 0  # a hot hit is pure memory
        assert speedup >= 5  # the banked acceptance floor
    benchmark.pedantic(report, rounds=1, iterations=1)


@pytest.mark.parametrize("size", SIZES)
def test_bench_context_search_indexed(benchmark, stores, size):
    store, expected = stores[size]
    engine = QueryEngine(store)
    result = benchmark(engine.execute, f"Context={HEADING}")
    assert len(result) == expected


def test_bench_combined_search(benchmark, stores):
    store, _ = stores[SIZES[-1]]
    engine = QueryEngine(store)
    benchmark(engine.execute, f"Context={HEADING}&Content=resource")


def test_bench_content_search(benchmark, stores):
    store, _ = stores[SIZES[-1]]
    engine = QueryEngine(store)
    benchmark(engine.execute, "Content=shuttle")
