"""ABL-AUG — ablation: capability-based query augmentation.

§2.1.5's design choice: push the supported query fragment to the source,
post-process the rest client-side.  The ablation compares three ways of
answering ``Context=Title&Content=<term>`` over the same corpus:

* **native** — the corpus lives in a full NETMARK node (upper bound);
* **augmented** — the corpus lives behind a content-only search box, the
  router pushes the content fragment and refines client-side (the
  NETMARK design);
* **fetch-all** — no native push-down at all: fetch every document and
  process client-side (what augmentation saves).

Claims checked: augmented recall equals native recall exactly, and the
push-down prefilter shrinks residual work versus fetch-all.
"""

import time

import pytest
from conftest import print_table

from repro.federation import ContentOnlySource, NetmarkSource, execute_augmented
from repro.federation.augment import AugmentationReport
from repro.query.language import parse_query
from repro.store import XmlStore
from repro.workloads import generate_lessons

TERMS = ("engine", "thermal", "guidance")


@pytest.fixture(scope="module")
def corpus():
    return generate_lessons(60, seed=700)


@pytest.fixture(scope="module")
def native_source(corpus):
    store = XmlStore()
    for name, text in corpus.items():
        store.store_text(text, name)
    return NetmarkSource("native", store)


@pytest.fixture(scope="module")
def legacy_source(corpus):
    return ContentOnlySource("legacy", corpus)


class _FetchAllSource(ContentOnlySource):
    """A content-only source whose search capability we refuse to use."""

    def __init__(self, documents):
        super().__init__("fetchall", documents)
        from repro.federation.capabilities import Capability

        self.capabilities = Capability.DOCUMENT_FETCH


def test_report_ablation_augmentation(benchmark, corpus, native_source, legacy_source):
    def report():
        fetchall_source = _FetchAllSource(corpus)
        rows = []
        for term in TERMS:
            query = parse_query(f"Context=Title&Content={term}")
            native_answer = {
                match.file_name for match in native_source.native_search(query)
            }
            report = AugmentationReport()
            start = time.perf_counter()
            augmented = execute_augmented(query, legacy_source, report)
            augmented_time = time.perf_counter() - start
            augmented_answer = {match.file_name for match in augmented}

            fetchall_report = AugmentationReport()
            start = time.perf_counter()
            fetchall = execute_augmented(query, fetchall_source, fetchall_report)
            fetchall_time = time.perf_counter() - start

            assert augmented_answer == native_answer  # recall parity
            assert {m.file_name for m in fetchall} == native_answer

            rows.append(
                [
                    term,
                    len(native_answer),
                    report.residual_documents,
                    fetchall_report.residual_documents,
                    f"{augmented_time * 1000:.1f}ms",
                    f"{fetchall_time * 1000:.1f}ms",
                ]
            )
        print_table(
            "ABL-AUG: augmented vs fetch-all residual work",
            ["term", "answers", "aug-docs-fetched", "fetchall-docs-fetched",
             "aug-time", "fetchall-time"],
            rows,
        )
        # Shape: the push-down prefilter fetches a strict subset.
        for row in rows:
            assert row[2] <= row[3]
        assert any(row[2] < row[3] for row in rows)
        # Fetch-all always re-parses the whole corpus.
        assert all(row[3] == len(corpus) for row in rows)
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_bench_native(benchmark, native_source):
    query = parse_query("Context=Title&Content=engine")
    benchmark(native_source.native_search, query)


def test_bench_augmented(benchmark, legacy_source):
    query = parse_query("Context=Title&Content=engine")
    benchmark(execute_augmented, query, legacy_source)


def test_bench_fetch_all(benchmark, corpus):
    source = _FetchAllSource(corpus)
    query = parse_query("Context=Title&Content=engine")
    benchmark(execute_augmented, query, source)
