"""FIG1 — Costs of data integration (paper Fig 1).

Regenerates both curves of the figure:

* the **current trend**: cumulative integration cost under a GAV mediator
  grows linearly with the number of consumers (applications), because
  every application re-pays schema + mapping engineering;
* the **cost-scaling vision**: under NETMARK the per-consumer cost falls,
  because reaching a source costs one databank line.

Costs are *measured artifact counts* from actually-constructed
integrations (``repro.costmodel.accounting``), weighted by typical spec
sizes — not asserted constants.
"""

from conftest import print_table

from repro.costmodel import (
    GrowthScenario,
    artifact_curves,
    build_gav_integration,
    build_netmark_integration,
    consumer_cost_curves,
    is_linear_growth,
    scaling_advantage,
    shows_economies_of_scale,
)

SOURCE_COUNTS = [1, 2, 4, 8, 16, 32]


def test_report_fig1_artifacts_vs_sources(benchmark):
    """Measured integration artifacts as the enterprise adds sources."""
    def report():
        curves = artifact_curves(SOURCE_COUNTS)
        rows = []
        for gav, netmark in zip(curves["gav"], curves["netmark"]):
            rows.append(
                [
                    gav.sources,
                    gav.artifacts,
                    gav.spec_lines,
                    netmark.artifacts,
                    netmark.spec_lines,
                    f"{gav.spec_lines / netmark.spec_lines:.1f}x",
                ]
            )
        print_table(
            "FIG1a: integration artifacts vs sources",
            ["sources", "gav-artifacts", "gav-spec-lines",
             "nm-artifacts", "nm-spec-lines", "gap"],
            rows,
        )
        # Shape: GAV grows ~5 artifacts/source, NETMARK exactly 1/source.
        gav_slope = (
            (curves["gav"][-1].artifacts - curves["gav"][0].artifacts)
            / (SOURCE_COUNTS[-1] - SOURCE_COUNTS[0])
        )
        netmark_slope = (
            (curves["netmark"][-1].artifacts - curves["netmark"][0].artifacts)
            / (SOURCE_COUNTS[-1] - SOURCE_COUNTS[0])
        )
        assert netmark_slope == 1.0
        assert gav_slope >= 4 * netmark_slope
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_fig1_cost_vs_consumers(benchmark):
    """The figure itself: cumulative cost as consumers are added."""
    def report():
        curves = consumer_cost_curves(GrowthScenario(applications=16))
        rows = []
        for gav_point, netmark_point in zip(curves["gav"], curves["netmark"]):
            rows.append(
                [
                    gav_point.consumers,
                    f"{gav_point.cumulative_cost:.0f}",
                    f"{gav_point.cost_per_consumer:.0f}",
                    f"{netmark_point.cumulative_cost:.0f}",
                    f"{netmark_point.cost_per_consumer:.1f}",
                ]
            )
        print_table(
            "FIG1b: cumulative cost vs # of consumers (spec lines)",
            ["consumers", "gav-total", "gav-per-consumer",
             "nm-total", "nm-per-consumer"],
            rows,
        )
        assert is_linear_growth(curves["gav"])
        assert shows_economies_of_scale(curves["netmark"], curves["gav"])
        assert scaling_advantage(curves["gav"], curves["netmark"]) > 10
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_bench_build_gav_integration(benchmark):
    """Cost (time) of standing up the GAV side at 16 sources."""
    benchmark(build_gav_integration, 16)


def test_bench_build_netmark_integration(benchmark):
    """Cost (time) of standing up the NETMARK side at 16 sources."""
    benchmark(build_netmark_integration, 16)
