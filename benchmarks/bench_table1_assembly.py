"""TBL1 — NASA integration applications and assembly effort (paper Table 1).

The paper reports human assembly times: Proposal Financial Management
~1 hour, Risk Assessment ~1 day, Integrated Budget Performance Document
~1 week (Anomaly Tracking's cell is illegible in the scan; we treat it as
~1 day, matching its two-source scope — recorded in EXPERIMENTS.md).

Human hours are unrecoverable; what is measurable and machine-checkable
is the *relative* effort: declarative assembly steps, application-specific
extraction code, and automated assembly runtime.  The paper's ordering
(Proposal < Risk ≈ Anomaly < IBPD) must hold on the effort proxy.
"""

import inspect
import time

from conftest import print_table

from repro.apps import (
    AnomalyTrackingApp,
    IbpdAssembler,
    ProposalFinancialManagement,
    RiskAssessmentApp,
)
from repro.apps import anomaly_tracking, ibpd, proposal_financial, risk_assessment
from repro.workloads import (
    CorpusSpec,
    generate_corpus,
    generate_proposals,
    generate_task_plans,
    generate_tracker_a,
    generate_tracker_b,
)

PAPER_TIMES = {
    "Proposal Financial Management": "1 hour",
    "Risk Assessment": "1 day",
    "Anomaly Tracking": "1 day (assumed; cell illegible)",
    "Integrated Budget Performance Document": "1 week",
}


def _loc(module) -> int:
    """Application-specific code size (a proxy for hand-written effort)."""
    return len(inspect.getsource(module).splitlines())


def _run_proposal():
    files, _ = generate_proposals(30, seed=61)
    app = ProposalFinancialManagement()
    start = time.perf_counter()
    app.load_proposals(files)
    report = app.build_report()
    elapsed = time.perf_counter() - start
    assert report.records
    return app.netmark.assembly_steps, elapsed, _loc(proposal_financial)


def _run_risk():
    files = generate_corpus(CorpusSpec(documents=30, seed=62))
    app = RiskAssessmentApp()
    start = time.perf_counter()
    app.load_documents(files)
    report = app.build_report()
    elapsed = time.perf_counter() - start
    assert report.findings
    return app.netmark.assembly_steps, elapsed, _loc(risk_assessment)


def _run_anomaly():
    app = AnomalyTrackingApp(
        generate_tracker_a(30, seed=63), generate_tracker_b(30, seed=64)
    )
    start = time.perf_counter()
    hits = app.search_descriptions("anomaly")
    elapsed = time.perf_counter() - start
    assert hits
    return app.netmark.assembly_steps, elapsed, _loc(anomaly_tracking)


def _run_ibpd():
    files, _ = generate_task_plans(60, seed=65)
    assembler = IbpdAssembler()
    start = time.perf_counter()
    assembler.load_task_plans(files)
    result = assembler.assemble()
    elapsed = time.perf_counter() - start
    assert result.chapter_count == 60
    return assembler.netmark.assembly_steps, elapsed, _loc(ibpd)


def test_report_table1_assembly(benchmark):
    def report():
        runs = {
            "Proposal Financial Management": _run_proposal(),
            "Risk Assessment": _run_risk(),
            "Anomaly Tracking": _run_anomaly(),
            "Integrated Budget Performance Document": _run_ibpd(),
        }
        rows = []
        for name, (steps, elapsed, loc) in runs.items():
            rows.append(
                [name, PAPER_TIMES[name], steps, loc, f"{elapsed * 1000:.0f}ms"]
            )
        print_table(
            "TABLE 1: NASA integration applications",
            ["application", "paper-assembly-time", "declarative-steps",
             "app-code-lines", "automated-runtime"],
            rows,
        )
        # Shape: the paper's effort ordering holds on the code-size proxy —
        # Proposal is the smallest, IBPD the largest.
        loc_of = {name: loc for name, (_, _, loc) in runs.items()}
        assert loc_of["Proposal Financial Management"] <= loc_of[
            "Integrated Budget Performance Document"
        ]
        assert loc_of["Risk Assessment"] <= loc_of[
            "Integrated Budget Performance Document"
        ]
        # Every application is assembled with a handful of declarative steps —
        # the lean-middleware claim in one line.
        assert all(steps <= 4 for steps, _, _ in runs.values())
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_bench_assemble_proposal_app(benchmark):
    files, _ = generate_proposals(15, seed=66)

    def assemble():
        app = ProposalFinancialManagement()
        app.load_proposals(files)
        return app.build_report()

    report = benchmark(assemble)
    assert report.total_requested > 0


def test_bench_assemble_ibpd(benchmark):
    files, _ = generate_task_plans(20, seed=67)

    def assemble():
        assembler = IbpdAssembler()
        assembler.load_task_plans(files)
        return assembler.assemble()

    result = benchmark(assemble)
    assert result.grand_total > 0


def test_bench_anomaly_query(benchmark):
    app = AnomalyTrackingApp(
        generate_tracker_a(30, seed=68), generate_tracker_b(30, seed=69)
    )
    benchmark(app.search_descriptions, "anomaly")
