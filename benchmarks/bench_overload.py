"""OVERLOAD — load shedding, deadlines and brownout under 2x offered load.

Lean middleware must stay predictable past saturation: the worker pool
sheds at a bounded queue (503 + Retry-After), every request carries a
deadline started at enqueue, expired work is never executed, and
sustained shedding browns searches out to their cheapest plan.

The main drill is **fully deterministic**: a manual (threadless) worker
pool driven slot by slot on a :class:`LogicalClock`, with a fixed
service cost per request.  Offered load, queue depth, response ticks,
shed/timeout counts — all integers, identical on every run, so the CI
perf gate compares them exactly.  The acceptance claims:

* at 2x offered load, goodput stays within 10% of saturated goodput;
* queue depth and p99 response ticks stay bounded (the unprotected
  contrast pool shows the collapse the bound prevents);
* every shed request got 503 with Retry-After; zero requests executed
  after their deadline expired;
* sustained shedding enters brownout (degraded answers), recovery exits.

A threaded smoke pass then checks the same machinery under real
concurrency, asserting only race-free facts (everything resolves, no
unjoined workers, shed envelopes carry Retry-After).
"""

import time

from conftest import print_table, write_artifact

from repro.netmark import Netmark
from repro.resilience import LogicalClock
from repro.server.overload import AdmissionController
from repro.server.workers import WorkerPool
from repro.workloads import CorpusSpec, generate_corpus

TARGET = "/search?Context=Budget&limit=5"
SERVICE_TICKS = 10  # simulated cost of one served request
QUEUE_LIMIT = 8
DEADLINE_TICKS = 200  # > worst admitted wait (8 * 10) + service (10)
SLOTS = 100  # serving slots per phase (capacity: 1 request/slot)


class _MeteredApi:
    """The in-process API with a fixed logical service cost per request.

    Also the referee for the headline guarantee: it counts any request
    that reaches execution with an already-expired deadline (the pool's
    dequeue check must make that count zero).
    """

    def __init__(self, api, clock):
        self.api = api
        self.clock = clock
        self.late_executions = 0

    def request(self, method, target, body="", budget=None):
        if budget is not None and budget.expired:
            self.late_executions += 1
        self.clock.advance(SERVICE_TICKS)
        return self.api.request(method, target, body, budget=budget)


def _drill_node():
    node = Netmark()
    for file in generate_corpus(CorpusSpec(documents=30, seed=150)):
        node.drop(file.name, file.text)
    node.poll()
    return node


def _run_phase(pool, api, offered_per_slot, slots):
    """Drive one load phase slot by slot; returns exact integer stats."""
    clock = api.clock
    inflight = []  # (future, submit_tick), not yet resolved
    stats = {
        "offered": 0, "completed": 0, "shed": 0, "timed_out": 0,
        "degraded": 0, "max_queue_depth": 0, "bad_shed_envelopes": 0,
    }
    latencies = []

    def settle():
        for entry in inflight[:]:
            future, submitted = entry
            if not future.done():
                continue
            inflight.remove(entry)
            response = future.result()
            if response.status == 200:
                stats["completed"] += 1
                latencies.append(clock.now() - submitted)
                if 'degraded="brownout"' in response.body:
                    stats["degraded"] += 1
            elif response.status == 504:
                stats["timed_out"] += 1

    def submit():
        stats["offered"] += 1
        future = pool.submit("GET", TARGET)
        if future.done():  # resolved at submit time == shed
            response = future.result()
            assert response.status == 503
            stats["shed"] += 1
            if response.header("Retry-After") is None:
                stats["bad_shed_envelopes"] += 1
        else:
            inflight.append((future, clock.now()))
        stats["max_queue_depth"] = max(
            stats["max_queue_depth"], pool.queue_depth()
        )

    for _ in range(slots):
        for _ in range(offered_per_slot):
            submit()
        pool.serve_pending(1)
        settle()
    while pool.serve_pending(1):  # drain the tail
        settle()
    settle()
    assert not inflight  # every admitted future resolved
    latencies.sort()
    stats["p99_response_ticks"] = (
        latencies[(99 * (len(latencies) - 1)) // 100] if latencies else 0
    )
    return stats


def test_report_overload_drill(benchmark):
    """Deterministic 2x-overload drill on the logical clock."""

    def report():
        node = _drill_node()
        clock = LogicalClock()
        node.api.clock = clock
        api = _MeteredApi(node.api, clock)
        admission = AdmissionController(
            queue_limit=QUEUE_LIMIT, enter_pressure=8, exit_pressure=1,
            shed_cost=2, brownout_limit=1,
        )
        node.api.admission = admission
        pool = WorkerPool(
            api, admission=admission, deadline_ticks=DEADLINE_TICKS,
            manual=True,
        )

        saturated = _run_phase(pool, api, offered_per_slot=1, slots=SLOTS)
        overload = _run_phase(pool, api, offered_per_slot=2, slots=SLOTS)
        brownout_during_overload = admission.brownout_active
        recovery = _run_phase(pool, api, offered_per_slot=1, slots=SLOTS)

        # Contrast: same deadline discipline, no admission control — the
        # unbounded queue converts overload into mass deadline misses.
        unprotected_pool = WorkerPool(
            api, deadline_ticks=DEADLINE_TICKS, manual=True
        )
        unprotected = _run_phase(
            unprotected_pool, api, offered_per_slot=2, slots=SLOTS
        )

        goodput_ratio = overload["completed"] / max(
            saturated["completed"], 1
        )
        rows = []
        for label, stats in (
            ("saturated (1x)", saturated),
            ("overload (2x)", overload),
            ("recovery (1x)", recovery),
            ("2x, no admission", unprotected),
        ):
            rows.append([
                label, stats["offered"], stats["completed"], stats["shed"],
                stats["timed_out"], stats["max_queue_depth"],
                stats["p99_response_ticks"],
            ])
        print_table(
            f"OVERLOAD: {TARGET} at 1x/2x offered load "
            f"(service {SERVICE_TICKS} ticks, deadline {DEADLINE_TICKS})",
            ["phase", "offered", "ok", "shed", "504", "max depth", "p99 ticks"],
            rows,
        )

        # -- acceptance ------------------------------------------------
        assert goodput_ratio >= 0.9  # goodput holds within 10%
        assert overload["max_queue_depth"] <= QUEUE_LIMIT
        assert overload["p99_response_ticks"] <= DEADLINE_TICKS
        assert overload["shed"] > 0  # overload was real
        assert overload["timed_out"] == 0  # admitted => finished in time
        assert overload["bad_shed_envelopes"] == 0  # 503 always advises
        assert api.late_executions == 0  # never executed past deadline
        assert brownout_during_overload  # sustained shedding browned out
        assert overload["degraded"] > 0
        assert not admission.brownout_active  # recovery exited (hysteresis)
        # The contrast pool shows what the bound prevents.
        assert unprotected["completed"] < overload["completed"]
        assert unprotected["timed_out"] > 0
        assert unprotected["max_queue_depth"] > QUEUE_LIMIT

        write_artifact("BENCH_overload.json", "overload_drill", {
            "service_ticks": SERVICE_TICKS,
            "queue_limit": QUEUE_LIMIT,
            "deadline_ticks": DEADLINE_TICKS,
            "slots_per_phase": SLOTS,
            "saturated": saturated,
            "overload": overload,
            "recovery": recovery,
            "unprotected_overload": unprotected,
            "goodput_ratio": round(goodput_ratio, 3),
            "late_executions": api.late_executions,
            "brownout_entries": admission.brownout_entries,
            "brownout_exits": admission.brownout_exits,
        })
    benchmark.pedantic(report, rounds=1, iterations=1)


def test_report_threaded_overload_smoke(benchmark):
    """The same machinery under real threads: race-free claims only."""

    REQUESTS = 120

    def report():
        node = _drill_node()

        class _SlowClientApi:
            clock = node.api.clock

            def request(self, method, target, body="", budget=None):
                response = node.api.request(method, target, body, budget=budget)
                time.sleep(0.002)  # client drains the response body
                return response

        admission = AdmissionController(queue_limit=16, enter_pressure=8)
        pool = WorkerPool(_SlowClientApi(), workers=4, admission=admission)
        pool.start()
        futures = [
            pool.submit("GET", TARGET) for _ in range(REQUESTS)
        ]
        responses = [future.result(timeout=120) for future in futures]
        unjoined = pool.stop(timeout=30)

        statuses_valid = all(
            response.status in (200, 503) for response in responses
        )
        sheds = [r for r in responses if r.status == 503]
        sheds_advise_retry = all(
            r.header("Retry-After") is not None for r in sheds
        )
        print_table(
            f"OVERLOAD: threaded smoke, {REQUESTS} requests, 4 workers, "
            "queue limit 16",
            ["requests", "ok", "shed", "unjoined workers"],
            [[REQUESTS, len(responses) - len(sheds), len(sheds), unjoined]],
        )
        assert statuses_valid
        assert sheds_advise_retry
        assert unjoined == 0
        write_artifact("BENCH_overload.json", "threaded_smoke", {
            "requests": REQUESTS,
            "all_resolved": len(responses) == REQUESTS,
            "statuses_valid": statuses_valid,
            "sheds_advise_retry": sheds_advise_retry,
            "unjoined_workers": unjoined,
        })
    benchmark.pedantic(report, rounds=1, iterations=1)
