"""FIG3 — the NETMARK system architecture pipeline (paper Figs 2-3).

There is no evaluation number attached to the architecture figures; what
they define is the ingestion path — WebDAV drop folder → daemon → SGML
parser → XML store.  This bench measures that path end to end:
throughput (documents/second and nodes/second) through the exact
production components, per input format.
"""

import pytest
from conftest import print_table

from repro.netmark import Netmark
from repro.workloads import CorpusSpec, generate_corpus

FORMATS = ("ndoc", "npdf", "md", "html", "nppt", "txt")


def _files_for(fmt: str, count: int):
    return generate_corpus(
        CorpusSpec(documents=count, formats=(fmt,), seed=100)
    )


def test_report_fig3_pipeline_throughput(benchmark):
    def report():
        rows = []
        for fmt in FORMATS:
            files = _files_for(fmt, 40)
            node = Netmark(f"bench-{fmt}")
            records = node.ingest_many([(f.name, f.text) for f in files])
            stored = [record for record in records if record.ok]
            nodes = sum(record.node_count for record in stored)
            rows.append([fmt, len(stored), nodes, nodes // max(1, len(stored))])
            assert len(stored) == len(files)  # the pipeline drops nothing
        print_table(
            "FIG3: ingestion pipeline (drop -> daemon -> parse -> store)",
            ["format", "docs", "nodes", "nodes/doc"],
            rows,
        )
    benchmark.pedantic(report, rounds=1, iterations=1)


@pytest.mark.parametrize("fmt", FORMATS)
def test_bench_ingest_by_format(benchmark, fmt):
    """Per-format ingestion latency through the full pipeline."""
    files = _files_for(fmt, 10)
    payload = [(f.name, f.text) for f in files]

    def ingest_batch():
        node = Netmark("bench")
        node.ingest_many(payload)
        return node

    node = benchmark(ingest_batch)
    assert node.document_count == len(files)


def test_bench_daemon_poll_empty(benchmark):
    """Daemon wake-up cost when nothing is pending (the idle loop)."""
    node = Netmark("idle")
    benchmark(node.poll)
