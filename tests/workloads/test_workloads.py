"""Workload generators: determinism, structure, ground-truth alignment."""

from repro.converters import convert
from repro.workloads import (
    CorpusSpec,
    WordStream,
    generate_corpus,
    generate_lessons,
    generate_proposals,
    generate_task_plans,
    generate_tracker_a,
    generate_tracker_b,
    render_csv,
)


class TestWordStream:
    def test_deterministic_per_seed(self):
        first = WordStream(7)
        second = WordStream(7)
        assert [first.sentence() for _ in range(5)] == [
            second.sentence() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        assert [WordStream(1).word() for _ in range(20)] != [
            WordStream(2).word() for _ in range(20)
        ]

    def test_sentence_shape(self):
        sentence = WordStream(3).sentence()
        assert sentence.endswith(".")
        assert sentence[0].isupper()

    def test_dollars_are_round_thousands(self):
        stream = WordStream(4)
        for _ in range(10):
            assert stream.dollars() % 1000 == 0


class TestCorpus:
    def test_count_and_format_cycling(self):
        files = generate_corpus(CorpusSpec(documents=12))
        assert len(files) == 12
        assert {file.format for file in files} == {
            "ndoc", "npdf", "md", "html", "nppt", "txt",
        }

    def test_deterministic(self):
        spec = CorpusSpec(documents=6, seed=99)
        first = generate_corpus(spec)
        second = generate_corpus(CorpusSpec(documents=6, seed=99))
        assert [file.text for file in first] == [file.text for file in second]

    def test_every_file_converts_with_declared_headings(self):
        for file in generate_corpus(CorpusSpec(documents=12, seed=5)):
            document = convert(file.text, file.name)
            contexts = {
                context.text_content().strip()
                for context in document.find_all("context")
            }
            missing = set(file.headings) - contexts
            assert not missing, (file.name, missing)

    def test_planted_term_appears_with_expected_frequency(self):
        spec = CorpusSpec(
            documents=10, planted_term="xyzzy", plant_every=3, seed=2
        )
        files = generate_corpus(spec)
        hits = sum("xyzzy" in file.text for file in files)
        assert hits >= 3

    def test_render_csv_quotes(self):
        text = render_csv(["a", "b"], [["1,5", 'say "hi"']])
        assert text == 'a,b\n"1,5","say ""hi"""\n'


class TestProposals:
    def test_ground_truth_alignment(self):
        files, facts = generate_proposals(8, seed=1)
        assert len(files) == len(facts) == 8
        for file, fact in zip(files, facts):
            assert file.name == fact.file_name
            assert f"${fact.amount:,}" in file.text
            assert fact.division in file.text

    def test_formats_alternate(self):
        files, _ = generate_proposals(4, seed=1)
        assert [file.format for file in files] == [
            "ndoc", "npdf", "ndoc", "npdf",
        ]

    def test_proposals_convert_cleanly(self):
        files, _ = generate_proposals(4, seed=2)
        for file in files:
            document = convert(file.text, file.name)
            headings = {
                context.text_content().strip()
                for context in document.find_all("context")
            }
            assert "Budget" in headings


class TestTaskPlans:
    def test_ground_truth_totals(self):
        files, facts = generate_task_plans(6, seed=3)
        for fact in facts:
            assert fact.total == sum(amount for _, amount in fact.amounts)
            assert fact.total > 0

    def test_center_section_present(self):
        files, facts = generate_task_plans(6, seed=3)
        for file, fact in zip(files, facts):
            assert f"NASA {fact.center}" in file.text


class TestTrackers:
    def test_tracker_vocabularies_differ(self):
        [record_a] = generate_tracker_a(1)
        [record_b] = generate_tracker_b(1)
        fields_a = {name for name, _ in record_a.fields}
        fields_b = {name for name, _ in record_b.fields}
        assert "Description" in fields_a and "Summary" in fields_b
        assert not (fields_a & fields_b)

    def test_lessons_have_title_sections(self):
        lessons = generate_lessons(5)
        assert len(lessons) == 5
        for text in lessons.values():
            assert text.startswith("# Title")
