"""The exception-policy rules: broad-except, raise-foreign, class bases."""

from repro.analysis import analyze_source


class TestBroadExcept:
    def test_fires_on_broad_and_bare_handlers(self, run_fixture):
        violations = run_fixture(
            "broad_except_violation.py",
            "src/repro/server/swallow.py",
            "broad-except",
        )
        assert [v.line for v in violations] == [7, 14]
        assert all(
            v.path == "src/repro/server/swallow.py" for v in violations
        )

    def test_silent_on_specific_and_pragma_annotated(self, run_fixture):
        assert (
            run_fixture(
                "broad_except_clean.py",
                "src/repro/server/boundary.py",
                "broad-except",
            )
            == []
        )

    def test_tuple_handler_with_exception_is_broad(self):
        source = (
            "try:\n    pass\n"
            "except (ValueError, Exception):\n    pass\n"
        )
        violations = analyze_source(source, "src/repro/store/x.py")
        assert [v.rule for v in violations] == ["broad-except"]


class TestRaiseForeign:
    def test_fires_on_builtin_raise(self, run_fixture):
        [violation] = run_fixture(
            "raise_foreign_violation.py",
            "src/repro/store/pick.py",
            "raise-foreign",
        )
        assert violation.line == 6
        assert "ValueError" in violation.message

    def test_silent_on_repro_errors_and_guards(self, run_fixture):
        assert (
            run_fixture(
                "raise_foreign_clean.py",
                "src/repro/store/pick.py",
                "raise-foreign",
            )
            == []
        )

    def test_reraise_of_caught_name_is_fine(self):
        source = (
            "from repro.errors import StoreError\n"
            "try:\n    pass\n"
            "except StoreError as error:\n    raise error\n"
        )
        assert analyze_source(source, "src/repro/store/x.py") == []


class TestForeignExceptionBase:
    def test_fires_on_builtin_base(self, run_fixture):
        [violation] = run_fixture(
            "foreign_exception_base_violation.py",
            "src/repro/xslt/side.py",
            "foreign-exception-base",
        )
        assert violation.line == 4
        assert "SidebandError" in violation.message

    def test_silent_on_repro_base(self, run_fixture):
        assert (
            run_fixture(
                "foreign_exception_base_clean.py",
                "src/repro/xslt/side.py",
                "foreign-exception-base",
            )
            == []
        )

    def test_errors_module_itself_is_exempt(self):
        source = "class ReproError(Exception):\n    pass\n"
        assert analyze_source(source, "src/repro/errors.py") == []
