"""Exception flow: interprocedural escape sets vs the declared policy."""

from dataclasses import replace

from repro.analysis import analyze_project_sources
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.rules.excflow import ExceptionEscapeRule

ERRS = "src/repro/pkga/errs.py"
API = "src/repro/pkga/api.py"

ERRS_SRC = (
    "class GoodError(Exception):\n"
    "    pass\n"
    "\n"
    "\n"
    "class SubError(GoodError):\n"
    "    pass\n"
    "\n"
    "\n"
    "class BadError(Exception):\n"
    "    pass\n"
    "\n"
    "\n"
    "class CrashSignal(BaseException):\n"
    "    pass\n"
)

CONFIG = replace(
    DEFAULT_CONFIG,
    exception_policy={"pkga.api": frozenset({"GoodError"})},
)


def run(api_source):
    return analyze_project_sources(
        {ERRS: ERRS_SRC, API: api_source},
        project_rules=[ExceptionEscapeRule()],
        config=CONFIG,
    )


class TestExceptionEscape:
    def test_undeclared_exception_escaping_an_entry_point_fires(self):
        [violation] = run(
            "from repro.pkga.errs import BadError\n"
            "\n"
            "\n"
            "def handle(doc):\n"
            "    return _convert(doc)\n"
            "\n"
            "\n"
            "def _convert(doc):\n"
            "    if not doc:\n"
            "        raise BadError(doc)\n"
            "    return doc\n"
        )
        assert violation.rule == "exception-flow"
        assert violation.path == API and violation.line == 4
        assert "BadError" in violation.message
        assert "pkga.api.handle" in violation.message

    def test_private_helpers_are_not_entry_points(self):
        # Only ``handle`` was flagged above: ``_convert`` raises the same
        # class but is internal, so the contract does not apply to it.
        violations = run(
            "from repro.pkga.errs import BadError\n"
            "\n"
            "\n"
            "def _convert(doc):\n"
            "    raise BadError(doc)\n"
        )
        assert violations == []

    def test_catching_and_wrapping_satisfies_the_policy(self):
        assert (
            run(
                "from repro.pkga.errs import BadError, GoodError\n"
                "\n"
                "\n"
                "def handle(doc):\n"
                "    try:\n"
                "        return _convert(doc)\n"
                "    except BadError as error:\n"
                "        raise GoodError(str(error)) from error\n"
                "\n"
                "\n"
                "def _convert(doc):\n"
                "    raise BadError(doc)\n"
            )
            == []
        )

    def test_subclasses_of_the_allowed_class_pass(self):
        assert (
            run(
                "from repro.pkga.errs import SubError\n"
                "\n"
                "\n"
                "def handle(doc):\n"
                "    raise SubError(doc)\n"
            )
            == []
        )

    def test_except_exception_does_not_catch_baseexception_kin(self):
        # The hierarchy is real: a BaseException subclass sails past an
        # ``except Exception`` recovery block, so it still escapes.
        [violation] = run(
            "from repro.pkga.errs import CrashSignal\n"
            "\n"
            "\n"
            "def handle(doc):\n"
            "    try:\n"
            "        return _boom(doc)\n"
            "    except Exception:\n"
            "        return None\n"
            "\n"
            "\n"
            "def _boom(doc):\n"
            "    raise CrashSignal(doc)\n"
        )
        assert "CrashSignal" in violation.message

    def test_modules_without_a_policy_are_not_checked(self):
        violations = analyze_project_sources(
            {
                ERRS: ERRS_SRC,
                "src/repro/pkgb/free.py": (
                    "from repro.pkga.errs import BadError\n"
                    "\n"
                    "\n"
                    "def handle(doc):\n"
                    "    raise BadError(doc)\n"
                ),
            },
            project_rules=[ExceptionEscapeRule()],
            config=CONFIG,
        )
        assert violations == []
