"""Resource lifecycle: the CFG-based may-leak analysis."""


class TestResourceLifecycle:
    def test_leaky_paths_fire_at_the_open_line(self, run_fixture):
        violations = run_fixture(
            "resource_lifecycle_violation.py",
            "src/repro/store/example.py",
            "resource-lifecycle",
        )
        assert [v.line for v in violations] == [5, 13, 17]
        by_line = {v.line: v.message for v in violations}
        # A close on only one branch leaves the other path leaking.
        assert "open" in by_line[5] and "close" in by_line[5]
        # An inline construction has no name anything could release.
        assert "inline" in by_line[13]
        # A transaction factory without commit/rollback/close.
        assert "begin" in by_line[17]

    def test_with_finally_transfer_and_generators_pass(self, run_fixture):
        assert (
            run_fixture(
                "resource_lifecycle_clean.py",
                "src/repro/store/example.py",
                "resource-lifecycle",
            )
            == []
        )
