"""The ``python -m repro.analysis`` command line front end."""

import io
import json
from pathlib import Path

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path):
        module = tmp_path / "ok.py"
        module.write_text("x = 1\n")
        code, output = run_cli(str(module), "--no-baseline")
        assert code == 0
        assert "0 violation(s)" in output

    def test_violations_exit_one_with_location(self, tmp_path):
        module = tmp_path / "bad.py"
        module.write_text("print('x')\n")
        code, output = run_cli(str(module), "--no-baseline")
        assert code == 1
        assert "bad.py:1:0 [print-call]" in output

    def test_json_format(self, tmp_path):
        module = tmp_path / "bad.py"
        module.write_text("print('x')\n")
        code, output = run_cli(
            str(module), "--no-baseline", "--format", "json"
        )
        payload = json.loads(output)
        assert code == 1 and payload["ok"] is False
        [violation] = payload["violations"]
        assert violation["rule"] == "print-call"
        assert violation["line"] == 1

    def test_list_rules(self):
        code, output = run_cli("--list-rules")
        assert code == 0
        for rule_id in (
            "layering",
            "broad-except",
            "rowid-mint",
            "private-mutation",
            "wallclock",
            "unseeded-random",
            "print-call",
        ):
            assert rule_id in output

    def test_write_baseline_roundtrip(self, tmp_path):
        module = tmp_path / "bad.py"
        module.write_text("print('x')\n")
        baseline = tmp_path / "baseline.json"
        code, _ = run_cli(
            str(module), "--baseline", str(baseline), "--write-baseline"
        )
        assert code == 0 and baseline.is_file()
        # The generated baseline must suppress what it recorded.
        code, output = run_cli(str(module), "--baseline", str(baseline))
        assert code == 0
        assert "1 baselined" in output

    def test_nonexistent_path_is_usage_error(self, tmp_path):
        code, output = run_cli(str(tmp_path / "no-such-dir"), "--no-baseline")
        assert code == 2
        assert "no such path" in output

    def test_unreadable_baseline_is_usage_error(self, tmp_path):
        module = tmp_path / "ok.py"
        module.write_text("x = 1\n")
        code, output = run_cli(
            str(module), "--baseline", str(tmp_path / "missing.json")
        )
        assert code == 2
        assert "error:" in output

    def test_repo_invocation_matches_ci(self):
        """The exact invocation CI runs, from wherever pytest started."""
        code, output = run_cli(
            str(REPO_ROOT / "src"),
            "--baseline",
            str(REPO_ROOT / "analysis-baseline.json"),
        )
        assert code == 0, output

    def test_dataflow_report_runs_only_that_family(self, tmp_path):
        # print() is outside the dataflow family, so the focused report
        # must not flag it; the unguarded class dict must still fire.
        module = tmp_path / "mixed.py"
        module.write_text(
            "print('x')\n"
            "\n"
            "\n"
            "class Table:\n"
            "    rows = {}\n"
        )
        code, output = run_cli(
            str(module), "--no-baseline", "--report", "dataflow"
        )
        assert code == 1
        assert "shared-class-state" in output
        assert "print-call" not in output

    def test_dataflow_report_matches_ci(self):
        """The dataflow gate CI runs: zero unbaselined findings in src."""
        code, output = run_cli(
            str(REPO_ROOT / "src"),
            "--baseline",
            str(REPO_ROOT / "analysis-baseline.json"),
            "--report",
            "dataflow",
        )
        assert code == 0, output

    def test_json_output_carries_the_guarded_inventory(self, tmp_path):
        module = tmp_path / "state.py"
        module.write_text(
            "# repro: guarded-by(gil) swapped whole before traffic\n"
            "REGISTRY = {}\n"
        )
        code, output = run_cli(
            str(module), "--no-baseline", "--format", "json"
        )
        payload = json.loads(output)
        assert code == 0
        [entry] = payload["guarded_state"]
        assert entry["lock"] == "gil"
        assert entry["line"] == 1
        assert "swapped whole" in entry["rationale"]
