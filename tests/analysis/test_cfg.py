"""The CFG builder: branch, loop, with, and try/finally shapes."""

import ast
import textwrap

from repro.analysis.cfg import ENTRY, EXIT, build_cfg


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def node_at(cfg, line):
    [node] = [n for n in cfg.statement_nodes() if n.line == line]
    return node


class TestStraightLine:
    def test_entry_and_exit_are_synthetic(self):
        cfg = cfg_of("def f():\n    a = 1\n")
        assert cfg.nodes[cfg.entry].kind == ENTRY
        assert cfg.nodes[cfg.exit].kind == EXIT

    def test_statements_chain_entry_to_exit(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = 2
            """
        )
        first, second = node_at(cfg, 3), node_at(cfg, 4)
        assert cfg.succs[cfg.entry] == {first.index}
        assert cfg.succs[first.index] == {second.index}
        assert cfg.succs[second.index] == {cfg.exit}


class TestBranches:
    def test_if_else_forks_and_joins(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
                c = 3
            """
        )
        test = node_at(cfg, 3)
        then, other, join = node_at(cfg, 4), node_at(cfg, 6), node_at(cfg, 7)
        assert cfg.succs[test.index] == {then.index, other.index}
        assert cfg.preds()[join.index] == {then.index, other.index}

    def test_if_without_else_falls_through(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                c = 3
            """
        )
        test, then, join = node_at(cfg, 3), node_at(cfg, 4), node_at(cfg, 5)
        assert cfg.succs[test.index] == {then.index, join.index}


class TestLoops:
    def test_while_has_back_edge_and_break_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                while x:
                    if x:
                        break
                    x = 0
                done = 1
            """
        )
        head = node_at(cfg, 3)
        brk, step, done = node_at(cfg, 5), node_at(cfg, 6), node_at(cfg, 7)
        assert head.index in cfg.succs[step.index]  # back edge
        assert cfg.preds()[done.index] == {head.index, brk.index}

    def test_continue_jumps_to_header(self):
        cfg = cfg_of(
            """
            def f(items):
                for item in items:
                    if item:
                        continue
                    a = 1
            """
        )
        head, cont = node_at(cfg, 3), node_at(cfg, 5)
        assert head.index in cfg.succs[cont.index]


class TestTryFinally:
    def test_return_routes_through_finally(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    return 1
                finally:
                    cleanup = 1
            """
        )
        ret, fin = node_at(cfg, 4), node_at(cfg, 6)
        assert cfg.succs[ret.index] == {fin.index}
        assert cfg.exit in cfg.succs[fin.index]

    def test_try_body_has_exception_edge_to_handler(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    risky = 1
                except ValueError:
                    handled = 1
                done = 1
            """
        )
        risky, handler = node_at(cfg, 4), node_at(cfg, 5)
        handled, done = node_at(cfg, 6), node_at(cfg, 7)
        assert isinstance(handler.stmt, ast.ExceptHandler)
        assert handler.index in cfg.succs[risky.index]
        assert cfg.succs[handler.index] == {handled.index}
        assert cfg.preds()[done.index] == {risky.index, handled.index}

    def test_raise_outside_try_goes_to_exit(self):
        cfg = cfg_of(
            """
            def f():
                raise ValueError("boom")
            """
        )
        boom = node_at(cfg, 3)
        assert cfg.succs[boom.index] == {cfg.exit}


class TestWith:
    def test_with_header_precedes_body(self):
        cfg = cfg_of(
            """
            def f(path):
                with open(path) as fh:
                    data = 1
                done = 1
            """
        )
        header, body, done = node_at(cfg, 3), node_at(cfg, 4), node_at(cfg, 5)
        assert cfg.succs[header.index] == {body.index}
        assert cfg.succs[body.index] == {done.index}
