"""The project index: symbols, resolution, call edges, mutation sites."""

from repro.analysis.callgraph import (
    CONSTANT,
    CONTAINER,
    LOCK,
    build_index,
)
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.core import build_context


def index_of(sources):
    contexts = [
        build_context(source, path)
        for path, source in sorted(sources.items())
    ]
    return build_index(contexts, DEFAULT_CONFIG.mutator_methods)


class TestSymbolTable:
    def test_variable_kinds(self):
        index = index_of(
            {
                "src/repro/pkga/state.py": (
                    "import threading\n"
                    "\n"
                    "CACHE = {}\n"
                    "_LOCK = threading.Lock()\n"
                    "LIMIT = 8\n"
                ),
            }
        )
        assert index.variables["pkga.state.CACHE"].kind == CONTAINER
        assert index.variables["pkga.state._LOCK"].kind == LOCK
        assert index.variables["pkga.state.LIMIT"].kind == CONSTANT

    def test_functions_classes_and_methods_get_qualnames(self):
        index = index_of(
            {
                "src/repro/pkga/mod.py": (
                    "def free():\n"
                    "    return 1\n"
                    "\n"
                    "\n"
                    "class Thing:\n"
                    "    def ping(self):\n"
                    "        return 2\n"
                ),
            }
        )
        assert "pkga.mod.free" in index.functions
        assert "pkga.mod.Thing" in index.classes
        assert index.functions["pkga.mod.Thing.ping"].cls == "pkga.mod.Thing"
        assert index.method("pkga.mod.Thing", "ping") == "pkga.mod.Thing.ping"


class TestResolution:
    SOURCES = {
        "src/repro/pkgb/impl.py": (
            "class Widget:\n"
            "    def ping(self):\n"
            "        return 1\n"
        ),
        "src/repro/pkgb/__init__.py": (
            "from repro.pkgb.impl import Widget\n"
        ),
        "src/repro/pkgb/use.py": (
            "from repro.pkgb import Widget\n"
            "\n"
            "\n"
            "def make():\n"
            "    return Widget()\n"
            "\n"
            "\n"
            "def poke(widget: Widget):\n"
            "    return widget.ping()\n"
        ),
    }

    def test_reexport_chain_resolves_to_the_defining_module(self):
        index = index_of(self.SOURCES)
        assert index.resolve("pkgb.use", "Widget") == (
            "def", "pkgb.impl.Widget",
        )

    def test_constructor_call_makes_an_edge(self):
        index = index_of(self.SOURCES)
        assert "pkgb.impl.Widget" in index.calls["pkgb.use.make"]

    def test_annotated_parameter_resolves_method_calls(self):
        index = index_of(self.SOURCES)
        assert "pkgb.impl.Widget.ping" in index.calls["pkgb.use.poke"]

    def test_self_attribute_type_resolves_method_calls(self):
        index = index_of(
            {
                **self.SOURCES,
                "src/repro/pkgb/svc.py": (
                    "from repro.pkgb import Widget\n"
                    "\n"
                    "\n"
                    "class Service:\n"
                    "    def __init__(self):\n"
                    "        self.widget = Widget()\n"
                    "\n"
                    "    def run(self):\n"
                    "        return self.widget.ping()\n"
                ),
            }
        )
        assert index.attr_type("pkgb.svc.Service", "widget") == (
            "pkgb.impl.Widget"
        )
        assert "pkgb.impl.Widget.ping" in index.calls["pkgb.svc.Service.run"]


class TestMutations:
    def test_mutator_call_global_rebind_and_subscript(self):
        index = index_of(
            {
                "src/repro/pkga/state.py": (
                    "CACHE = {}\n"
                    "COUNT = 0\n"
                    "\n"
                    "\n"
                    "def remember(key):\n"
                    "    CACHE.setdefault(key, [])\n"
                    "\n"
                    "\n"
                    "def bump():\n"
                    "    global COUNT\n"
                    "    COUNT = COUNT + 1\n"
                    "\n"
                    "\n"
                    "def stash(key, value):\n"
                    "    CACHE[key] = value\n"
                ),
            }
        )
        hows = {
            (site.var, site.how, site.function)
            for site in index.mutations
        }
        assert hows == {
            ("pkga.state.CACHE", "setdefault()", "pkga.state.remember"),
            ("pkga.state.COUNT", "global-rebind", "pkga.state.bump"),
            ("pkga.state.CACHE", "subscript", "pkga.state.stash"),
        }

    def test_import_time_mutation_has_no_function(self):
        index = index_of(
            {
                "src/repro/pkga/boot.py": (
                    "TABLE = {}\n"
                    "TABLE.update(a=1)\n"
                ),
            }
        )
        [site] = index.mutations
        assert site.var == "pkga.boot.TABLE"
        assert site.function is None


class TestReachability:
    def test_transitive_closure_over_call_edges(self):
        index = index_of(
            {
                "src/repro/pkga/chain.py": (
                    "def top():\n"
                    "    return middle()\n"
                    "\n"
                    "\n"
                    "def middle():\n"
                    "    return bottom()\n"
                    "\n"
                    "\n"
                    "def bottom():\n"
                    "    return 1\n"
                    "\n"
                    "\n"
                    "def unrelated():\n"
                    "    return 2\n"
                ),
            }
        )
        reach = index.reachable(["pkga.chain.top"])
        assert {"pkga.chain.top", "pkga.chain.middle",
                "pkga.chain.bottom"} <= reach
        assert "pkga.chain.unrelated" not in reach
