"""Shared helpers for the analyzer test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_source

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def run_fixture():
    """Analyze a fixture file as if it lived at a claimed source path.

    The claimed path decides layer identity (for ``layering``) and
    path-scoped exemptions (rowid minters, benchmarks), so each fixture
    can impersonate whichever unit makes its scenario real.
    """

    def runner(name: str, virtual_path: str, rule: str | None = None):
        source = (FIXTURES / name).read_text()
        violations = analyze_source(source, virtual_path)
        if rule is not None:
            violations = [v for v in violations if v.rule == rule]
        return violations

    return runner
