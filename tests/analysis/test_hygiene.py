"""The hygiene rule: no print() in library code."""


class TestPrintCall:
    def test_fires_on_print(self, run_fixture):
        [violation] = run_fixture(
            "print_call_violation.py",
            "src/repro/apps/report.py",
            "print-call",
        )
        assert violation.rule == "print-call"
        assert violation.path == "src/repro/apps/report.py"
        assert violation.line == 5

    def test_silent_on_returns_and_explicit_streams(self, run_fixture):
        assert (
            run_fixture(
                "print_call_clean.py",
                "src/repro/apps/report.py",
                "print-call",
            )
            == []
        )
