"""Lock annotations and lock-order discipline."""

from repro.analysis import analyze_project_sources
from repro.analysis.rules.locks import LockOrderRule

WORK = "src/repro/pkga/work.py"


def run_lock_order(sources):
    return analyze_project_sources(
        sources, project_rules=[LockOrderRule()]
    )


class TestGuardedByRule:
    def test_broken_annotations_are_findings(self, run_fixture):
        violations = run_fixture(
            "guarded_by_violation.py",
            "src/repro/obs/example.py",
            "guarded-by",
        )
        assert [v.line for v in violations] == [3, 6, 9, 12]
        assert "malformed" in violations[0].message
        assert "lock name" in violations[1].message
        assert "rationale" in violations[2].message

    def test_well_formed_annotations_pass(self, run_fixture):
        assert (
            run_fixture(
                "guarded_by_clean.py",
                "src/repro/obs/example.py",
                "guarded-by",
            )
            == []
        )


class TestLockOrder:
    def test_opposite_nesting_orders_are_one_finding(self):
        [violation] = run_lock_order(
            {
                WORK: (
                    "import threading\n"
                    "\n"
                    "a_lock = threading.Lock()\n"
                    "b_lock = threading.Lock()\n"
                    "\n"
                    "\n"
                    "def forward():\n"
                    "    with a_lock:\n"
                    "        with b_lock:\n"
                    "            return 1\n"
                    "\n"
                    "\n"
                    "def backward():\n"
                    "    with b_lock:\n"
                    "        with a_lock:\n"
                    "            return 2\n"
                ),
            }
        )
        assert violation.rule == "lock-order"
        assert violation.path == WORK
        assert "opposite order" in violation.message
        assert "a_lock" in violation.message
        assert "b_lock" in violation.message

    def test_one_global_order_passes(self):
        assert (
            run_lock_order(
                {
                    WORK: (
                        "import threading\n"
                        "\n"
                        "a_lock = threading.Lock()\n"
                        "b_lock = threading.Lock()\n"
                        "\n"
                        "\n"
                        "def forward():\n"
                        "    with a_lock:\n"
                        "        with b_lock:\n"
                        "            return 1\n"
                        "\n"
                        "\n"
                        "def also_forward():\n"
                        "    with a_lock:\n"
                        "        with b_lock:\n"
                        "            return 2\n"
                    ),
                }
            )
            == []
        )

    def test_cross_function_orders_are_compared(self):
        # The two acquisitions live in different modules; the rule still
        # demands one global order across the project.
        other = "src/repro/pkgb/other.py"
        [violation] = run_lock_order(
            {
                WORK: (
                    "import threading\n"
                    "\n"
                    "a_lock = threading.Lock()\n"
                    "b_lock = threading.Lock()\n"
                    "\n"
                    "\n"
                    "def forward():\n"
                    "    with a_lock:\n"
                    "        with b_lock:\n"
                    "            return 1\n"
                ),
                other: (
                    "from repro.pkga.work import a_lock, b_lock\n"
                    "\n"
                    "\n"
                    "def backward():\n"
                    "    with b_lock:\n"
                    "        with a_lock:\n"
                    "            return 2\n"
                ),
            }
        )
        assert violation.rule == "lock-order"
