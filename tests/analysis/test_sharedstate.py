"""Concurrency-readiness: shared-state, shared-class-state, cross-path."""

from dataclasses import replace

from repro.analysis import analyze_project_sources
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.rules.crosspath import CrossPathStateRule
from repro.analysis.rules.sharedstate import SharedModuleStateRule

STATE = "src/repro/pkga/state.py"
USER = "src/repro/pkga/user.py"


def run_shared(sources):
    return [
        v
        for v in analyze_project_sources(
            sources, project_rules=[SharedModuleStateRule()]
        )
        if v.rule == "shared-state"
    ]


class TestSharedClassState:
    def test_fires_on_mutable_class_attributes(self, run_fixture):
        violations = run_fixture(
            "shared_class_state_violation.py",
            "src/repro/server/sessions.py",
            "shared-class-state",
        )
        assert [v.line for v in violations] == [5, 12, 13]
        assert "shared by every instance" in violations[0].message

    def test_silent_on_instance_state_and_annotations(self, run_fixture):
        assert (
            run_fixture(
                "shared_class_state_clean.py",
                "src/repro/server/sessions.py",
                "shared-class-state",
            )
            == []
        )


class TestSharedModuleState:
    def test_unannotated_mutated_state_fires_at_the_binding(self):
        [violation] = run_shared(
            {
                STATE: "CACHE = {}\n",
                USER: (
                    "from repro.pkga import state\n"
                    "\n"
                    "\n"
                    "def remember(key, value):\n"
                    "    state.CACHE[key] = value\n"
                ),
            }
        )
        assert violation.path == STATE
        assert violation.line == 1
        assert "pkga.state.CACHE" in violation.message
        assert "user.py:5" in violation.message

    def test_guarded_by_annotation_suppresses(self):
        assert (
            run_shared(
                {
                    STATE: (
                        "# repro: guarded-by(gil) one dict store, "
                        "swapped whole before traffic\n"
                        "CACHE = {}\n"
                    ),
                    USER: (
                        "from repro.pkga import state\n"
                        "\n"
                        "\n"
                        "def remember(key, value):\n"
                        "    state.CACHE[key] = value\n"
                    ),
                }
            )
            == []
        )

    def test_unmutated_bindings_stay_silent(self):
        # Read-only tables are presumed import-time constants: the rule
        # keys off observed writes, not off type shape.
        assert (
            run_shared(
                {
                    STATE: "TABLE = {\"a\": 1}\n",
                    USER: (
                        "from repro.pkga import state\n"
                        "\n"
                        "\n"
                        "def lookup(key):\n"
                        "    return state.TABLE.get(key)\n"
                    ),
                }
            )
            == []
        )

    def test_locks_themselves_are_exempt(self):
        assert (
            run_shared(
                {
                    STATE: (
                        "import threading\n"
                        "\n"
                        "_READY = threading.Event()\n"
                    ),
                    USER: (
                        "from repro.pkga import state\n"
                        "\n"
                        "\n"
                        "def arm():\n"
                        "    state._READY.set()\n"
                    ),
                }
            )
            == []
        )


class TestCrossPathState:
    CONFIG = replace(
        DEFAULT_CONFIG,
        ingest_roots=frozenset({"pkga.ingest.pump"}),
        read_roots=frozenset({"pkga.query.serve"}),
    )
    INGEST = "src/repro/pkga/ingest.py"
    QUERY = "src/repro/pkga/query.py"

    def run(self, sources):
        return analyze_project_sources(
            sources,
            project_rules=[CrossPathStateRule()],
            config=self.CONFIG,
        )

    def test_writers_on_both_paths_escalate(self):
        [violation] = self.run(
            {
                STATE: "CACHE = {}\n",
                self.INGEST: (
                    "from repro.pkga import state\n"
                    "\n"
                    "\n"
                    "def pump(doc):\n"
                    "    state.CACHE[doc] = 1\n"
                ),
                self.QUERY: (
                    "from repro.pkga import state\n"
                    "\n"
                    "\n"
                    "def serve(term):\n"
                    "    state.CACHE.pop(term, None)\n"
                    "    return term\n"
                ),
            }
        )
        assert violation.rule == "cross-path-state"
        assert violation.path == STATE and violation.line == 1
        assert "pkga.ingest.pump" in violation.message
        assert "pkga.query.serve" in violation.message

    def test_single_path_writers_do_not_escalate(self):
        assert (
            self.run(
                {
                    STATE: "CACHE = {}\n",
                    self.INGEST: (
                        "from repro.pkga import state\n"
                        "\n"
                        "\n"
                        "def pump(doc):\n"
                        "    state.CACHE[doc] = 1\n"
                    ),
                    self.QUERY: (
                        "from repro.pkga import state\n"
                        "\n"
                        "\n"
                        "def serve(term):\n"
                        "    return state.CACHE.get(term)\n"
                    ),
                }
            )
            == []
        )

    def test_guarded_by_annotation_acknowledges_the_hazard(self):
        assert (
            self.run(
                {
                    STATE: (
                        "# repro: guarded-by(store._lock) both paths "
                        "take the store lock around writes\n"
                        "CACHE = {}\n"
                    ),
                    self.INGEST: (
                        "from repro.pkga import state\n"
                        "\n"
                        "\n"
                        "def pump(doc):\n"
                        "    state.CACHE[doc] = 1\n"
                    ),
                    self.QUERY: (
                        "from repro.pkga import state\n"
                        "\n"
                        "\n"
                        "def serve(term):\n"
                        "    state.CACHE.pop(term, None)\n"
                        "    return term\n"
                    ),
                }
            )
            == []
        )
