"""Baseline loading, matching, and staleness."""

import json

import pytest

from repro.analysis import analyze_paths, load_baseline
from repro.errors import AnalysisError


def _write_baseline(path, entries):
    path.write_text(json.dumps({"version": 1, "entries": entries}))
    return path


def _entry(rule, path, content, reason="transitional debt"):
    return {"rule": rule, "path": path, "content": content, "reason": reason}


@pytest.fixture
def bad_module(tmp_path):
    pkg = tmp_path / "src" / "repro" / "store"
    pkg.mkdir(parents=True)
    module = pkg / "poke.py"
    module.write_text("def f(obj):\n    obj._state = 1\n")
    return module


class TestBaselineMatching:
    def test_matching_entry_suppresses(self, tmp_path, bad_module):
        baseline = load_baseline(
            _write_baseline(
                tmp_path / "baseline.json",
                [
                    _entry(
                        "private-mutation",
                        "src/repro/store/poke.py",
                        "obj._state = 1",
                    )
                ],
            )
        )
        report = analyze_paths([bad_module], baseline=baseline)
        assert report.violations == []
        assert len(report.baselined) == 1
        assert report.stale_baseline == []

    def test_content_mismatch_is_stale_not_suppressing(
        self, tmp_path, bad_module
    ):
        baseline = load_baseline(
            _write_baseline(
                tmp_path / "baseline.json",
                [
                    _entry(
                        "private-mutation",
                        "src/repro/store/poke.py",
                        "obj._other = 2",
                    )
                ],
            )
        )
        report = analyze_paths([bad_module], baseline=baseline)
        assert [v.rule for v in report.violations] == ["private-mutation"]
        assert len(report.stale_baseline) == 1

    def test_rule_mismatch_does_not_suppress(self, tmp_path, bad_module):
        baseline = load_baseline(
            _write_baseline(
                tmp_path / "baseline.json",
                [
                    _entry(
                        "print-call",
                        "src/repro/store/poke.py",
                        "obj._state = 1",
                    )
                ],
            )
        )
        report = analyze_paths([bad_module], baseline=baseline)
        assert [v.rule for v in report.violations] == ["private-mutation"]


class TestBaselineLoading:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            load_baseline(path)

    def test_entry_without_reason_rejected(self, tmp_path):
        path = _write_baseline(
            tmp_path / "baseline.json",
            [_entry("layering", "src/repro/x.py", "import y", reason=" ")],
        )
        with pytest.raises(AnalysisError):
            load_baseline(path)
