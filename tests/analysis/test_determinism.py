"""The determinism rules: wall clock and unseeded randomness."""

from repro.analysis import analyze_source


class TestWallClock:
    def test_fires_on_every_clock_read(self, run_fixture):
        violations = run_fixture(
            "determinism_violation.py",
            "src/repro/store/clock.py",
            "wallclock",
        )
        assert [v.line for v in violations] == [7, 11, 15, 19]

    def test_silent_on_timestamp_parameters(self, run_fixture):
        assert (
            run_fixture(
                "determinism_clean.py",
                "src/repro/store/clock.py",
                "wallclock",
            )
            == []
        )

    def test_benchmarks_are_exempt(self, run_fixture):
        assert (
            run_fixture(
                "determinism_violation.py",
                "benchmarks/bench_clock.py",
                "wallclock",
            )
            == []
        )


class TestUnseededRandom:
    def test_fires_on_global_generator(self, run_fixture):
        violations = run_fixture(
            "determinism_violation.py",
            "src/repro/store/clock.py",
            "unseeded-random",
        )
        assert [v.line for v in violations] == [23]

    def test_silent_on_seeded_random(self, run_fixture):
        assert (
            run_fixture(
                "determinism_clean.py",
                "src/repro/store/clock.py",
                "unseeded-random",
            )
            == []
        )

    def test_from_import_of_global_function_fires(self):
        source = "from random import choice\n"
        [violation] = analyze_source(source, "src/repro/store/x.py")
        assert violation.rule == "unseeded-random"

    def test_from_import_of_random_class_is_fine(self):
        source = "from random import Random\nrng = Random(7)\n"
        assert analyze_source(source, "src/repro/store/x.py") == []
