"""The transaction/ROWID discipline rules."""

from repro.analysis import analyze_source


class TestRowIdMint:
    def test_fires_outside_the_physical_layer(self, run_fixture):
        [violation] = run_fixture(
            "rowid_mint_violation.py",
            "src/repro/query/shortcut.py",
            "rowid-mint",
        )
        assert violation.rule == "rowid-mint"
        assert violation.path == "src/repro/query/shortcut.py"
        assert violation.line == 7

    def test_silent_on_decode_and_passthrough(self, run_fixture):
        assert (
            run_fixture(
                "rowid_mint_clean.py",
                "src/repro/query/shortcut.py",
                "rowid-mint",
            )
            == []
        )

    def test_rowid_module_may_construct(self):
        source = "RowId = tuple\nrowid = RowId((0, 1, 2))\n"
        assert analyze_source(source, "src/repro/ordbms/rowid.py") == []


class TestPrivateMutation:
    def test_fires_on_cross_object_poke(self, run_fixture):
        violations = run_fixture(
            "private_mutation_violation.py",
            "src/repro/store/poke.py",
            "private-mutation",
        )
        assert [v.line for v in violations] == [5, 6]
        assert "_next_doc_id" in violations[0].message

    def test_silent_on_self_and_factories(self, run_fixture):
        assert (
            run_fixture(
                "private_mutation_clean.py",
                "src/repro/store/counter.py",
                "private-mutation",
            )
            == []
        )

    def test_transaction_machinery_is_exempt(self, run_fixture):
        assert (
            run_fixture(
                "private_mutation_violation.py",
                "src/repro/ordbms/transaction.py",
                "private-mutation",
            )
            == []
        )

    def test_augmented_and_del_mutations_fire(self):
        source = "def f(table):\n    table._count += 1\n    del table._rows\n"
        violations = analyze_source(source, "src/repro/store/x.py")
        assert [v.rule for v in violations] == [
            "private-mutation",
            "private-mutation",
        ]

    def test_dunder_attributes_not_flagged(self):
        source = "def f(obj):\n    obj.__dict__ = {}\n"
        assert analyze_source(source, "src/repro/store/x.py") == []
