"""The baseline ratchet guard: debt may shrink, never grow."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "check_baseline_ratchet.py"

spec = importlib.util.spec_from_file_location("check_baseline_ratchet",
                                              SCRIPT)
ratchet = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ratchet)


def write_baseline(path, entries):
    path.write_text(json.dumps({"version": 1, "entries": entries}))


def entry(content, rule="layering", path="src/repro/x.py"):
    return {"rule": rule, "path": path, "content": content, "reason": "r"}


class TestRatchet:
    def test_update_then_check_roundtrips(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        lock = tmp_path / "baseline.lock"
        write_baseline(baseline, [entry("import a"), entry("import b")])
        args = ["--baseline", str(baseline), "--lock", str(lock)]
        assert ratchet.main([*args, "--update"]) == 0
        assert ratchet.main(args) == 0
        assert "within the locked set" in capsys.readouterr().out

    def test_new_entry_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        lock = tmp_path / "baseline.lock"
        write_baseline(baseline, [entry("import a")])
        args = ["--baseline", str(baseline), "--lock", str(lock)]
        assert ratchet.main([*args, "--update"]) == 0
        write_baseline(baseline, [entry("import a"), entry("import NEW")])
        assert ratchet.main(args) == 1
        assert "import NEW" in capsys.readouterr().out

    def test_shrinking_passes_and_suggests_tightening(self, tmp_path,
                                                      capsys):
        baseline = tmp_path / "baseline.json"
        lock = tmp_path / "baseline.lock"
        write_baseline(baseline, [entry("import a"), entry("import b")])
        args = ["--baseline", str(baseline), "--lock", str(lock)]
        assert ratchet.main([*args, "--update"]) == 0
        write_baseline(baseline, [entry("import a")])
        assert ratchet.main(args) == 0
        assert "shrank" in capsys.readouterr().out

    def test_missing_lock_is_an_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [])
        code = ratchet.main(
            ["--baseline", str(baseline),
             "--lock", str(tmp_path / "missing.lock")]
        )
        assert code == 1
        assert "--update" in capsys.readouterr().out

    def test_repo_lock_matches_the_committed_baseline(self):
        # The committed pair must be in sync: CI runs exactly this check.
        assert ratchet.main([]) == 0
