"""The baseline ratchet guards: debt may shrink, banked perf may rise."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "check_baseline_ratchet.py"

spec = importlib.util.spec_from_file_location("check_baseline_ratchet",
                                              SCRIPT)
ratchet = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ratchet)


def write_baseline(path, entries):
    path.write_text(json.dumps({"version": 1, "entries": entries}))


def entry(content, rule="layering", path="src/repro/x.py"):
    return {"rule": rule, "path": path, "content": content, "reason": "r"}


def bench_args(tmp_path):
    """Point the bench-ratchet side at an isolated (empty) directory."""
    bench_dir = tmp_path / "bench-baselines"
    bench_dir.mkdir(exist_ok=True)
    return [
        "--bench-baselines", str(bench_dir),
        "--bench-lock", str(bench_dir / "ratchets.lock"),
    ]


class TestRatchet:
    def test_update_then_check_roundtrips(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        lock = tmp_path / "baseline.lock"
        write_baseline(baseline, [entry("import a"), entry("import b")])
        args = ["--baseline", str(baseline), "--lock", str(lock),
                *bench_args(tmp_path)]
        assert ratchet.main([*args, "--update"]) == 0
        assert ratchet.main(args) == 0
        assert "within the locked set" in capsys.readouterr().out

    def test_new_entry_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        lock = tmp_path / "baseline.lock"
        write_baseline(baseline, [entry("import a")])
        args = ["--baseline", str(baseline), "--lock", str(lock),
                *bench_args(tmp_path)]
        assert ratchet.main([*args, "--update"]) == 0
        write_baseline(baseline, [entry("import a"), entry("import NEW")])
        assert ratchet.main(args) == 1
        assert "import NEW" in capsys.readouterr().out

    def test_shrinking_passes_and_suggests_tightening(self, tmp_path,
                                                      capsys):
        baseline = tmp_path / "baseline.json"
        lock = tmp_path / "baseline.lock"
        write_baseline(baseline, [entry("import a"), entry("import b")])
        args = ["--baseline", str(baseline), "--lock", str(lock),
                *bench_args(tmp_path)]
        assert ratchet.main([*args, "--update"]) == 0
        write_baseline(baseline, [entry("import a")])
        assert ratchet.main(args) == 0
        assert "shrank" in capsys.readouterr().out

    def test_missing_lock_is_an_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [])
        code = ratchet.main(
            ["--baseline", str(baseline),
             "--lock", str(tmp_path / "missing.lock")]
        )
        assert code == 1
        assert "--update" in capsys.readouterr().out

    def test_repo_lock_matches_the_committed_baseline(self):
        # The committed pair must be in sync: CI runs exactly this check.
        assert ratchet.main([]) == 0


class TestBenchRatchet:
    """Committed ``ratchet_*`` bench keys may never drop below the lock."""

    def _setup(self, tmp_path, floor=5.0):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [])
        bench_dir = tmp_path / "bench-baselines"
        bench_dir.mkdir()
        (bench_dir / "BENCH_fig6.json").write_text(json.dumps(
            {"result_cache": {"ratchet_speedup_floor": floor,
                              "hot_hit_table_calls": 0}}
        ))
        args = [
            "--baseline", str(baseline),
            "--lock", str(tmp_path / "baseline.lock"),
            "--bench-baselines", str(bench_dir),
            "--bench-lock", str(bench_dir / "ratchets.lock"),
        ]
        return args, bench_dir

    def _rewrite(self, bench_dir, floor):
        (bench_dir / "BENCH_fig6.json").write_text(json.dumps(
            {"result_cache": {"ratchet_speedup_floor": floor,
                              "hot_hit_table_calls": 0}}
        ))

    def test_update_banks_the_floor_and_roundtrips(self, tmp_path, capsys):
        args, _ = self._setup(tmp_path)
        assert ratchet.main([*args, "--update"]) == 0
        assert ratchet.main(args) == 0
        out = capsys.readouterr().out
        assert "1 bench ratchet key(s)" in out

    def test_lowered_floor_fails(self, tmp_path, capsys):
        args, bench_dir = self._setup(tmp_path, floor=5.0)
        assert ratchet.main([*args, "--update"]) == 0
        self._rewrite(bench_dir, floor=3.0)
        assert ratchet.main(args) == 1
        assert "below the locked floor" in capsys.readouterr().out

    def test_raised_floor_passes_and_suggests_banking(self, tmp_path,
                                                      capsys):
        args, bench_dir = self._setup(tmp_path, floor=5.0)
        assert ratchet.main([*args, "--update"]) == 0
        self._rewrite(bench_dir, floor=8.0)
        assert ratchet.main(args) == 0
        assert "rose above" in capsys.readouterr().out

    def test_vanished_ratchet_key_fails(self, tmp_path, capsys):
        args, bench_dir = self._setup(tmp_path)
        assert ratchet.main([*args, "--update"]) == 0
        (bench_dir / "BENCH_fig6.json").write_text(json.dumps(
            {"result_cache": {"hot_hit_table_calls": 0}}
        ))
        assert ratchet.main(args) == 1
        assert "lost its banked key" in capsys.readouterr().out

    def test_missing_bench_lock_with_ratchets_fails(self, tmp_path, capsys):
        args, _ = self._setup(tmp_path)
        # Analysis lock exists, bench lock never written.
        baseline_lock = Path(args[3])
        baseline_lock.write_text("")
        assert ratchet.main(args) == 1
        assert "--update" in capsys.readouterr().out

    def test_repo_bench_lock_matches_committed_baselines(self):
        status, _ = ratchet.check_bench_ratchets(
            ratchet.DEFAULT_BENCH_BASELINES, ratchet.DEFAULT_BENCH_LOCK
        )
        assert status == 0
