"""The forward-dataflow engine: fixpoints, joins, the divergence guard."""

import ast
import textwrap

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import run_forward
from repro.errors import AnalysisError


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


class AssignedNames:
    """May-analysis: the set of names that may have been assigned."""

    def initial(self):
        return frozenset()

    def join(self, left, right):
        return left | right

    def transfer(self, node, state):
        out = set(state)
        for target in getattr(node.stmt, "targets", []):
            if isinstance(target, ast.Name):
                out.add(target.id)
        return frozenset(out)


class Diverging:
    """A deliberately non-monotone analysis: the state never stabilises."""

    def initial(self):
        return 0

    def join(self, left, right):
        return max(left, right)

    def transfer(self, node, state):
        return state + 1


class TestFixpoint:
    def test_straight_line_accumulates(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = 2
            """
        )
        result = run_forward(cfg, AssignedNames())
        assert result.at_exit(cfg) == {"a", "b"}

    def test_branches_join_as_union(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
            """
        )
        result = run_forward(cfg, AssignedNames())
        assert result.at_exit(cfg) == {"a", "b"}

    def test_loop_converges_with_back_edge(self):
        cfg = cfg_of(
            """
            def f(x):
                while x:
                    a = 1
                b = 2
            """
        )
        result = run_forward(cfg, AssignedNames())
        assert result.at_exit(cfg) == {"a", "b"}

    def test_unreachable_code_stays_bottom(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                dead = 1
            """
        )
        result = run_forward(cfg, AssignedNames())
        [dead] = [n for n in cfg.statement_nodes() if n.line == 4]
        assert result.before[dead.index] is None

    def test_exception_edge_reaches_finally(self):
        # On the exception path the assignment in the try body may be
        # skipped, so only the finally's own fact is guaranteed — the
        # may-union at exit still sees both.
        cfg = cfg_of(
            """
            def f():
                try:
                    a = 1
                finally:
                    b = 2
            """
        )
        result = run_forward(cfg, AssignedNames())
        [fin] = [n for n in cfg.statement_nodes() if n.line == 6]
        assert result.before[fin.index] in ({"a"}, frozenset())
        assert result.at_exit(cfg) == {"a", "b"}


class TestDivergenceGuard:
    def test_non_monotone_analysis_is_an_error_not_a_hang(self):
        cfg = cfg_of(
            """
            def f(x):
                while x:
                    a = 1
            """
        )
        with pytest.raises(AnalysisError, match="not monotone"):
            run_forward(cfg, Diverging())
