"""The layering rule: the repro.* import DAG."""

from repro.analysis import analyze_source


class TestLayering:
    def test_fires_on_upward_import(self, run_fixture):
        violations = run_fixture(
            "layering_violation.py", "src/repro/ordbms/peek.py", "layering"
        )
        [violation] = violations
        assert violation.rule == "layering"
        assert violation.path == "src/repro/ordbms/peek.py"
        assert violation.line == 3
        assert "ordbms may not import repro.store" in violation.message

    def test_silent_on_downward_imports(self, run_fixture):
        assert (
            run_fixture(
                "layering_clean.py", "src/repro/store/ok.py", "layering"
            )
            == []
        )

    def test_federation_restricted_to_server_and_apps(self):
        source = "from repro.federation.router import Router\n"
        for unit, expected in (
            ("server", 0),
            ("apps", 0),
            ("query", 1),
            ("store", 1),
        ):
            violations = analyze_source(
                source, f"src/repro/{unit}/mod.py"
            )
            layering = [v for v in violations if v.rule == "layering"]
            assert len(layering) == expected, unit

    def test_root_facade_import_restricted(self):
        source = "from repro import Netmark\n"
        [violation] = analyze_source(source, "src/repro/ordbms/mod.py")
        assert violation.rule == "layering"
        assert "__root__" in violation.message

    def test_apps_may_import_the_facade(self):
        source = "from repro import Netmark\n"
        assert analyze_source(source, "src/repro/apps/mod.py") == []

    def test_relative_imports_ignored(self):
        source = "from .table import Table\n"
        assert analyze_source(source, "src/repro/ordbms/mod.py") == []

    def test_unknown_unit_must_be_mapped(self):
        violations = analyze_source(
            "x = 1\n", "src/repro/newtier/mod.py"
        )
        [violation] = violations
        assert violation.rule == "layering"
        assert "layer map" in violation.message

    def test_files_outside_repro_are_exempt(self):
        source = "from repro.federation.router import Router\n"
        assert analyze_source(source, "tests/helpers/mod.py") == []


class TestObsLayering:
    """obs is a base layer: importable from everywhere, imports nothing.

    The observability layer only works if every tier can report into it
    — so, like ``errors``, it is a *universal unit* in the DAG.  The
    price of that position: obs itself may import nothing above the
    error vocabulary, or the DAG would silently invert.
    """

    def layering(self, source: str, virtual_path: str):
        return [
            violation
            for violation in analyze_source(source, virtual_path)
            if violation.rule in {"layering", "module-layering"}
        ]

    def test_every_unit_may_import_obs(self):
        source = "from repro import obs\nfrom repro.obs import Tracer\n"
        for unit in (
            "sgml", "ordbms", "store", "query", "xslt", "server",
            "federation", "resilience", "converters", "analysis",
        ):
            assert self.layering(source, f"src/repro/{unit}/mod.py") == [], unit

    def test_module_contracted_files_may_import_obs(self):
        # wal, recovery, plan and the accessor carry module-granular
        # contracts; the universal grant must reach them too.
        source = "from repro import obs\n"
        for path in (
            "src/repro/ordbms/wal.py",
            "src/repro/ordbms/recovery.py",
            "src/repro/query/plan.py",
            "src/repro/store/accessor.py",
        ):
            assert self.layering(source, path) == [], path

    def test_obs_may_import_only_errors(self):
        source = "from repro.errors import ObservabilityError\n"
        assert self.layering(source, "src/repro/obs/metrics.py") == []

    def test_obs_may_not_import_upward(self):
        for source in (
            "from repro.ordbms import Database\n",
            "from repro.query.engine import QueryEngine\n",
            "from repro.resilience.clock import LogicalClock\n",
            "from repro.server.http import NetmarkHttpApi\n",
        ):
            violations = self.layering(source, "src/repro/obs/trace.py")
            assert violations, source
            assert "obs may not import" in violations[0].message


class TestModuleLayering:
    """Module-granular contracts for the read-path hot spots."""

    def check(self, source: str, virtual_path: str):
        return [
            violation
            for violation in analyze_source(source, virtual_path)
            if violation.rule == "module-layering"
        ]

    def test_accessor_may_not_import_composition(self):
        source = "from repro.store.compose import compose_node\n"
        [violation] = self.check(source, "src/repro/store/accessor.py")
        assert (
            "store.accessor may not import repro.store.compose"
            in violation.message
        )

    def test_accessor_may_not_import_store_facade(self):
        # The whole-unit grant is absent on purpose: only the schema
        # module is granted, so the facade import stays a violation.
        source = "from repro.store import XmlStore\n"
        [violation] = self.check(source, "src/repro/store/accessor.py")
        assert "repro.store" in violation.message

    def test_accessor_granted_imports_are_clean(self):
        source = (
            "from repro.ordbms import Database, RowId\n"
            "from repro.ordbms.table import ROWID_PSEUDO\n"
            "from repro.sgml.nodetypes import NodeType\n"
            "from repro.store.schema import XML_TABLE\n"
            "from repro.errors import StoreError\n"
        )
        assert self.check(source, "src/repro/store/accessor.py") == []

    def test_plan_may_not_import_the_engine(self):
        # compile/execute is a one-way street: the engine compiles
        # queries into plans, never the other way around.
        source = "from repro.query.engine import QueryEngine\n"
        [violation] = self.check(source, "src/repro/query/plan.py")
        assert (
            "query.plan may not import repro.query.engine"
            in violation.message
        )

    def test_plan_may_not_import_the_parser(self):
        source = "from repro.query.language import parse_query\n"
        [violation] = self.check(source, "src/repro/query/plan.py")
        assert "query.language" in violation.message

    def test_plan_whole_unit_store_grant_covers_submodules(self):
        source = (
            "from repro.store.xmlstore import XmlStore\n"
            "from repro.store.accessor import NodeAccessor\n"
            "from repro.store.compose import compose_section\n"
            "from repro.query.ast import ContentSpec\n"
            "from repro.query.results import SectionMatch\n"
        )
        assert self.check(source, "src/repro/query/plan.py") == []

    def test_unlisted_modules_are_exempt(self):
        # The engine sits above the plan algebra; only the modules named
        # in DEFAULT_MODULE_LAYERS carry a module-granular contract.
        source = "from repro.query.language import parse_query\n"
        assert self.check(source, "src/repro/query/engine.py") == []
