"""The layering rule: the repro.* import DAG."""

from repro.analysis import analyze_source


class TestLayering:
    def test_fires_on_upward_import(self, run_fixture):
        violations = run_fixture(
            "layering_violation.py", "src/repro/ordbms/peek.py", "layering"
        )
        [violation] = violations
        assert violation.rule == "layering"
        assert violation.path == "src/repro/ordbms/peek.py"
        assert violation.line == 3
        assert "ordbms may not import repro.store" in violation.message

    def test_silent_on_downward_imports(self, run_fixture):
        assert (
            run_fixture(
                "layering_clean.py", "src/repro/store/ok.py", "layering"
            )
            == []
        )

    def test_federation_restricted_to_server_and_apps(self):
        source = "from repro.federation.router import Router\n"
        for unit, expected in (
            ("server", 0),
            ("apps", 0),
            ("query", 1),
            ("store", 1),
        ):
            violations = analyze_source(
                source, f"src/repro/{unit}/mod.py"
            )
            layering = [v for v in violations if v.rule == "layering"]
            assert len(layering) == expected, unit

    def test_root_facade_import_restricted(self):
        source = "from repro import Netmark\n"
        [violation] = analyze_source(source, "src/repro/ordbms/mod.py")
        assert violation.rule == "layering"
        assert "__root__" in violation.message

    def test_apps_may_import_the_facade(self):
        source = "from repro import Netmark\n"
        assert analyze_source(source, "src/repro/apps/mod.py") == []

    def test_relative_imports_ignored(self):
        source = "from .table import Table\n"
        assert analyze_source(source, "src/repro/ordbms/mod.py") == []

    def test_unknown_unit_must_be_mapped(self):
        violations = analyze_source(
            "x = 1\n", "src/repro/newtier/mod.py"
        )
        [violation] = violations
        assert violation.rule == "layering"
        assert "layer map" in violation.message

    def test_files_outside_repro_are_exempt(self):
        source = "from repro.federation.router import Router\n"
        assert analyze_source(source, "tests/helpers/mod.py") == []
