"""Pragma parsing and suppression semantics."""

from repro.analysis import analyze_source
from repro.analysis.pragmas import extract_pragmas


class TestPragmaParsing:
    def test_extracts_rule_reason_and_line(self):
        source = "x = 1  # lint: allow-print-call(demo reason)\n"
        pragmas, malformed = extract_pragmas(source)
        [pragma] = pragmas
        assert (pragma.rule, pragma.reason, pragma.line) == (
            "print-call",
            "demo reason",
            1,
        )
        assert malformed == []

    def test_pragma_in_string_literal_is_ignored(self):
        source = 'x = "# lint: allow-print-call(nope)"\n'
        pragmas, malformed = extract_pragmas(source)
        assert pragmas == [] and malformed == []

    def test_malformed_pragma_detected(self):
        source = "x = 1  # lint: allow-print-call\n"
        pragmas, malformed = extract_pragmas(source)
        assert pragmas == [] and malformed == [1]


class TestPragmaSuppression:
    def test_pragma_suppresses_same_line_same_rule(self):
        source = "print('x')  # lint: allow-print-call(CLI demo)\n"
        assert analyze_source(source, "src/repro/apps/x.py") == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        source = "print('x')  # lint: allow-broad-except(wrong rule)\n"
        violations = analyze_source(source, "src/repro/apps/x.py")
        assert [v.rule for v in violations] == ["print-call"]

    def test_reasonless_pragma_does_not_suppress_and_is_reported(self):
        source = "print('x')  # lint: allow-print-call()\n"
        violations = analyze_source(source, "src/repro/apps/x.py")
        assert sorted(v.rule for v in violations) == [
            "bad-pragma",
            "print-call",
        ]

    def test_malformed_pragma_is_reported(self):
        source = "x = 1  # lint: allow-print-call\n"
        violations = analyze_source(source, "src/repro/apps/x.py")
        assert [v.rule for v in violations] == ["bad-pragma"]
