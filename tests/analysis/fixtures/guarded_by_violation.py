"""Fixture: broken guarded-by annotations are themselves findings."""

# repro: guarded-by missing the bracketed lock name
TABLE = {}

# repro: guarded-by() forgot to name the lock
QUEUE = []

# repro: guarded-by(gil)
FLAGS = {}

# repro: guarded-by(not a lock) spaces are not a lock name
LIMITS = {}
