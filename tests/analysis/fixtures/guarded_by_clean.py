"""Fixture: well-formed guarded-by annotations."""

# repro: guarded-by(gil) swapped whole by setup code before traffic
REGISTRY = {}

# repro: guarded-by(import-time) populated on import, read-only afterwards
FORMATS = {}

# repro: guarded-by(store._lock) every writer goes through Store.put
CACHE = {}
