"""Analyzed as src/repro/ordbms/peek.py: the substrate peeks upward."""

from repro.store.xmlstore import XmlStore  # line 3: ordbms -> store


def peek(store: XmlStore) -> int:
    return len(store)
