"""Fixture: mutable class-body assignments shared by every instance."""


class SessionTable:
    sessions = {}

    def add(self, key, value):
        self.sessions[key] = value


class WorkerPool:
    workers = list()
    limits = dict(default=4)
