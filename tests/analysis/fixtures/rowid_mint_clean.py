"""ROWIDs arrive as data: decoded from text or handed over by storage."""

from repro.ordbms import RowId


def parse(text: str) -> RowId:
    return RowId.decode(text)


def fetch(table, rowid: RowId):
    return table.fetch(rowid)
