"""A parallel exception hierarchy rooted outside repro.errors."""


class SidebandError(ValueError):  # line 4
    pass
