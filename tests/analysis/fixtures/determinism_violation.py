"""Wall-clock reads and global randomness in library code."""

import datetime as _dt
import random
import time
from datetime import datetime
from time import time as wallclock  # line 7: smuggled clock


def stamp() -> float:
    return time.time()  # line 11


def label() -> str:
    return datetime.now().isoformat()  # line 15


def label_qualified() -> str:
    return _dt.datetime.now().isoformat()  # line 19


def jitter() -> float:
    return random.random()  # line 23
