"""Own-state mutation and constructor-style factories are fine."""


class Counter:
    def __init__(self) -> None:
        self._value = 0

    def bump(self) -> None:
        self._value += 1

    @classmethod
    def restore(cls, value: int) -> "Counter":
        counter = cls.__new__(cls)
        counter._value = value
        return counter


def fresh() -> Counter:
    counter = Counter()
    counter._value = 10
    return counter
