"""Fixture: every opened resource is released, managed, or transferred."""


def with_managed(path):
    with open(path) as fh:
        return fh.read()


def finally_closed(path):
    fh = open(path)
    try:
        return fh.read()
    finally:
        fh.close()


def ownership_returned(path):
    fh = open(path)
    return fh


def handed_off(sink, path):
    fh = open(path)
    sink.adopt(fh)


def committed(db, rows):
    tx = db.begin()
    try:
        tx.stage(rows)
        tx.commit()
    finally:
        tx.close()


def streaming(path):
    fh = open(path)
    yield fh.read()
    fh.close()
