"""Timestamps as parameters; randomness through a seeded Random."""

import datetime as _dt
import random


def stamp(file_date: _dt.datetime) -> str:
    return file_date.isoformat()


def jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()
