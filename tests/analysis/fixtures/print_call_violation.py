"""Library code writing to stdout."""


def report(match) -> None:
    print(match.brief())  # line 5
