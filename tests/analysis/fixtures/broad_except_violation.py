"""Two broad handlers: 'except Exception' and a bare except."""


def swallow_typed(action):
    try:
        return action()
    except Exception:  # line 7
        return None


def swallow_bare(action):
    try:
        return action()
    except:  # noqa: E722 - line 14, deliberately bare
        return None
