"""Results are returned; explicit streams are the caller's choice."""

import sys


def report(match) -> str:
    return match.brief()


def emit(text: str) -> None:
    sys.stdout.write(text + "\n")
