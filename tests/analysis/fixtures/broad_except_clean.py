"""Specific handlers, plus one annotated broad handler."""

from repro.errors import DocumentNotFoundError, ReproError


def lookup(store, doc_id):
    try:
        return store.describe(doc_id)
    except DocumentNotFoundError:
        return None


def boundary(action):
    try:
        return action()
    except ReproError:
        return None
    except Exception:  # lint: allow-broad-except(plugin code may raise anything; the API boundary must survive it)
        return None
