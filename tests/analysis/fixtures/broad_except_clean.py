"""Specific handlers, plus one annotated broad handler."""

from repro.errors import DocumentNotFoundError, ReproError, ResilienceError


def lookup(store, doc_id):
    try:
        return store.describe(doc_id)
    except DocumentNotFoundError:
        return None


def degrade(source, query):
    # Catching the resilience branch specifically is not a broad except.
    try:
        return source.native_search(query)
    except ResilienceError:
        return []


def boundary(action):
    try:
        return action()
    except ReproError:
        return None
    except Exception:  # lint: allow-broad-except(plugin code may raise anything; the API boundary must survive it)
        return None
