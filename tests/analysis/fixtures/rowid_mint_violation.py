"""Analyzed as src/repro/query/shortcut.py: minting a raw ROWID."""

from repro.ordbms import RowId


def guess_sibling(rowid: RowId) -> RowId:
    return RowId(rowid.file_no, rowid.block_no, rowid.slot_no + 1)  # line 7
