"""Exception classes extend the repro.errors hierarchy."""

from repro.errors import StoreError


class SectionMissingError(StoreError):
    pass
