"""Analyzed as src/repro/store/poke.py: poking another object's state."""


def rewind(decomposer) -> None:
    decomposer._next_doc_id = 1  # line 5
    decomposer._next_node_id = 1  # line 6
