"""Fixture: class state that is per-instance, immutable, or declared."""

from dataclasses import dataclass, field


@dataclass
class Job:
    tags: list = field(default_factory=list)


class Server:
    FORMATS = ("xml", "html")
    # repro: guarded-by(gil) read-mostly routing table, swapped whole at setup
    routes = {}

    def __init__(self):
        self.sessions = {}
