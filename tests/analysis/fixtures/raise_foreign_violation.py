"""Raising builtins across module boundaries."""


def pick(mapping, key):
    if key not in mapping:
        raise ValueError(f"unknown key {key!r}")  # line 6
    return mapping[key]
