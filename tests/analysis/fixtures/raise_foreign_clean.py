"""Repro errors, re-raises, and abstract-method guards are all fine."""

from repro.errors import QueryError, SourceTimeoutError, SourceUnavailableError


def pick(mapping, key):
    if key not in mapping:
        raise QueryError(f"unknown key {key!r}")
    return mapping[key]


def probe(source, budget):
    # The resilience branch of the hierarchy is just as raisable.
    if source is None:
        raise SourceUnavailableError("source went away")
    if budget <= 0:
        raise SourceTimeoutError(f"no budget left ({budget})")
    return source


def reraise(action):
    try:
        return action()
    except QueryError:
        raise


class Base:
    def template(self):
        raise NotImplementedError
