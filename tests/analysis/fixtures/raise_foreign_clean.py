"""Repro errors, re-raises, and abstract-method guards are all fine."""

from repro.errors import QueryError


def pick(mapping, key):
    if key not in mapping:
        raise QueryError(f"unknown key {key!r}")
    return mapping[key]


def reraise(action):
    try:
        return action()
    except QueryError:
        raise


class Base:
    def template(self):
        raise NotImplementedError
