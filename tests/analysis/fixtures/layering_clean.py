"""Analyzed as src/repro/store/ok.py: the store looks only downward."""

from repro.errors import StoreError
from repro.ordbms.table import Table
from repro.sgml.dom import Document


def sizes(table: Table, document: Document) -> tuple[int, int]:
    if table is None:
        raise StoreError("no table")
    return len(table), len(document.children)
