"""Fixture: opened resources that may leak on some path."""


def conditional_close(path, flush):
    fh = open(path)
    data = fh.read()
    if flush:
        fh.close()
    return data


def inline_argument(recover, base):
    return recover(open(base))


def leaked_transaction(db, rows):
    tx = db.begin()
    tx.stage(rows)
