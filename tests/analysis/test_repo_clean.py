"""Meta-test: the analyzer passes over this repository's own source.

This is the enforcement point — CI runs the CLI, but even a bare
``pytest`` run refuses to go green if someone introduces an upward
import, a naked ``raise ValueError``, a minted ROWID, a wall-clock
read, or lets the baseline rot.
"""

from pathlib import Path

from repro.analysis import analyze_paths, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]

MAX_BASELINED = 10


class TestRepositoryInvariants:
    def _report(self):
        baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
        return analyze_paths([REPO_ROOT / "src"], baseline=baseline)

    def test_source_tree_is_clean(self):
        report = self._report()
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.violations == [], f"new violations:\n{rendered}"

    def test_baseline_has_no_stale_entries(self):
        report = self._report()
        stale = [
            f"[{entry.rule}] {entry.path}: {entry.content!r}"
            for entry in report.stale_baseline
        ]
        assert stale == [], f"stale baseline entries: {stale}"

    def test_baseline_stays_small(self):
        report = self._report()
        assert len(report.baselined) <= MAX_BASELINED

    def test_every_pragma_carries_a_reason(self):
        # analyze_paths already reports reason-less pragmas through the
        # bad-pragma rule; this asserts the whole tree was scanned.
        report = self._report()
        assert report.files_checked > 90
