"""Meta-test: the analyzer passes over this repository's own source.

This is the enforcement point — CI runs the CLI, but even a bare
``pytest`` run refuses to go green if someone introduces an upward
import, a naked ``raise ValueError``, a minted ROWID, a wall-clock
read, unguarded shared state, a leaked resource, or lets the baseline
rot.
"""

from pathlib import Path

from repro.analysis import analyze_paths, load_baseline
from repro.analysis.callgraph import build_index
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.core import build_context
from repro.analysis.rules import DATAFLOW_RULE_IDS

REPO_ROOT = Path(__file__).resolve().parents[2]

MAX_BASELINED = 10

#: The shared-state audit must stay inventoried: at least the metrics
#: registry, the enable flag, the converter registry and the SQL keyword
#: table carry guarded-by declarations today.
MIN_GUARDED_ANNOTATIONS = 4


class TestRepositoryInvariants:
    def _report(self):
        baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
        return analyze_paths([REPO_ROOT / "src"], baseline=baseline)

    def test_source_tree_is_clean(self):
        report = self._report()
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.violations == [], f"new violations:\n{rendered}"

    def test_baseline_has_no_stale_entries(self):
        report = self._report()
        stale = [
            f"[{entry.rule}] {entry.path}: {entry.content!r}"
            for entry in report.stale_baseline
        ]
        assert stale == [], f"stale baseline entries: {stale}"

    def test_baseline_stays_small(self):
        report = self._report()
        assert len(report.baselined) <= MAX_BASELINED

    def test_every_pragma_carries_a_reason(self):
        # analyze_paths already reports reason-less pragmas through the
        # bad-pragma rule; this asserts the whole tree was scanned.
        report = self._report()
        assert report.files_checked > 90

    def test_dataflow_family_is_clean_without_baseline_debt(self):
        # The whole-program rules must hold with *zero* baseline entries:
        # shared state is annotated or fixed, never parked as debt.
        report = self._report()
        dataflow_debt = [
            v for v in report.baselined if v.rule in DATAFLOW_RULE_IDS
        ]
        assert dataflow_debt == []

    def test_shared_state_inventory_is_annotated(self):
        report = self._report()
        assert len(report.guarded_inventory) >= MIN_GUARDED_ANNOTATIONS
        for path, annotation in report.guarded_inventory:
            assert annotation.lock.strip(), path
            assert annotation.rationale.strip(), path

    def test_cross_path_roots_name_real_functions(self):
        # The ingest/read roots in the config are dotted qualnames; a
        # rename that orphans one silently blinds cross-path-state.
        contexts = []
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            ctx = build_context(path.read_text(), path)
            if ctx is not None:
                contexts.append(ctx)
        index = build_index(contexts, DEFAULT_CONFIG.mutator_methods)
        roots = DEFAULT_CONFIG.ingest_roots | DEFAULT_CONFIG.read_roots
        missing = sorted(
            root for root in roots if root not in index.functions
        )
        assert missing == [], f"config roots not in the index: {missing}"
