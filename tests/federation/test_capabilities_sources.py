"""Capability model and source adapters."""

import pytest

from repro.errors import CapabilityError, DocumentNotFoundError
from repro.federation import (
    CONTENT_ONLY,
    FULL,
    Capability,
    ContentOnlySource,
    NetmarkSource,
    Record,
    StructuredSource,
    required_for,
    supports,
)
from repro.query.language import parse_query
from repro.store import XmlStore


class TestCapabilityAlgebra:
    def test_required_for_kinds(self):
        assert required_for(parse_query("Content=x")) == Capability.CONTENT_SEARCH
        assert required_for(parse_query("Context=x")) == Capability.CONTEXT_SEARCH
        combined = required_for(parse_query("Context=x&Content=y"))
        assert combined == (
            Capability.CONTEXT_SEARCH | Capability.CONTENT_SEARCH
        )

    def test_phrase_needs_phrase_capability(self):
        needed = required_for(parse_query('Content="a b"'))
        assert Capability.PHRASE_SEARCH in needed

    def test_supports(self):
        assert supports(FULL, parse_query("Context=x&Content=y"))
        assert supports(CONTENT_ONLY, parse_query("Content=y"))
        assert not supports(CONTENT_ONLY, parse_query("Context=x"))
        assert not supports(CONTENT_ONLY, parse_query('Content="a b"'))


@pytest.fixture
def netmark_source():
    store = XmlStore()
    store.store_text(
        "{\\ndoc1}\n{\\style Heading1}Budget\n{\\style Normal}Engine funds.\n",
        "doc.ndoc",
    )
    return NetmarkSource("node1", store)


class TestNetmarkSource:
    def test_full_capabilities(self, netmark_source):
        assert netmark_source.capabilities == FULL

    def test_native_search_tags_source(self, netmark_source):
        [match] = netmark_source.native_search(parse_query("Context=Budget"))
        assert match.source == "node1"
        assert netmark_source.queries_served == 1

    def test_fetch_document(self, netmark_source):
        xml = netmark_source.fetch_document("doc.ndoc")
        assert "<document>" in xml
        assert netmark_source.documents_served == 1

    def test_fetch_missing_raises(self, netmark_source):
        with pytest.raises(DocumentNotFoundError):
            netmark_source.fetch_document("nope")

    def test_document_names(self, netmark_source):
        assert netmark_source.document_names() == ["doc.ndoc"]


@pytest.fixture
def llis():
    return ContentOnlySource(
        "llis",
        {
            "l1.md": "# Title\nEngine lesson\n\n# Body\nInspect twice.\n",
            "l2.md": "# Title\nChute packing\n\n# Body\nengine mention\n",
            "l3.md": "# Title\nBattery\n\n# Body\nKeep dry.\n",
        },
    )


class TestContentOnlySource:
    def test_content_search_returns_document_hits(self, llis):
        matches = llis.native_search(parse_query("Content=engine"))
        assert {match.file_name for match in matches} == {"l1.md", "l2.md"}
        assert all(match.section is None for match in matches)

    def test_context_query_rejected_natively(self, llis):
        with pytest.raises(CapabilityError):
            llis.native_search(parse_query("Context=Title"))

    def test_any_mode(self, llis):
        matches = llis.native_search(parse_query("Content=any:battery chute"))
        assert {match.file_name for match in matches} == {"l2.md", "l3.md"}

    def test_snippet_centres_on_hit(self, llis):
        [match] = [
            m
            for m in llis.native_search(parse_query("Content=dry"))
        ]
        assert "dry" in match.content.lower()

    def test_fetch_and_names(self, llis):
        assert "Inspect twice" in llis.fetch_document("l1.md")
        assert llis.document_names() == ["l1.md", "l2.md", "l3.md"]
        with pytest.raises(DocumentNotFoundError):
            llis.fetch_document("nope")


@pytest.fixture
def tracker():
    return StructuredSource(
        "trk",
        [
            Record("A-1", (("Description", "Engine sensor dropout"),
                           ("Severity", "High"))),
            Record("A-2", (("Description", "Window scratch"),
                           ("Severity", "Low"))),
        ],
    )


class TestStructuredSource:
    def test_context_maps_to_field_name(self, tracker):
        matches = tracker.native_search(parse_query("Context=Description"))
        assert [match.file_name for match in matches] == ["A-1", "A-2"]
        assert matches[0].context == "Description"

    def test_context_and_content(self, tracker):
        matches = tracker.native_search(
            parse_query("Context=Description&Content=engine")
        )
        assert [match.file_name for match in matches] == ["A-1"]

    def test_content_scope_is_whole_record(self, tracker):
        # "High" is in Severity; asking for Description sections of records
        # containing "High" still returns A-1's description.
        matches = tracker.native_search(
            parse_query("Context=Description&Content=High")
        )
        assert [match.file_name for match in matches] == ["A-1"]

    def test_content_only_query(self, tracker):
        matches = tracker.native_search(parse_query("Content=scratch"))
        assert [match.file_name for match in matches] == ["A-2"]

    def test_unknown_field_context_empty(self, tracker):
        assert tracker.native_search(parse_query("Context=Nonfield")) == []

    def test_phrase_rejected_natively(self, tracker):
        with pytest.raises(CapabilityError):
            tracker.native_search(parse_query('Content="engine sensor"'))

    def test_fetch_document_renders_markdown(self, tracker):
        text = tracker.fetch_document("A-1")
        assert "## Description" in text
        assert "Engine sensor dropout" in text

    def test_add_record_and_len(self, tracker):
        tracker.add_record(Record("A-3", (("Description", "x"),)))
        assert len(tracker) == 3
