"""Deadline propagation through the federation router."""

import pytest

from repro.errors import QueryTimeoutError
from repro.federation import NetmarkSource, Router
from repro.resilience import Budget, CancellationToken, Deadline, LogicalClock
from repro.sgml.serializer import serialize
from repro.store.xmlstore import XmlStore

NDOC = (
    "{\\ndoc1}\n{\\style Heading1}Budget\n"
    "{\\style Normal}Travel funds for the engine review.\n"
)


class SteppingClock:
    """Advances one tick per read — deterministic mid-query expiry."""

    def __init__(self) -> None:
        self.tick = 0

    def now(self) -> int:
        self.tick += 1
        return self.tick


def build_router(count=3):
    router = Router()
    bank = router.create_databank("app")
    for index in range(count):
        store = XmlStore()
        store.store_text(NDOC, f"s{index}-doc.ndoc")
        bank.add_source(NetmarkSource(f"s{index}", store))
    return router


class TestRouterDeadlines:
    def test_hard_expiry_raises_through_the_fan_out(self):
        router = build_router()
        clock = LogicalClock()
        budget = Budget(deadline=Deadline(clock, 5))
        clock.advance(6)
        with pytest.raises(QueryTimeoutError):
            router.execute("Context=Budget&databank=app", budget=budget)

    def test_partial_ok_skips_remaining_sources(self):
        router = build_router()
        # Enough budget for the first source, not for the whole fan-out:
        # the shared absolute expiry means later sources see only what
        # the earlier ones left over.
        budget = Budget(
            deadline=Deadline(SteppingClock(), 12), partial_ok=True
        )
        results = router.execute(
            "Context=Budget&databank=app", budget=budget
        )
        report = router.last_report
        assert report.deadline_skipped_sources  # at least one skipped
        assert results.deadline_expired and results.partial
        # Skipped sources contributed nothing; answered ones did.
        answered = {match.source for match in results}
        assert answered.isdisjoint(report.deadline_skipped_sources)

    def test_all_sources_skipped_is_partial_not_an_outage(self):
        router = build_router()
        clock = LogicalClock()
        budget = Budget(deadline=Deadline(clock, 1), partial_ok=True)
        clock.advance(2)
        # Pre-expired budget: nothing runs, but this is a deadline
        # story, not AllSourcesFailedError.
        results = router.execute(
            "Context=Budget&databank=app", budget=budget
        )
        assert len(results) == 0
        assert results.deadline_expired
        assert sorted(router.last_report.deadline_skipped_sources) == [
            "s0", "s1", "s2",
        ]

    def test_deadline_envelope_renders_in_result_xml(self):
        router = build_router()
        clock = LogicalClock()
        budget = Budget(deadline=Deadline(clock, 1), partial_ok=True)
        clock.advance(2)
        results = router.execute(
            "Context=Budget&databank=app", budget=budget
        )
        xml = serialize(results.to_xml(), indent=2)
        assert 'partial="true"' in xml
        assert "<deadline-expired>" in xml

    def test_partial_flag_read_from_query_string(self):
        router = build_router()
        clock = LogicalClock()
        budget = Budget(deadline=Deadline(clock, 1))
        clock.advance(2)
        results = router.execute(
            "Context=Budget&databank=app&Partial=1", budget=budget
        )
        assert results.deadline_expired

    def test_cancellation_propagates_out_of_the_fan_out(self):
        router = build_router()
        token = CancellationToken()
        token.cancel("client disconnected")
        from repro.errors import QueryCancelledError

        with pytest.raises(QueryCancelledError):
            router.execute(
                "Context=Budget&databank=app",
                budget=Budget(token=token, partial_ok=True),
            )

    def test_no_budget_is_byte_identical_to_before(self):
        router = build_router()
        results = router.execute("Context=Budget&databank=app")
        assert len(results) == 3
        assert not results.partial
        xml = serialize(results.to_xml(), indent=2)
        assert "partial" not in xml
