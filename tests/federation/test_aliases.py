"""Context aliases — the lean virtual-view substitute (§4)."""

import pytest

from repro.errors import FederationError
from repro.federation import ContextAliasRegistry, Record, StructuredSource
from repro.netmark import Netmark
from repro.query.ast import ContextSpec
from repro.query.language import parse_query


@pytest.fixture
def aliases():
    registry = ContextAliasRegistry()
    registry.define("Budget", "Budget", "Cost Details", "Funding")
    return registry


class TestRegistry:
    def test_define_and_contains(self, aliases):
        assert "budget" in aliases
        assert "BUDGET" in aliases
        assert len(aliases) == 1
        assert aliases.names() == ["budget"]

    def test_duplicate_rejected(self, aliases):
        with pytest.raises(FederationError):
            aliases.define("budget", "x")

    def test_empty_definitions_rejected(self):
        registry = ContextAliasRegistry()
        with pytest.raises(FederationError):
            registry.define("", "x")
        with pytest.raises(FederationError):
            registry.define("name")

    def test_drop(self, aliases):
        aliases.drop("Budget")
        assert len(aliases) == 0
        with pytest.raises(FederationError):
            aliases.drop("Budget")


class TestExpansion:
    def test_self_including_alias(self, aliases):
        spec = aliases.expand(ContextSpec(("Budget",)))
        assert spec.phrases == ("Budget", "Cost Details", "Funding")

    def test_non_alias_passes_through(self, aliases):
        spec = aliases.expand(ContextSpec(("Schedule",)))
        assert spec.phrases == ("Schedule",)

    def test_mixed_phrases(self, aliases):
        spec = aliases.expand(ContextSpec(("Schedule", "Budget")))
        assert spec.phrases == (
            "Schedule", "Budget", "Cost Details", "Funding",
        )

    def test_nested_aliases(self):
        registry = ContextAliasRegistry()
        registry.define("Money", "Budget", "Cost Details")
        registry.define("Everything", "Money", "Schedule")
        spec = registry.expand(ContextSpec(("Everything",)))
        assert spec.phrases == ("Budget", "Cost Details", "Schedule")

    def test_mutual_recursion_terminates(self):
        registry = ContextAliasRegistry()
        registry.define("A", "B", "one")
        registry.define("B", "A", "two")
        spec = registry.expand(ContextSpec(("A",)))
        # B expands under A; the back-reference to A stays literal.
        assert set(spec.phrases) == {"A", "one", "two"}

    def test_rewrite_preserves_other_query_parts(self, aliases):
        query = parse_query("Context=Budget&Content=travel&limit=3")
        rewritten = aliases.rewrite(query)
        assert rewritten.context.phrases == (
            "Budget", "Cost Details", "Funding",
        )
        assert rewritten.content == query.content
        assert rewritten.limit == 3

    def test_rewrite_without_context_is_identity(self, aliases):
        query = parse_query("Content=travel")
        assert aliases.rewrite(query) is query


class TestEndToEnd:
    def test_local_search_spans_vocabularies(self):
        node = Netmark("n")
        node.ingest("a.md", "# Budget\nten dollars\n")
        node.ingest("b.md", "# Cost Details\ntwenty dollars\n")
        node.ingest("c.md", "# Funding\nthirty dollars\n")
        assert len(node.search("Context=Budget")) == 1
        node.define_context_alias("Budget", "Budget", "Cost Details", "Funding")
        assert len(node.search("Context=Budget")) == 3
        assert node.assembly_steps == 1  # one declarative line

    def test_federated_search_uses_aliases(self):
        node = Netmark("hub")
        tracker = StructuredSource(
            "trk",
            [Record("A-1", (("Description", "engine issue"),)),
             Record("B-1", (("Summary", "engine observation"),))],
        )
        node.create_databank("bank")
        node.add_source("bank", tracker)
        node.define_context_alias("Description", "Description", "Summary")
        results = node.federated_search("Context=Description&databank=bank")
        assert {match.file_name for match in results} == {"A-1", "B-1"}
