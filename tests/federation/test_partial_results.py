"""Resilient federation: per-source isolation, partial results, HTTP surfacing."""

import pytest

from repro.errors import (
    AllSourcesFailedError,
    FederationError,
    ReproError,
    UnknownDatabankError,
)
from repro.federation import NetmarkSource, Router
from repro.resilience import (
    BreakerConfig,
    FaultPlan,
    LogicalClock,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.sgml.serializer import serialize
from repro.store.xmlstore import XmlStore

NDOC = (
    "{\\ndoc1}\n{\\style Heading1}Budget\n"
    "{\\style Normal}Travel funds for the engine review.\n"
)


def netmark_source(name: str) -> NetmarkSource:
    store = XmlStore()
    store.store_text(NDOC, f"{name}-doc.ndoc")
    return NetmarkSource(name, store)


def build_router(plan=None, policy=None, faulty=("s1",), count=3):
    router = Router(resilience=policy)
    bank = router.create_databank("app")
    for index in range(count):
        source = netmark_source(f"s{index}")
        if plan is not None and source.name in faulty:
            source = plan.wrap_source(source)
        bank.add_source(source)
    return router


class TestPartialResults:
    def test_one_dead_source_degrades_not_dies(self):
        plan = FaultPlan()
        plan.fail("s1", times=None)
        router = build_router(plan)
        results = router.execute("Context=Budget&databank=app")
        assert results.partial
        assert sorted(results.source_errors) == ["s1"]
        assert "SourceUnavailableError" in results.source_errors["s1"]
        # Every healthy source still contributes all of its matches.
        assert {match.source for match in results} == {"s0", "s2"}
        assert len(results) == 2

    def test_report_carries_failures_and_fan_out(self):
        plan = FaultPlan()
        plan.fail("s1", times=None)
        router = build_router(plan)
        router.execute("Context=Budget&databank=app")
        report = router.last_report
        assert sorted(report.failed_sources) == ["s1"]
        assert report.fan_out == 3
        assert report.degraded
        assert report.source_matches == {"s0": 1, "s2": 1}

    def test_all_sources_dead_raises_federation_error(self):
        plan = FaultPlan()
        for name in ("s0", "s1", "s2"):
            plan.fail(name, times=None)
        router = build_router(plan, faulty=("s0", "s1", "s2"))
        with pytest.raises(AllSourcesFailedError):
            router.execute("Context=Budget&databank=app")
        # Post-mortem: the report was set before the raise.
        report = router.last_report
        assert sorted(report.failed_sources) == ["s0", "s1", "s2"]
        assert report.source_matches == {}

    def test_last_report_set_before_unknown_databank_raise(self):
        router = build_router()
        with pytest.raises(UnknownDatabankError):
            router.execute("Context=Budget&databank=ghost")
        assert router.last_report.databank == "ghost"
        with pytest.raises(FederationError):
            router.execute("Context=Budget")
        assert router.last_report.databank == ""

    def test_no_faults_is_byte_identical_and_quiet(self):
        plain = build_router()
        guarded = build_router(policy=ResiliencePolicy())
        query = "Context=Budget&databank=app"
        plain_xml = serialize(plain.execute(query).to_xml(), indent=2)
        guarded_xml = serialize(guarded.execute(query).to_xml(), indent=2)
        assert plain_xml == guarded_xml
        report = guarded.last_report
        assert not report.degraded
        assert report.total_retries == 0
        assert guarded.resilience.breakers.trips == 0

    def test_retry_absorbs_transient_failure(self):
        clock = LogicalClock()
        plan = FaultPlan(clock=clock)
        plan.fail("s1", "native_search", times=2)
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3), clock=clock
        )
        router = build_router(plan, policy)
        results = router.execute("Context=Budget&databank=app")
        assert not results.partial
        assert len(results) == 3
        assert router.last_report.retries == {"s1": 2}

    def test_breaker_opens_after_threshold_and_skips(self):
        clock = LogicalClock()
        plan = FaultPlan(clock=clock)
        plan.fail("s1", times=None)
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=2, cooldown=1000),
            clock=clock,
        )
        router = build_router(plan, policy)
        query = "Context=Budget&databank=app"
        router.execute(query)  # failure 1
        router.execute(query)  # failure 2 -> trips
        assert policy.breakers.breaker("s1").trips == 1
        results = router.execute(query)  # now skipped, not contacted
        report = router.last_report
        assert report.skipped_sources == ["s1"]
        assert not report.failed_sources
        assert results.partial
        assert results.source_errors["s1"] == "skipped: circuit open"
        # The open breaker really sheds the load: no third injection.
        assert plan.injected("s1") == 2

    def test_half_open_probe_recovers_the_source(self):
        clock = LogicalClock()
        plan = FaultPlan(clock=clock)
        plan.fail("s1", times=2)  # fail twice, then healthy again
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=2, cooldown=4),
            clock=clock,
        )
        router = build_router(plan, policy)
        query = "Context=Budget&databank=app"
        router.execute(query)
        router.execute(query)  # breaker trips
        clock.advance(4)  # cooldown elapses
        results = router.execute(query)  # half-open probe succeeds
        assert not results.partial
        assert policy.breakers.breaker("s1").state == "closed"


class TestPropertySeededPlans:
    def test_execute_degrades_or_raises_federation_error(self):
        """For any seeded plan: partial with accurate failed_sources, a
        complete answer, or FederationError — never a builtin leak."""
        query = "Context=Budget&databank=app"
        for seed in range(30):
            plan = FaultPlan(seed=seed)
            for name in ("s0", "s1", "s2"):
                plan.sometimes(name, probability=0.4)
            router = build_router(
                plan, ResiliencePolicy(seed=seed), faulty=("s0", "s1", "s2")
            )
            try:
                results = router.execute(query)
            except ReproError as error:
                assert isinstance(error, FederationError), seed
                assert len(router.last_report.failed_sources) + len(
                    router.last_report.skipped_sources
                ) == 3, seed
                continue
            report = router.last_report
            assert results.partial == report.degraded, seed
            assert set(results.source_errors) == set(
                report.error_summary()
            ), seed
            # Matches come only from sources that answered.
            assert {m.source for m in results} <= set(
                report.source_matches
            ), seed

    def test_seeded_plans_replay_identically(self):
        def run(seed):
            plan = FaultPlan(seed=seed)
            plan.sometimes("s1", probability=0.5)
            router = build_router(plan, ResiliencePolicy(seed=seed))
            outcomes = []
            for _ in range(5):
                try:
                    results = router.execute("Context=Budget&databank=app")
                    outcomes.append((len(results), results.partial))
                except FederationError:
                    outcomes.append(("failed", None))
            return outcomes, plan.injected()

        assert run(11) == run(11)


class TestHttpSurfacing:
    def build_api(self, plan=None, faulty=("s1",), count=3, kill_all=False):
        from repro.netmark import Netmark

        nm = Netmark()
        nm.create_databank("app")
        names = tuple(f"s{i}" for i in range(count))
        for name in names:
            source = netmark_source(name)
            if plan is not None and (kill_all or name in faulty):
                source = plan.wrap_source(source)
            nm.add_source("app", source)
        return nm

    def test_partial_envelope_not_500(self):
        plan = FaultPlan()
        plan.fail("s1", times=None)
        nm = self.build_api(plan)
        response = nm.http_get("/search?Context=Budget&databank=app")
        assert response.status == 200
        assert 'partial="true"' in response.body
        assert "<partial>" in response.body
        assert '<unreachable source="s1">' in response.body
        assert "<result" in response.body  # healthy matches still present

    def test_complete_answer_has_no_partial_envelope(self):
        nm = self.build_api()
        response = nm.http_get("/search?Context=Budget&databank=app")
        assert response.status == 200
        assert "partial" not in response.body

    def test_total_outage_is_503_not_500(self):
        plan = FaultPlan()
        for name in ("s0", "s1", "s2"):
            plan.fail(name, times=None)
        nm = self.build_api(plan, kill_all=True)
        response = nm.http_get("/search?Context=Budget&databank=app")
        assert response.status == 503
        assert "no source answered" in response.body
