"""Router limit pushdown: stop the fan-out once the answer is fixed.

The merged federation order is the stable (source, document, context)
sort and source adapters normalize every score to 1.0, so once ``limit``
matches come from sources sorting *before* every un-contacted source,
the remaining sources cannot displace them — the router skips them and
records the fact in ``RoutingReport.limit_skipped_sources``.
"""

from types import SimpleNamespace

import pytest

from repro.federation import (
    ContentOnlySource,
    NetmarkSource,
    Router,
)
from repro.query.results import SectionMatch
from repro.store import XmlStore


class CountingSource(ContentOnlySource):
    """A lessons-learned source that counts how often it is contacted."""

    def __init__(self, name, documents):
        super().__init__(name, documents)
        self.contacts = 0

    def native_search(self, query):
        self.contacts += 1
        return super().native_search(query)

    def fetch_all(self):
        self.contacts += 1
        return super().fetch_all()


@pytest.fixture
def rig():
    store = XmlStore()
    for i in range(3):
        store.store_text(
            "{\\ndoc1}\n{\\style Heading1}Title\n"
            f"{{\\style Normal}}Engine review report {i}.\n",
            f"rev{i}.ndoc",
        )
    late_a = CountingSource(
        "llis", {"l1.md": "# Title\nEngine lesson\n\n# Body\nEngine.\n"}
    )
    late_b = CountingSource(
        "zulu", {"z1.md": "# Title\nEngine notes\n\n# Body\nEngine.\n"}
    )
    router = Router()
    bank = router.create_databank("eng", "engine material")
    bank.add_source(NetmarkSource("ames", store))
    bank.add_source(late_a)
    bank.add_source(late_b)
    return router, late_a, late_b


class TestLimitPushdown:
    def test_satisfied_limit_skips_remaining_sources(self, rig):
        router, late_a, late_b = rig
        results = router.execute("Content=engine&databank=eng&limit=2")
        assert len(results) == 2
        assert {match.source for match in results} == {"ames"}
        assert router.last_report.limit_skipped_sources == ["llis", "zulu"]
        assert late_a.contacts == 0
        assert late_b.contacts == 0

    def test_skipped_sources_cannot_change_the_answer(self, rig):
        router, _, _ = rig
        limited = router.execute("Content=engine&databank=eng&limit=2")
        full = router.execute("Content=engine&databank=eng")
        assert [
            (m.source, m.file_name, m.context) for m in limited.matches
        ] == [(m.source, m.file_name, m.context) for m in full.matches[:2]]

    def test_unsatisfied_limit_contacts_everyone(self, rig):
        router, late_a, late_b = rig
        router.execute("Content=engine&databank=eng&limit=5")
        assert router.last_report.limit_skipped_sources == []
        assert late_a.contacts > 0
        assert late_b.contacts > 0

    def test_no_limit_means_no_skipping(self, rig):
        router, late_a, late_b = rig
        router.execute("Content=engine&databank=eng")
        assert router.last_report.limit_skipped_sources == []
        assert late_a.contacts > 0
        assert late_b.contacts > 0

    def test_partial_flag_unaffected_by_limit_skips(self, rig):
        router, _, _ = rig
        results = router.execute("Content=engine&databank=eng&limit=1")
        # A limit skip is an optimization, not a degradation: the result
        # is complete, so it must not be marked partial.
        assert not results.partial
        assert results.source_errors == {}


class TestSoundnessGuards:
    def remaining(self, *names):
        return [SimpleNamespace(name=name) for name in names]

    def match(self, source, score=1.0):
        return SectionMatch(
            1, "f.md", context="C", content="x", source=source, score=score
        )

    def test_positional_guarantee_counts_only_earlier_sources(self):
        matches = [self.match("ames"), self.match("zulu")]
        assert not Router._limit_satisfied(2, matches, self.remaining("llis"))
        assert Router._limit_satisfied(
            1, matches, self.remaining("llis", "zulu")
        )

    def test_ranked_scores_disable_pushdown(self):
        # A non-uniform score means the final order is rank order, not
        # (source, document) order — positional reasoning is unsound and
        # the router must keep contacting sources.
        matches = [self.match("ames", score=1.5), self.match("ames")]
        assert not Router._limit_satisfied(1, matches, self.remaining("llis"))

    def test_no_limit_or_no_remaining_never_satisfies(self):
        matches = [self.match("ames")]
        assert not Router._limit_satisfied(None, matches, self.remaining("z"))
        assert not Router._limit_satisfied(1, matches, [])


class TestFederatedExplain:
    def test_explain_marks_not_contacted_sources(self, rig):
        router, _, _ = rig
        document = router.explain("Content=engine&databank=eng&limit=2")
        plan = document.root
        assert plan.tag == "plan"
        assert plan.attributes["kind"] == "federated"
        by_name = {
            child.attributes["name"]: child.attributes
            for child in plan.children
            if child.tag == "source"
        }
        assert by_name["ames"]["status"] == "answered"
        # The limit reached the source's own engine: ames returned only
        # the two rows the query could ever use, not its full three.
        assert by_name["ames"]["rows"] == "2"
        assert by_name["llis"]["status"] == "not-contacted"
        assert by_name["zulu"]["status"] == "not-contacted"
        [limit_op] = [
            child for child in plan.children if child.tag == "operator"
        ]
        assert limit_op.attributes == {
            "name": "limit", "rows": "2", "detail": "2",
        }
