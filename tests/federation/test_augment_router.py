"""Query augmentation and the thin router (the §2.1.5 worked example)."""

import pytest

from repro.errors import FederationError, UnknownDatabankError
from repro.federation import (
    AugmentationReport,
    ContentOnlySource,
    DatabankRegistry,
    NetmarkSource,
    Record,
    Router,
    StructuredSource,
    execute_augmented,
    plan,
)
from repro.query.language import parse_query
from repro.store import XmlStore

LESSONS = {
    "l1.md": "# Title\nEngine inspection lesson\n\n# Body\nInspect the engine.\n",
    "l2.md": "# Title\nParachute packing\n\n# Body\nMentions engine once.\n",
    "l3.md": "# Title\nBattery storage\n\n# Body\nKeep cool.\n",
}


@pytest.fixture
def llis():
    return ContentOnlySource("llis", LESSONS)


class TestPlanning:
    def test_native_when_supported(self, llis):
        the_plan = plan(parse_query("Content=engine"), llis)
        assert the_plan.fully_native

    def test_context_query_needs_residual(self, llis):
        the_plan = plan(parse_query("Context=Title&Content=engine"), llis)
        assert not the_plan.fully_native
        assert the_plan.needs_residual
        # The native fragment keeps only the content half.
        assert the_plan.native_query.context is None
        assert the_plan.native_query.content.terms == ("engine",)

    def test_context_only_query_fetches_all(self, llis):
        the_plan = plan(parse_query("Context=Title"), llis)
        assert the_plan.native_query is None
        assert the_plan.needs_residual

    def test_phrase_degrades_to_conjunction(self, llis):
        the_plan = plan(parse_query('Content="engine inspection"'), llis)
        assert the_plan.needs_residual
        assert the_plan.native_query.content.mode == "all"
        assert set(the_plan.native_query.content.terms) == {
            "engine", "inspection",
        }


class TestPaperExample:
    """Context=Title&Content=Engine against the Lessons Learned server."""

    def test_augmented_result_extracts_title_sections(self, llis):
        report = AugmentationReport()
        matches = execute_augmented(
            parse_query("Context=Title&Content=Engine"), llis, report
        )
        # Only l1 has "engine" in its Title section; l2 mentions engine in
        # the body only.
        assert [match.file_name for match in matches] == ["l1.md"]
        assert matches[0].context == "Title"
        assert matches[0].source == "llis"

    def test_native_prefilter_limits_residual_work(self, llis):
        report = AugmentationReport()
        execute_augmented(
            parse_query("Context=Title&Content=Engine"), llis, report
        )
        # The source's content search prefilters to the two engine docs,
        # so the client re-parses 2, not 3.
        assert report.native_candidates == 2
        assert report.residual_documents == 2
        assert report.residual_nodes > 0

    def test_augmented_equals_native_semantics(self, llis):
        """Augmentation must agree with a full NETMARK node on the same data."""
        native_store = XmlStore()
        for name, text in LESSONS.items():
            native_store.store_text(text, name)
        native = NetmarkSource("native", native_store)
        query = parse_query("Context=Title&Content=engine")
        native_answer = {
            (m.file_name, m.context) for m in native.native_search(query)
        }
        augmented_answer = {
            (m.file_name, m.context)
            for m in execute_augmented(query, llis)
        }
        assert augmented_answer == native_answer

    def test_phrase_augmentation_refines_overreturn(self, llis):
        matches = execute_augmented(
            parse_query('Content="engine inspection"'), llis
        )
        assert [match.file_name for match in matches] == ["l1.md"]


@pytest.fixture
def router_rig(llis):
    store = XmlStore()
    store.store_text(
        "{\\ndoc1}\n{\\style Heading1}Title\n"
        "{\\style Normal}Engine review board report.\n",
        "rev.ndoc",
    )
    tracker = StructuredSource(
        "trk", [Record("A-1", (("Title", "Engine anomaly"), ("Severity", "High")))]
    )
    router = Router()
    bank = router.create_databank("eng", "engine material")
    bank.add_source(NetmarkSource("ames", store))
    bank.add_source(llis)
    bank.add_source(tracker)
    return router


class TestRouter:
    def test_fan_out_hits_every_source(self, router_rig):
        results = router_rig.execute("Context=Title&Content=engine&databank=eng")
        assert {match.source for match in results} == {"ames", "llis", "trk"}

    def test_routing_report(self, router_rig):
        router_rig.execute("Context=Title&Content=engine&databank=eng")
        report = router_rig.last_report
        assert report.fan_out == 3
        assert report.source_matches["ames"] == 1
        assert "llis" in report.augmented_sources
        assert "ames" not in report.augmented_sources

    def test_stable_order(self, router_rig):
        results = router_rig.execute("Content=engine&databank=eng")
        keys = [(match.source, match.file_name) for match in results]
        assert keys == sorted(keys)

    def test_databank_argument_overrides_query(self, router_rig):
        results = router_rig.execute("Content=engine", databank="eng")
        assert len(results) > 0

    def test_missing_databank_raises(self, router_rig):
        with pytest.raises(FederationError):
            router_rig.execute("Content=engine")
        with pytest.raises(UnknownDatabankError):
            router_rig.execute("Content=engine&databank=ghost")

    def test_limit_applies_after_merge(self, router_rig):
        results = router_rig.execute("Content=engine&databank=eng&limit=2")
        assert len(results) == 2


class TestDatabankRegistry:
    def test_create_get_drop(self):
        registry = DatabankRegistry()
        registry.create("a")
        assert "a" in registry
        registry.drop("a")
        assert "a" not in registry
        with pytest.raises(UnknownDatabankError):
            registry.get("a")
        with pytest.raises(UnknownDatabankError):
            registry.drop("a")

    def test_duplicate_databank_rejected(self):
        registry = DatabankRegistry()
        registry.create("a")
        with pytest.raises(FederationError):
            registry.create("a")

    def test_duplicate_source_rejected(self):
        registry = DatabankRegistry()
        bank = registry.create("a")
        bank.add_source(ContentOnlySource("s1"))
        with pytest.raises(FederationError):
            bank.add_source(ContentOnlySource("s1"))

    def test_artifact_accounting(self):
        registry = DatabankRegistry()
        bank = registry.create("a")
        for index in range(4):
            bank.add_source(ContentOnlySource(f"s{index}"))
        assert bank.artifact_count == 4
        assert registry.total_artifacts == 4
