"""Declarative databank spec files."""

import pytest

from repro.errors import FederationError
from repro.federation import (
    ContentOnlySource,
    Router,
    StructuredSource,
    dump_spec,
    load_spec,
)
from repro.federation.sources import Record

SPEC = '''
# Integration spec for the engineering application.
databank engineering "Everything about engines"
  source llis
  source tracker

databank archives
  source llis

alias Budget = Budget | Cost Details | Funding
alias Description = Description | Summary
'''


@pytest.fixture
def catalog():
    return {
        "llis": ContentOnlySource(
            "llis", {"l1.md": "# Title\nEngine lesson\n"}
        ),
        "tracker": StructuredSource(
            "tracker",
            [Record("A-1", (("Description", "engine issue"),
                            ("Summary", "dup field? no"))),
             Record("A-2", (("Summary", "engine observed"),))],
        ),
    }


class TestLoadSpec:
    def test_creates_databanks_and_aliases(self, catalog):
        router = Router()
        report = load_spec(SPEC, router, catalog)
        assert report.databanks == ["engineering", "archives"]
        assert report.sources_bound == 3
        assert report.aliases_defined == 2
        assert report.spec_lines == 7  # 2 databanks + 3 sources + 2 aliases
        assert "engineering" in router.registry
        assert "Budget" in router.aliases

    def test_loaded_integration_answers_queries(self, catalog):
        router = Router()
        load_spec(SPEC, router, catalog)
        results = router.execute(
            "Context=Description&Content=engine&databank=engineering"
        )
        # The alias spans Description|Summary, so both records match; the
        # llis source contributes through augmentation.
        names = {match.file_name for match in results}
        assert {"A-1", "A-2"} <= names

    def test_source_outside_databank_rejected(self, catalog):
        with pytest.raises(FederationError):
            load_spec("source llis", Router(), catalog)

    def test_unknown_source_rejected(self, catalog):
        with pytest.raises(FederationError):
            load_spec("databank d\n  source ghost", Router(), catalog)

    def test_unknown_directive_rejected(self, catalog):
        with pytest.raises(FederationError):
            load_spec("frobnicate x", Router(), catalog)

    def test_bad_databank_names(self, catalog):
        with pytest.raises(FederationError):
            load_spec("databank", Router(), catalog)
        with pytest.raises(FederationError):
            load_spec("databank two words here", Router(), catalog)
        with pytest.raises(FederationError):
            load_spec('databank d "unterminated', Router(), catalog)

    def test_bad_alias_lines(self, catalog):
        with pytest.raises(FederationError):
            load_spec("alias NoEquals", Router(), catalog)
        with pytest.raises(FederationError):
            load_spec("alias X =", Router(), catalog)

    def test_comments_and_blanks_ignored(self, catalog):
        report = load_spec(
            "\n# only comments\n\ndatabank d\n  source llis # inline\n",
            Router(),
            catalog,
        )
        assert report.spec_lines == 2


class TestDumpSpec:
    def test_round_trip(self, catalog):
        router = Router()
        load_spec(SPEC, router, catalog)
        dumped = dump_spec(router)
        fresh = Router()
        report = load_spec(dumped, fresh, catalog)
        assert fresh.registry.names() == router.registry.names()
        assert fresh.aliases.names() == router.aliases.names()
        assert report.sources_bound == 3

    def test_empty_router_dumps_empty(self):
        assert dump_spec(Router()) == ""

    def test_artifact_count_is_the_whole_integration(self, catalog):
        router = Router()
        report = load_spec(SPEC, router, catalog)
        # FIG1's point, restated: 2 databanks + 3 source lines + 2
        # aliases = 7 artifacts for a two-application integration.
        assert report.artifact_count == 7
