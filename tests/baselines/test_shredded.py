"""Shredded-storage baseline: schema growth and functional equivalence."""

import pytest

from repro.baselines.shredded import ShreddedXmlStore, table_name_for
from repro.converters import convert
from repro.errors import DocumentNotFoundError
from repro.sgml.parser import parse_xml
from repro.sgml.serializer import serialize
from repro.store import XmlStore


class TestSchemaGrowth:
    def test_tables_grow_with_new_element_types(self):
        store = ShreddedXmlStore()
        baseline = store.table_count
        result = store.store_document(parse_xml("<a><b/></a>"))
        assert result.new_tables == 2  # ELEM_A, ELEM_B
        assert store.table_count == baseline + 2

    def test_repeat_types_need_no_ddl(self):
        store = ShreddedXmlStore()
        store.store_document(parse_xml("<a><b/></a>"))
        result = store.store_document(parse_xml("<a><b/><b/></a>"))
        assert result.new_tables == 0

    def test_netmark_stays_flat_where_shredded_grows(self):
        shredded = ShreddedXmlStore()
        netmark = XmlStore()
        documents = [
            "<report><title>t</title></report>",
            "<memo><to>x</to><body>y</body></memo>",
            "<slide><bullet>z</bullet></slide>",
        ]
        for index, xml in enumerate(documents):
            shredded.store_document(parse_xml(xml))
            netmark.store_text(xml, f"d{index}.xml")
        assert netmark.table_count == 2
        assert shredded.element_table_count >= 7

    def test_table_name_mangling(self):
        assert table_name_for("a") == "ELEM_A"
        assert table_name_for("x-y.z") == "ELEM_X_Y_Z"


class TestRoundTrip:
    def test_reconstruct_structure_text_attrs(self):
        store = ShreddedXmlStore()
        source = '<a k="v"><b>one</b><b>two</b><c>tail</c></a>'
        result = store.store_document(parse_xml(source, name="t.xml"))
        rebuilt = store.reconstruct(result.doc_id)
        assert serialize(rebuilt) == source
        assert rebuilt.name == "t.xml"

    def test_reconstruct_unknown_raises(self):
        with pytest.raises(DocumentNotFoundError):
            ShreddedXmlStore().reconstruct(3)

    def test_multiple_documents_isolated(self):
        store = ShreddedXmlStore()
        first = store.store_document(parse_xml("<a><b>1</b></a>"))
        second = store.store_document(parse_xml("<a><b>2</b></a>"))
        assert serialize(store.reconstruct(first.doc_id)) == "<a><b>1</b></a>"
        assert serialize(store.reconstruct(second.doc_id)) == "<a><b>2</b></a>"

    def test_node_count(self):
        store = ShreddedXmlStore()
        result = store.store_document(parse_xml("<a><b>t</b></a>"))
        assert result.node_count == 3  # a, b, text


class TestSectionSearch:
    def test_find_sections_same_answers_as_netmark(self):
        md = "# Budget\n\ntravel funds\n\n# Other\n\nnoise\n"
        shredded = ShreddedXmlStore()
        shredded.store_document(convert(md, "d.md"))
        results = shredded.find_sections("Budget")
        assert len(results) == 1
        assert results[0][1] == "travel funds"

    def test_find_sections_without_context_table(self):
        store = ShreddedXmlStore()
        store.store_document(parse_xml("<a><b/></a>"))
        assert store.find_sections("anything") == []
