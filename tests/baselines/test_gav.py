"""GAV mediator baseline: schemas, mappings, unfolding, artifact ledger."""

import pytest

from repro.baselines.gav import (
    FilterPredicate,
    GavMapping,
    Mediator,
    RelationSchema,
    SourceQuery,
    SourceSchema,
)
from repro.errors import MappingError, MediatorError


def build_top_employees_mediator() -> Mediator:
    """The paper's §4 'Top Employees of NASA' virtual view, for real."""
    mediator = Mediator()
    mediator.define_global_relation(
        RelationSchema("TOP_EMPLOYEES", ("NAME", "CENTER"))
    )

    ames = SourceSchema("ames")
    ames.add_relation(RelationSchema("EMPLOYEES", ("NAME", "RATING")))
    mediator.register_source(ames)
    mediator.bind_extension(
        "ames",
        "EMPLOYEES",
        lambda: [
            {"NAME": "Maluf", "RATING": "excellent"},
            {"NAME": "Bell", "RATING": "good"},
        ],
    )

    johnson = SourceSchema("johnson")
    johnson.add_relation(RelationSchema("PERSONNEL", ("FULLNAME", "SCORE")))
    mediator.register_source(johnson)
    mediator.bind_extension(
        "johnson",
        "PERSONNEL",
        lambda: [
            {"FULLNAME": "Ride", "SCORE": 1},
            {"FULLNAME": "Young", "SCORE": 4},
        ],
    )

    kennedy = SourceSchema("kennedy")
    kennedy.add_relation(RelationSchema("EMPLOYEES", ("NAME", "RATING")))
    mediator.register_source(kennedy)
    mediator.bind_extension(
        "kennedy",
        "EMPLOYEES",
        lambda: [
            {"NAME": "Jemison", "RATING": "very good"},
            {"NAME": "Doe", "RATING": "fair"},
        ],
    )

    mapping = GavMapping("TOP_EMPLOYEES")
    mapping.add(
        SourceQuery(
            "ames", "EMPLOYEES",
            (("NAME", "NAME"), ("CENTER", "NAME")),
            (FilterPredicate("RATING", "=", "excellent"),),
        )
    )
    mapping.add(
        SourceQuery(
            "johnson", "PERSONNEL",
            (("NAME", "FULLNAME"), ("CENTER", "FULLNAME")),
            (FilterPredicate("SCORE", "<=", 2),),
        )
    )
    mapping.add(
        SourceQuery(
            "kennedy", "EMPLOYEES",
            (("NAME", "NAME"), ("CENTER", "NAME")),
            (FilterPredicate("RATING", ">=", "very good"),),
        )
    )
    mediator.define_mapping(mapping)
    return mediator


class TestUnfolding:
    def test_top_employees_union(self):
        mediator = build_top_employees_mediator()
        names = {row["NAME"] for row in mediator.query("TOP_EMPLOYEES")}
        assert names == {"Maluf", "Ride", "Jemison"}

    def test_global_filters_apply_after_renaming(self):
        mediator = build_top_employees_mediator()
        rows = mediator.query(
            "TOP_EMPLOYEES", (FilterPredicate("NAME", "=", "Ride"),)
        )
        assert [row["NAME"] for row in rows] == ["Ride"]

    def test_unmapped_relation_rejected(self):
        mediator = Mediator()
        mediator.define_global_relation(RelationSchema("G", ("A",)))
        with pytest.raises(MediatorError):
            mediator.query("G")

    def test_unknown_global_relation_rejected(self):
        with pytest.raises(MappingError):
            build_top_employees_mediator().query("NOPE")


class TestValidation:
    def test_mapping_checks_global_attributes(self):
        mediator = Mediator()
        mediator.define_global_relation(RelationSchema("G", ("A",)))
        source = SourceSchema("s")
        source.add_relation(RelationSchema("R", ("X",)))
        mediator.register_source(source)
        mapping = GavMapping("G")
        mapping.add(SourceQuery("s", "R", (("BOGUS", "X"),)))
        with pytest.raises(MappingError):
            mediator.define_mapping(mapping)

    def test_mapping_checks_source_attributes(self):
        mediator = Mediator()
        mediator.define_global_relation(RelationSchema("G", ("A",)))
        source = SourceSchema("s")
        source.add_relation(RelationSchema("R", ("X",)))
        mediator.register_source(source)
        mapping = GavMapping("G")
        mapping.add(SourceQuery("s", "R", (("A", "MISSING"),)))
        with pytest.raises(MappingError):
            mediator.define_mapping(mapping)

    def test_filter_attribute_checked(self):
        mediator = Mediator()
        mediator.define_global_relation(RelationSchema("G", ("A",)))
        source = SourceSchema("s")
        source.add_relation(RelationSchema("R", ("X",)))
        mediator.register_source(source)
        mapping = GavMapping("G")
        mapping.add(
            SourceQuery(
                "s", "R", (("A", "X"),),
                (FilterPredicate("MISSING", "=", 1),),
            )
        )
        with pytest.raises(MappingError):
            mediator.define_mapping(mapping)

    def test_duplicate_source_and_mapping_rejected(self):
        mediator = build_top_employees_mediator()
        with pytest.raises(MediatorError):
            mediator.register_source(SourceSchema("ames"))
        with pytest.raises(MediatorError):
            mediator.define_mapping(GavMapping("TOP_EMPLOYEES"))

    def test_unbound_extension_rejected_at_query(self):
        mediator = Mediator()
        mediator.define_global_relation(RelationSchema("G", ("A",)))
        source = SourceSchema("s")
        source.add_relation(RelationSchema("R", ("A",)))
        mediator.register_source(source)
        mapping = GavMapping("G")
        mapping.add(SourceQuery("s", "R", (("A", "A"),)))
        mediator.define_mapping(mapping)
        with pytest.raises(MediatorError):
            mediator.query("G")

    def test_bad_filter_operator(self):
        with pytest.raises(MappingError):
            FilterPredicate("A", "~", 1)

    def test_relation_schema_validation(self):
        with pytest.raises(MappingError):
            RelationSchema("R", ())
        with pytest.raises(MappingError):
            RelationSchema("R", ("A", "a"))


class TestLedger:
    def test_artifact_count_reflects_everything_written(self):
        mediator = build_top_employees_mediator()
        # 3 sources × (schema + 1 relation) + 1 global relation + 3 mapping
        # rules = 10 artifacts.
        assert mediator.engineering_artifacts == 10
        assert mediator.source_count == 3

    def test_describe_mentions_all_pieces(self):
        text = build_top_employees_mediator().describe()
        assert "ames" in text and "TOP_EMPLOYEES" in text and "UNION" in text

    def test_filters_with_incomparable_types_are_false(self):
        predicate = FilterPredicate("A", "<", 5)
        assert not predicate.accepts({"A": "string"})
        assert not predicate.accepts({"A": None})
        assert not predicate.accepts({})
