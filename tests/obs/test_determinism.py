"""Two identical runs must observe identically: the obs determinism pact.

The perf gate compares counter snapshots across CI runs, and the trace
export is documented as a deterministic record — both only hold if
nothing in the layer reads a clock or RNG.  These tests run a full
ingest + query + federation workload twice, from scratch, and require
bit-identical metric snapshots, ``/metrics`` text, and trace JSONL.
"""

from repro import obs
from repro.netmark import Netmark
from repro.obs import Tracer

DOCUMENTS = [
    (
        "plan.xml",
        "<ndoc><title>Plan</title>"
        "<section><heading>Budget</heading><p>resource costs</p></section>"
        "<section><heading>Schedule</heading><p>milestones</p></section>"
        "</ndoc>",
    ),
    (
        "report.xml",
        "<ndoc><title>Report</title>"
        "<section><heading>Budget</heading><p>更新 resource view</p></section>"
        "</ndoc>",
    ),
    ("notes.txt", "budget notes: resource usage and milestones"),
]

QUERIES = [
    "Context=Budget",
    "Content=resource",
    "Context=Budget&Content=resource&limit=1",
    "Context=Budget&Explain=profile",
    "Context=Budget&Trace=1",
]


def _run_workload() -> tuple[dict[str, float], str, str]:
    """One complete run in a fresh sandbox; returns its observations."""
    previous = obs.get_registry()
    obs.push_registry()
    try:
        tracer = Tracer()
        node = Netmark(tracer=tracer)
        for file_name, content in DOCUMENTS:
            node.drop(file_name, content)
        records = node.poll()
        assert all(record.ok for record in records)
        node.create_databank("local")
        node.add_source("local", node.as_source())
        for query in QUERIES:
            response = node.http_get(f"/search?{query}")
            assert response.ok
        node.federated_search("Context=Budget", "local")
        node.http_get("/metrics")
        return obs.snapshot(), obs.render_text(), tracer.export_jsonl()
    finally:
        obs.set_registry(previous)


def test_two_runs_observe_bit_identically():
    first_snapshot, first_text, first_trace = _run_workload()
    second_snapshot, second_text, second_trace = _run_workload()
    assert first_snapshot == second_snapshot
    assert first_text == second_text
    assert first_trace == second_trace


def test_the_workload_actually_observed_something():
    snapshot, text, trace = _run_workload()
    assert snapshot  # non-vacuous determinism
    assert "repro_query_queries_total" in text
    # The facade tracer saw the daemon's ingest pipeline.
    assert '"daemon.poll"' in trace or '"daemon.ingest"' in trace
