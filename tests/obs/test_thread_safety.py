"""Concurrency: the registry and tracer under multi-threaded load."""

import threading

from repro import obs
from repro.obs import MetricsRegistry, Tracer

THREADS = 8
BUMPS = 2000


def _run_threads(target) -> None:
    threads = [threading.Thread(target=target) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestRegistryUnderLoad:
    def test_concurrent_counter_bumps_sum_exactly(self):
        registry = MetricsRegistry()

        def bump():
            for _ in range(BUMPS):
                registry.counter("repro_test_hits_total").inc(
                    1, worker="shared"
                )

        _run_threads(bump)
        counter = registry.get("repro_test_hits_total")
        assert counter.value(worker="shared") == THREADS * BUMPS

    def test_concurrent_histogram_observations_count_exactly(self):
        registry = MetricsRegistry()

        def observe():
            for value in range(BUMPS):
                registry.histogram("repro_test_ticks").observe(value % 7)

        _run_threads(observe)
        histogram = registry.get("repro_test_ticks")
        assert histogram.value() == THREADS * BUMPS
        snapshot = registry.snapshot()
        assert snapshot["repro_test_ticks_count"] == THREADS * BUMPS

    def test_registration_race_yields_one_family(self):
        registry = MetricsRegistry()
        created = []

        def register():
            created.append(registry.counter("repro_test_once_total"))

        _run_threads(register)
        assert len({id(metric) for metric in created}) == 1

    def test_snapshot_during_concurrent_bumps_is_coherent(self):
        """Counters bumped in lock-step pairs: any atomic snapshot shows
        the pair equal — a torn snapshot would catch them apart."""
        registry = MetricsRegistry()
        a = registry.counter("repro_test_a_total")
        b = registry.counter("repro_test_b_total")
        stop = threading.Event()

        def paired_bumps():
            while not stop.is_set():
                with registry._lock:
                    a.inc()
                    b.inc()

        writer = threading.Thread(target=paired_bumps)
        writer.start()
        try:
            for _ in range(200):
                snapshot = registry.snapshot()
                assert snapshot.get(
                    "repro_test_a_total", 0
                ) == snapshot.get("repro_test_b_total", 0)
        finally:
            stop.set()
            writer.join()


class TestTracerUnderLoad:
    def test_roots_collected_from_many_threads(self):
        tracer = Tracer(max_roots=THREADS * 50)
        collected = []

        def trace_from_worker():
            # Each thread builds its own spans via a thread-local tracer
            # and hands the finished roots to the shared collector.
            local = Tracer()
            for index in range(50):
                with local.span("op", index=index):
                    pass
            with tracer._roots_lock:
                tracer.roots.extend(local.take_roots())

        _run_threads(trace_from_worker)
        roots = tracer.take_roots()
        assert len(roots) == THREADS * 50
        assert tracer.take_roots() == []

    def test_export_while_draining_does_not_tear(self):
        tracer = Tracer()
        for index in range(64):
            with tracer.span("op", index=index):
                pass
        errors = []

        def drain():
            try:
                tracer.take_roots()
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        def export():
            try:
                tracer.export_jsonl()
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=drain), threading.Thread(target=export)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestModuleHelpersUnderLoad:
    def test_module_inc_is_thread_safe(self):
        previous = obs.push_registry()
        try:

            def bump():
                for _ in range(BUMPS):
                    obs.inc("repro_test_module_total")

            _run_threads(bump)
            assert (
                obs.snapshot()["repro_test_module_total"] == THREADS * BUMPS
            )
        finally:
            obs.set_registry(previous)
