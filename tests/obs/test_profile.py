"""repro.obs.profile + the plan integration behind ``Explain=profile``."""

import pytest

from repro import obs
from repro.obs import PlanProfiler
from repro.query.engine import QueryEngine
from repro.query.language import parse_query
from repro.sgml.serializer import serialize
from repro.store import XmlStore

DOCUMENT = """
<ndoc>
<title>Mission Plan</title>
<section><heading>Budget</heading>
<p>The resource budget covers launch and recovery.</p>
<p>Contingency resource lines are separate.</p>
</section>
<section><heading>Schedule</heading>
<p>Milestones slip when the budget does.</p>
</section>
</ndoc>
"""


@pytest.fixture(autouse=True)
def sandbox_registry():
    previous = obs.get_registry()
    obs.push_registry()
    yield
    obs.set_registry(previous)


@pytest.fixture()
def store():
    loaded = XmlStore()
    for index in range(4):
        loaded.store_text(DOCUMENT, f"plan-{index}.xml")
    return loaded


class TestPlanProfiler:
    def test_clock_counts_advances(self):
        profiler = PlanProfiler()
        assert profiler.now() == 0
        profiler.advance()
        profiler.advance(3)
        assert profiler.now() == 4
        assert profiler.total_ticks == 4


class TestExplainProfile:
    def test_plain_explain_has_no_ticks(self, store):
        document = QueryEngine(store).explain("Context=Budget&Explain=1")
        xml = serialize(document, indent=2)
        assert 'rows="' in xml
        assert "ticks" not in xml
        assert "profile" not in xml

    def test_profile_annotates_every_operator(self, store):
        engine = QueryEngine(store)
        query = parse_query("Context=Budget&Content=resource&Explain=profile")
        assert query.profile and query.explain
        document = engine.explain(query)
        plan = document.root
        assert plan.attributes["profile"] == "work-units"
        total = int(plan.attributes["total-ticks"])
        assert total > 0

        def operators(element):
            yield element
            for child in element.children:
                if getattr(child, "tag", None) == "operator":
                    yield from operators(child)

        (root_operator,) = [
            child for child in plan.children if getattr(child, "tag", None) == "operator"
        ]
        seen = list(operators(root_operator))
        assert len(seen) > 3  # materialize > present > limit > ...
        for operator in seen:
            assert "rows" in operator.attributes
            assert int(operator.attributes["ticks"]) >= 0
        # The root's inclusive cost covers every row surfaced anywhere.
        assert int(root_operator.attributes["ticks"]) == total

    def test_child_cost_is_contained_in_parent(self, store):
        document = QueryEngine(store).explain(
            "Context=Budget&Explain=profile"
        )

        def check(element):
            for child in element.children:
                if getattr(child, "tag", None) != "operator":
                    continue
                assert (
                    int(child.attributes["ticks"])
                    <= int(element.attributes["ticks"])
                )
                check(child)

        (root_operator,) = [
            child
            for child in document.root.children
            if getattr(child, "tag", None) == "operator"
        ]
        check(root_operator)

    def test_ticks_are_deterministic_across_runs(self, store):
        engine = QueryEngine(store)
        first = serialize(
            engine.explain("Context=Budget&Content=resource&Explain=profile"),
            indent=2,
        )
        second = serialize(
            engine.explain("Context=Budget&Content=resource&Explain=profile"),
            indent=2,
        )
        assert first == second

    def test_wall_clock_is_injected_only(self, store):
        ticks = iter(range(10000))
        document = QueryEngine(store).explain(
            "Context=Budget&Explain=profile",
            wall_clock=lambda: float(next(ticks)),
        )
        xml = serialize(document, indent=2)
        assert "wall_ms" in xml
        plain = serialize(
            QueryEngine(store).explain("Context=Budget&Explain=profile"),
            indent=2,
        )
        assert "wall_ms" not in plain

    def test_unprofiled_execution_is_unchanged(self, store):
        engine = QueryEngine(store)
        profiled = engine.execute("Context=Budget&Explain=profile")
        plain = engine.execute("Context=Budget")
        assert len(profiled) == len(plain)
