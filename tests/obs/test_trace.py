"""repro.obs.trace: span trees, logical ticks, JSONL export, null tracer."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestSpanTrees:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("request", route="/search"):
            with tracer.span("execute"):
                with tracer.span("probe"):
                    pass
            with tracer.span("compose"):
                pass
        (root,) = tracer.take_roots()
        assert root.name == "request"
        assert root.attrs == {"route": "/search"}
        assert [child.name for child in root.children] == [
            "execute", "compose",
        ]
        assert [span.name for span in root.walk()] == [
            "request", "execute", "probe", "compose",
        ]

    def test_own_clock_counts_span_boundaries(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.take_roots()
        inner = root.children[0]
        # outer: open@1, inner open@2, inner close@3, outer close@4.
        assert (root.start_tick, root.end_tick) == (1, 4)
        assert (inner.start_tick, inner.end_tick) == (2, 3)
        assert root.ticks == 3
        assert inner.ticks == 1

    def test_external_clock_is_read_not_advanced(self):
        class Clock:
            def __init__(self):
                self.t = 100

            def now(self):
                return self.t

        clock = Clock()
        tracer = Tracer(clock=clock)
        with tracer.span("step"):
            clock.t = 107
        (root,) = tracer.take_roots()
        assert root.start_tick == 100
        assert root.ticks == 7

    def test_annotate_after_open(self):
        tracer = Tracer()
        with tracer.span("execute") as span:
            span.annotate(matches=3)
        (root,) = tracer.take_roots()
        assert root.attrs == {"matches": 3}

    def test_name_is_positional_only(self):
        tracer = Tracer()
        with tracer.span("store", name="report.ndoc"):
            pass
        (root,) = tracer.take_roots()
        assert root.name == "store"
        assert root.attrs == {"name": "report.ndoc"}

    def test_out_of_order_close_is_an_error(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(ObservabilityError):
            outer.__exit__(None, None, None)

    def test_exception_still_closes_the_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (root,) = tracer.take_roots()
        assert root.end_tick is not None
        assert tracer.current is None


class TestCollection:
    def test_take_roots_drains(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        assert len(tracer.take_roots()) == 1
        assert tracer.take_roots() == []

    def test_root_cap_drops_not_grows(self):
        tracer = Tracer(max_roots=2)
        for index in range(5):
            with tracer.span("burst", index=index):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped_roots == 3

    def test_reset_restarts_the_clock(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        tracer.reset()
        with tracer.span("second"):
            pass
        (root,) = tracer.take_roots()
        assert root.start_tick == 1


class TestExport:
    def test_jsonl_is_canonical_and_wall_free(self):
        tracer = Tracer(wall_clock=iter(range(100)).__next__)
        with tracer.span("request"):
            with tracer.span("execute"):
                pass
        exported = tracer.export_jsonl()
        (line,) = exported.strip().split("\n")
        data = json.loads(line)
        assert data["name"] == "request"
        assert data["children"][0]["name"] == "execute"
        assert "wall_seconds" not in line
        assert line == json.dumps(data, sort_keys=True, separators=(",", ":"))

    def test_wall_clock_measures_spans_when_injected(self):
        ticks = iter(range(100))
        tracer = Tracer(wall_clock=lambda: float(next(ticks)))
        with tracer.span("outer"):
            pass
        (root,) = tracer.take_roots()
        assert root.wall_seconds == 1.0
        assert root.to_dict(include_wall=True)["wall_seconds"] == 1.0
        assert "wall_seconds" not in root.to_dict()


class TestNullTracer:
    def test_shared_noop_span(self):
        first = NULL_TRACER.span("anything", key="value")
        second = NULL_TRACER.span("else")
        assert first is second
        with first as handle:
            handle.annotate(rows=5)
        assert NULL_TRACER.take_roots() == []

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False
        assert Tracer().enabled is True
