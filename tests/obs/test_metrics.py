"""repro.obs.metrics: families, labels, snapshots, text exposition."""

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, validate_metric_name


@pytest.fixture(autouse=True)
def sandbox_registry():
    previous = obs.get_registry()
    obs.push_registry()
    yield
    obs.set_registry(previous)


class TestNaming:
    def test_convention_accepted(self):
        assert validate_metric_name("repro_ordbms_wal_appends_total")
        assert validate_metric_name("repro_federation_breaker_state")

    @pytest.mark.parametrize(
        "bad",
        ["wal_appends", "repro_walAppends", "Repro_ordbms_x", "repro_x"],
    )
    def test_off_convention_rejected(self, bad):
        with pytest.raises(ObservabilityError):
            validate_metric_name(bad)

    def test_registry_enforces_names(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("requests")


class TestCounter:
    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_server_requests_total")
        counter.inc(route="search")
        counter.inc(2, route="docs")
        counter.inc(route="search")
        assert counter.value(route="search") == 2
        assert counter.value(route="docs") == 2
        assert counter.value(route="never") == 0

    def test_counters_cannot_decrease(self):
        counter = MetricsRegistry().counter("repro_query_queries_total")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_non_string_label_values_coerce(self):
        counter = MetricsRegistry().counter("repro_query_queries_total")
        counter.inc(shard=3)
        assert counter.value(shard="3") == 1

    def test_kind_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_query_queries_total")
        with pytest.raises(ObservabilityError):
            registry.gauge("repro_query_queries_total")


class TestGaugeAndHistogram:
    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_federation_breaker_state")
        gauge.set(2, source="eng")
        gauge.set(0, source="eng")
        assert gauge.value(source="eng") == 0
        gauge.inc(source="eng")
        gauge.dec(source="eng")
        assert gauge.value(source="eng") == 0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_federation_source_latency_ticks", buckets=(1, 5, 10)
        )
        for value in (0, 3, 7, 100):
            histogram.observe(value)
        snap = registry.snapshot()
        base = "repro_federation_source_latency_ticks"
        assert snap[f'{base}_bucket{{le="1"}}'] == 1
        assert snap[f'{base}_bucket{{le="5"}}'] == 2
        assert snap[f'{base}_bucket{{le="10"}}'] == 3
        assert snap[f'{base}_bucket{{le="+Inf"}}'] == 4
        assert snap[f"{base}_count"] == 4
        assert snap[f"{base}_sum"] == 110

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().histogram(
                "repro_obs_bad_buckets", buckets=(5, 1)
            )


class TestSnapshotAndExposition:
    def test_snapshot_is_sorted_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("repro_server_requests_total").inc(route="search")
        registry.counter("repro_ordbms_wal_appends_total").inc(3)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap == {
            "repro_ordbms_wal_appends_total": 3,
            'repro_server_requests_total{route="search"}': 1,
        }

    def test_render_text_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_server_requests_total", "requests by route"
        ).inc(route="search")
        registry.gauge("repro_federation_breaker_state").set(2, source="a")
        text = registry.render_text()
        assert "# HELP repro_server_requests_total requests by route" in text
        assert "# TYPE repro_server_requests_total counter" in text
        assert 'repro_server_requests_total{route="search"} 1' in text
        assert "# TYPE repro_federation_breaker_state gauge" in text
        assert 'repro_federation_breaker_state{source="a"} 2' in text
        assert text.endswith("\n")

    def test_integer_values_render_bare(self):
        registry = MetricsRegistry()
        registry.counter("repro_obs_ints_total").inc(2.0)
        registry.counter("repro_obs_floats_total").inc(0.5)
        text = registry.render_text()
        assert "repro_obs_ints_total 2\n" in text
        assert "repro_obs_floats_total 0.5" in text


class TestModuleHelpers:
    def test_default_registry_helpers(self):
        obs.inc("repro_query_queries_total", kind="context")
        obs.set_gauge("repro_federation_breaker_state", 1, source="x")
        obs.observe("repro_obs_units", 3)
        snap = obs.snapshot()
        assert snap['repro_query_queries_total{kind="context"}'] == 1
        assert snap['repro_federation_breaker_state{source="x"}'] == 1
        assert "repro_query_queries_total" in obs.render_text()

    def test_set_enabled_makes_recording_a_noop(self):
        previous = obs.set_enabled(False)
        try:
            obs.inc("repro_query_queries_total")
            obs.set_gauge("repro_federation_breaker_state", 2)
            obs.observe("repro_obs_units", 1)
        finally:
            obs.set_enabled(previous)
        assert obs.snapshot() == {}

    def test_push_registry_isolates(self):
        obs.inc("repro_query_queries_total")
        obs.push_registry()
        assert obs.snapshot() == {}
