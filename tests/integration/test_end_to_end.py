"""End-to-end integration: the complete Fig 3 flow and the facade."""

import pytest

from repro.netmark import Netmark
from repro.sgml.parser import parse_xml


class TestIngestionFlow:
    """Drop folder -> daemon -> SGML parser -> XML store -> query."""

    def test_drop_poll_search(self, netmark):
        netmark.drop(
            "r.ndoc",
            "{\\ndoc1}\n{\\style Heading1}Findings\n"
            "{\\style Normal}Cracked turbine blade found.\n",
        )
        [record] = netmark.poll()
        assert record.ok
        [match] = netmark.search("Context=Findings")
        assert "turbine" in match.content

    def test_mixed_format_corpus(self, loaded_netmark):
        assert loaded_netmark.document_count == 5
        matches = loaded_netmark.search("Context=Budget")
        assert len(matches) == 3  # ndoc, md, html all have Budget headings

    def test_ingest_returns_record_for_named_file(self, netmark):
        record = netmark.ingest("n.md", "# Hello\nworld\n")
        assert record.ok and record.doc_id == 1

    def test_query_through_http_with_composition(self, loaded_netmark):
        loaded_netmark.install_stylesheet(
            "toc.xsl",
            "<xsl:stylesheet>"
            '<xsl:template match="/"><toc>'
            '<xsl:for-each select="results/result">'
            '<entry doc="{@doc}"><xsl:value-of select="context"/></entry>'
            "</xsl:for-each></toc></xsl:template></xsl:stylesheet>",
        )
        response = loaded_netmark.http_get(
            "/search?Context=Budget&xslt=toc.xsl"
        )
        assert response.ok
        toc = parse_xml(response.body)
        docs = {entry.get("doc") for entry in toc.find_all("entry")}
        assert docs == {"report1.ndoc", "notes.md", "page.html"}

    def test_document_retrieval_round_trip(self, loaded_netmark):
        response = loaded_netmark.http_get("/doc/3")
        assert response.ok
        document = parse_xml(response.body)
        assert document.find("context") is not None

    def test_store_isolated_per_node(self):
        first = Netmark("one")
        second = Netmark("two")
        first.ingest("a.md", "# OnlyInOne\nx\n")
        assert len(second.search("Context=OnlyInOne")) == 0
        assert len(first.search("Context=OnlyInOne")) == 1


class TestFederatedFlow:
    def test_netmark_nodes_federate(self):
        east = Netmark("east")
        east.ingest("e.md", "# Budget\neast dollars\n")
        west = Netmark("west")
        west.ingest("w.md", "# Budget\nwest dollars\n")
        hub = Netmark("hub")
        hub.create_databank("all", "both coasts")
        hub.add_source("all", east.as_source())
        hub.add_source("all", west.as_source())
        results = hub.federated_search("Context=Budget&databank=all")
        assert {match.source for match in results} == {"east", "west"}

    def test_federated_search_via_http(self):
        hub = Netmark("hub")
        spoke = Netmark("spoke")
        spoke.ingest("s.md", "# Findings\nremote text\n")
        hub.create_databank("bank", "")
        hub.add_source("bank", spoke.as_source())
        response = hub.http_get("/search?Context=Findings&databank=bank")
        assert response.ok and "remote text" in response.body

    def test_assembly_ledger_counts_declarative_steps(self):
        node = Netmark("n")
        node.create_databank("d1")
        node.add_source("d1", Netmark("other").as_source())
        node.install_stylesheet(
            "s.xsl",
            '<xsl:stylesheet><xsl:template match="/"><x/></xsl:template>'
            "</xsl:stylesheet>",
        )
        assert node.assembly_steps == 3
        assert len(node.ledger.steps) == 3


class TestSchemaLessInvariant:
    def test_table_count_constant_through_lifecycle(self, netmark):
        assert netmark.store.table_count == 2
        netmark.ingest("a.md", "# A\nx\n")
        netmark.ingest("b.csv", "K,V\nrow,1\n")
        netmark.ingest("c.html", "<html><body><h1>C</h1></body></html>")
        netmark.store.delete_document(1)
        assert netmark.store.table_count == 2

    def test_ddl_only_at_bootstrap(self, netmark):
        ddl_after_init = netmark.database.catalog.ddl_statements
        netmark.ingest("a.md", "# A\nx\n")
        netmark.ingest("b.nppt", "#NPPT\n== Slide 1: B ==\n* y\n")
        assert netmark.database.catalog.ddl_statements == ddl_after_init
