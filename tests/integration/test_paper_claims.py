"""Direct checks of the paper's headline claims, one test per claim."""

from repro.baselines.shredded import ShreddedXmlStore
from repro.converters import convert
from repro.costmodel import (
    consumer_cost_curves,
    is_linear_growth,
    shows_economies_of_scale,
)
from repro.federation import ContentOnlySource, execute_augmented
from repro.netmark import Netmark
from repro.query.language import parse_query
from repro.store import XmlStore


class TestClaimSchemaLess:
    """'The database will be nothing more than an intelligent storage
    component ... it is schema-less.'"""

    def test_any_document_type_without_new_schema(self):
        store = XmlStore()
        store.store_text("<inventory><bolt size='3'/></inventory>"
                         .replace("'", '"'), "parts.xml")
        store.store_text("# Memo\nText\n", "memo.md")
        store.store_text("K,V\nrow,1\n", "sheet.csv")
        assert store.table_count == 2

    def test_shredding_baseline_is_schema_dependent(self):
        shredded = ShreddedXmlStore()
        before = shredded.table_count
        shredded.store_document(convert("# Memo\nText\n", "memo.md"))
        after_first = shredded.table_count
        shredded.store_document(
            convert("<inventory><bolt/></inventory>", "parts.xml")
        )
        assert after_first > before
        assert shredded.table_count > after_first


class TestClaimClientSideIntegration:
    """'Any required integration across multiple sources will be done at
    the client and on the fly.'"""

    def test_no_shared_schema_needed_for_federation(self):
        hub = Netmark("hub")
        east = Netmark("east")
        east.ingest("e.md", "# Budget\nalpha\n")
        west = Netmark("west")
        west.ingest("w.csv", "Item,FY04\nBudget,100\n")
        hub.create_databank("all")
        hub.add_source("all", east.as_source())
        hub.add_source("all", west.as_source())
        # Integration artifacts: exactly 3 declarative steps, no schemas.
        assert hub.assembly_steps == 3
        results = hub.federated_search("Context=Budget&databank=all")
        assert len(results) == 2

    def test_vocabulary_mismatch_spanned_by_alternatives(self):
        """§4: 'we have to specify two Context queries (one for Budget and
        one for Cost Details)' — packed as alternatives, no virtual view."""
        node = Netmark("n")
        node.ingest("a.md", "# Budget\nten dollars\n")
        node.ingest("b.md", "# Cost Details\ntwenty dollars\n")
        matches = node.search("Context=Budget|Cost Details")
        assert len(matches) == 2


class TestClaimAugmentation:
    """§2.1.5: NETMARK 'augments' weaker sources' query capability."""

    def test_context_search_over_content_only_source(self):
        source = ContentOnlySource(
            "legacy",
            {"d.md": "# Title\nEngine trouble\n\n# Body\nDetails here.\n"},
        )
        matches = execute_augmented(
            parse_query("Context=Title&Content=engine"), source
        )
        assert [match.context for match in matches] == ["Title"]


class TestClaimEconomics:
    """Fig 1: linear current trend vs economies-of-scale vision."""

    def test_cost_curve_shapes(self):
        curves = consumer_cost_curves()
        assert is_linear_growth(curves["gav"])
        assert shows_economies_of_scale(curves["netmark"], curves["gav"])


class TestClaimQueryCapabilities:
    """§2.1.3's three query kinds, verbatim examples."""

    def test_context_introduction(self):
        node = Netmark("n")
        node.ingest(
            "paper.md",
            "# Introduction\nSeamless integrated access is hard.\n"
            "# Conclusions\nIt worked.\n",
        )
        [match] = node.search("Context=Introduction")
        assert match.content == "Seamless integrated access is hard."

    def test_content_shuttle(self):
        node = Netmark("n")
        node.ingest("a.md", "# X\nthe shuttle flies\n")
        node.ingest("b.md", "# Y\nno spacecraft here\n")
        matches = node.search("Content=Shuttle")
        assert [match.file_name for match in matches] == ["a.md"]

    def test_combined_technology_gap_shrinking(self):
        node = Netmark("n")
        node.ingest(
            "r.md",
            "# Technology Gap\nThe gap is shrinking.\n# Other\nshrinking too\n",
        )
        node.ingest("s.md", "# Technology Gap\nThe gap is growing.\n")
        matches = node.search("Context=Technology Gap&Content=Shrinking")
        assert [match.file_name for match in matches] == ["r.md"]
        assert matches[0].context == "Technology Gap"
