"""Cross-cutting property-based tests.

These drive randomly generated corpora through the full pipeline and
check the system-level invariants against naive reference
implementations that share no code with the production paths.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converters import convert
from repro.ordbms.textindex import tokenize
from repro.query.engine import QueryEngine, phrase_in
from repro.sgml.parser import parse_html
from repro.store import XmlStore
from repro.workloads.corpus import render_markdown, render_ndoc

# Controlled vocabulary keeps queries meaningfully selective.
_WORDS = ("alpha", "beta", "gamma", "delta", "orbit", "engine", "budget")
_HEADINGS = ("Budget", "Schedule", "Findings", "Travel Plan")

section_strategy = st.tuples(
    st.sampled_from(_HEADINGS),
    st.lists(
        st.lists(st.sampled_from(_WORDS), min_size=1, max_size=6).map(" ".join),
        min_size=1,
        max_size=2,
    ),
)

corpus_strategy = st.lists(
    st.tuples(st.sampled_from(["md", "ndoc"]), st.lists(
        section_strategy, min_size=1, max_size=3
    )),
    min_size=1,
    max_size=4,
)


def _build_store(corpus):
    store = XmlStore()
    truth = []  # (doc_name, heading, section words)
    for index, (fmt, sections) in enumerate(corpus):
        name = f"doc{index}.{fmt}"
        # Deduplicate headings within one document: repeated headings are
        # legal but make the reference bookkeeping ambiguous.
        seen = set()
        unique_sections = []
        for heading, paragraphs in sections:
            if heading in seen:
                continue
            seen.add(heading)
            unique_sections.append((heading, paragraphs))
        render = render_markdown if fmt == "md" else render_ndoc
        store.store_text(render(f"Doc {index}", unique_sections), name)
        for heading, paragraphs in unique_sections:
            words = set()
            for paragraph in paragraphs:
                words.update(paragraph.split())
            truth.append((name, heading, words))
    return store, truth


class TestQueryEngineAgainstReference:
    @given(corpus_strategy, st.sampled_from(_HEADINGS))
    @settings(max_examples=25, deadline=None)
    def test_context_search_matches_reference(self, corpus, heading):
        store, truth = _build_store(corpus)
        engine = QueryEngine(store)
        got = {
            (match.file_name, match.context)
            for match in engine.execute(f"Context={heading}")
        }
        expected = {
            (name, section_heading)
            for name, section_heading, _ in truth
            if phrase_in(heading, section_heading)
        }
        assert got == expected

    @given(corpus_strategy, st.sampled_from(_WORDS))
    @settings(max_examples=25, deadline=None)
    def test_content_search_matches_reference(self, corpus, term):
        store, truth = _build_store(corpus)
        engine = QueryEngine(store)
        got = {
            (match.file_name, match.context)
            for match in engine.execute(f"Content={term}")
        }
        expected = {
            (name, heading)
            for name, heading, words in truth
            # Headings participate in content search ("anywhere in the
            # document"), matching engine semantics.
            if term in words
            or term in {token for token in tokenize(heading)}
        }
        # Title sections of ndoc docs have no words; ignore doc-level
        # matches of the synthetic title contexts on both sides.
        got = {pair for pair in got if pair[1] in _HEADINGS or pair[1].startswith("Doc ")}
        expected = {pair for pair in expected}
        assert got >= expected
        # No spurious sections: everything found must contain the term
        # in its section words or heading.
        for name, heading in got:
            if heading.startswith("Doc "):
                continue
            matching = [
                words
                for truth_name, truth_heading, words in truth
                if truth_name == name and truth_heading == heading
            ]
            assert matching and any(
                term in words or term in tokenize(heading)
                for words in matching
            )

    @given(corpus_strategy, st.sampled_from(_HEADINGS), st.sampled_from(_WORDS))
    @settings(max_examples=25, deadline=None)
    def test_combined_is_intersection_scoped(self, corpus, heading, term):
        store, truth = _build_store(corpus)
        engine = QueryEngine(store)
        got = {
            (match.file_name, match.context)
            for match in engine.execute(f"Context={heading}&Content={term}")
        }
        expected = {
            (name, section_heading)
            for name, section_heading, words in truth
            if phrase_in(heading, section_heading)
            and (term in words or term in tokenize(section_heading))
        }
        assert got == expected


class TestPipelineInvariants:
    @given(corpus_strategy)
    @settings(max_examples=20, deadline=None)
    def test_store_always_two_tables(self, corpus):
        store, _ = _build_store(corpus)
        assert store.table_count == 2

    @given(corpus_strategy)
    @settings(max_examples=20, deadline=None)
    def test_reconstruction_preserves_text(self, corpus):
        store, _ = _build_store(corpus)
        for entry in store.documents():
            document = store.document(entry.doc_id)
            assert document.text_content().strip()


class TestTolerantParserNeverRaises:
    @given(st.text(alphabet=st.sampled_from("<>/ab c=\"'!-&;"), max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_parse_html_total(self, junk):
        document = parse_html(junk)
        assert document.root is not None

    @given(st.text(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_plaintext_convert_total(self, text):
        document = convert(text, "fuzz.txt")
        assert document.root.tag == "document"

    @given(st.text(alphabet=st.sampled_from("ab,\"\n'x"), max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_csv_convert_total_or_clean_error(self, text):
        from repro.errors import ConverterError

        try:
            convert(text, "fuzz.csv")
        except ConverterError:
            pass  # unterminated quote is a legal, clean rejection


def _normalize(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()
