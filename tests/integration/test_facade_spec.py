"""Facade-level declarative assembly and the /databanks route."""

import pytest

from repro.errors import FederationError
from repro.federation import ContentOnlySource, Record, StructuredSource
from repro.netmark import Netmark
from repro.sgml.parser import parse_xml

SPEC = '''databank engineering "Engines"
  source llis
  source tracker
alias Description = Description | Summary
'''


@pytest.fixture
def node():
    netmark = Netmark("spec-node")
    netmark.register_source(
        ContentOnlySource(
            "llis", {"l1.md": "# Summary\nEngine lesson learned\n"}
        )
    )
    netmark.register_source(
        StructuredSource(
            "tracker",
            [Record("A-1", (("Summary", "engine observation"),))],
        )
    )
    return netmark


class TestFacadeSpec:
    def test_spec_assembles_integration(self, node):
        report = node.load_databank_spec(SPEC)
        assert report.databanks == ["engineering"]
        assert node.assembly_steps == 4  # 1 databank + 2 sources + 1 alias
        results = node.federated_search(
            "Context=Description&Content=engine&databank=engineering"
        )
        assert {match.file_name for match in results} == {"l1.md", "A-1"}

    def test_spec_with_unknown_source_fails(self, node):
        with pytest.raises(FederationError):
            node.load_databank_spec("databank d\n  source ghost\n")

    def test_databanks_route(self, node):
        node.load_databank_spec(SPEC)
        response = node.http_get("/databanks")
        assert response.ok
        document = parse_xml(response.body)
        [bank] = document.find_all("databank")
        assert bank.get("name") == "engineering"
        assert bank.get("description") == "Engines"
        sources = [source.get("name") for source in bank.find_all("source")]
        assert sources == ["llis", "tracker"]

    def test_databanks_route_empty(self):
        response = Netmark("empty").http_get("/databanks")
        assert response.ok
        assert "<databanks/>" in response.body
