"""Edge-case sweep across subsystems (error paths and small helpers)."""

import pytest

from repro.errors import (
    CorpusFormatError,
    ServerError,
    SgmlSyntaxError,
    StoreError,
    WebDavError,
)
from repro.federation import SourceStats, ContentOnlySource
from repro.netmark import Netmark
from repro.query.results import SectionMatch
from repro.server.http import NetmarkHttpApi
from repro.server.webdav import WebDavServer
from repro.sgml.dom import Document, Element
from repro.store import XmlStore
from repro.workloads.corpus import _render
from repro.xslt.xpath import XPathContext, node_string_value, to_boolean


class TestErrorTypes:
    def test_webdav_error_carries_status(self):
        error = WebDavError(423, "locked")
        assert error.status == 423
        assert "423" in str(error)

    def test_sgml_error_carries_position(self):
        error = SgmlSyntaxError("bad tag", line=4, column=2)
        assert error.line == 4
        assert "line 4" in str(error)

    def test_sgml_error_without_position(self):
        assert str(SgmlSyntaxError("plain")) == "plain"


class TestComposeMultiRoot:
    def test_multiple_roots_detected(self):
        store = XmlStore()
        result = store.store_text("# A\nx\n", "a.md")
        # Manually corrupt: insert a second parentless row for the doc.
        store.database.insert(
            "XML",
            {
                "NODEID": 9999,
                "DOC_ID": result.doc_id,
                "PARENTROWID": None,
                "PARENTNODEID": None,
                "NODETYPE": 1,
                "NODENAME": "rogue",
                "ORDINAL": 0,
            },
        )
        with pytest.raises(StoreError):
            store.document(result.doc_id)


class TestHttpApiStandalone:
    def test_databank_query_without_router(self):
        store = XmlStore()
        api = NetmarkHttpApi(store, WebDavServer(), router=None)
        response = api.get("/search?Context=X&databank=d")
        assert response.status == 422

    def test_databanks_route_without_router(self):
        api = NetmarkHttpApi(XmlStore(), WebDavServer(), router=None)
        assert api.get("/databanks").ok


class TestFacadeEdges:
    def test_ingest_raises_when_file_not_reported(self, monkeypatch):
        node = Netmark("edge")
        # Sabotage the daemon so the dropped file is never reported.
        monkeypatch.setattr(node.daemon, "poll", lambda: [])
        with pytest.raises(ServerError):
            node.ingest("y.md", "# Y\nbody\n")


class TestSmallHelpers:
    def test_source_stats_snapshot(self):
        source = ContentOnlySource("s", {"d.md": "words"})
        stats = SourceStats.of(source)
        assert stats.name == "s"
        assert stats.queries_served == 0

    def test_brief_no_truncation(self):
        match = SectionMatch(1, "f.md", "H", "short", source="src")
        assert match.brief() == "[src:f.md] H: short"

    def test_render_unknown_format_rejected(self):
        with pytest.raises(CorpusFormatError):
            _render("docx", "T", [])

    def test_node_string_value_document(self):
        root = Element("a")
        root.append_text("hello")
        assert node_string_value(Document(root)) == "hello"

    def test_to_boolean_varieties(self):
        assert to_boolean([Element("a")]) is True
        assert to_boolean([]) is False
        assert to_boolean("") is False
        assert to_boolean(0.0) is False
        assert to_boolean(2.0) is True

    def test_xpath_context_with_node(self):
        root = Element("a")
        context = XPathContext(root)
        child = Element("b")
        inner = context.with_node(child, 2, 5)
        assert inner.position == 2 and inner.size == 5


class TestStoreDefensiveness:
    def test_try_fetch_bad_rowid(self):
        from repro.ordbms import RowId

        store = XmlStore()
        assert store.xml_table.try_fetch(RowId(8, 8, 8)) is None

    def test_double_store_same_name_allowed_as_distinct_docs(self):
        store = XmlStore()
        store.store_text("# A\none\n", "same.md")
        store.store_text("# A\ntwo\n", "same.md")
        assert len(store) == 2  # store_text never implicitly replaces
