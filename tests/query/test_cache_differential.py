"""Cache-correctness differential gate (the PR 10 CI satellite).

One store, two engines: a cache-enabled engine (result cache + shared
lift pool) and a bare baseline engine.  A seeded pseudo-random schedule
interleaves queries with ingests, replacements and deletions; after
every query both engines' rendered XML must be **byte-identical**.  Any
divergence means the cache served across a write, replayed the wrong
presentation, or leaked a stale lift — exactly the failure classes the
gate exists to catch.

``benchmarks/bench_cache_differential.py`` runs the same discipline at
artifact scale; this module is the fast tier-1 version.
"""

import random

import pytest

from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.sgml.serializer import serialize
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus

QUERIES = [
    "Context=Budget",
    "Context=Technology Gap",
    "Content=relay",
    "Content=relay marker",
    "Content=relay,milestones",
    "Context=Budget&Content=relay",
    "Context=Budget&limit=3",
    "Context=Risk Assessment&Content=schedule",
    "Context=Budget&Doc=doc-00",
    "Context=Budget&Format=md",
    "Context=Budget&Cache=0",
]

STEPS = 70
WRITE_EVERY = 0.2  # probability a step mutates instead of querying


def _xml(result) -> str:
    return serialize(result.to_xml(), indent=2)


class Harness:
    """One store, two engines, one seeded schedule."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.store = XmlStore()
        self.cached = QueryEngine(self.store, cache=QueryCache())
        self.baseline = QueryEngine(self.store)
        files = generate_corpus(
            CorpusSpec(documents=18, seed=seed, planted_term="relay")
        )
        self.pending = list(files[6:])
        self.loaded: list = []
        for file in files[:6]:
            self.store.store_text(file.text, file.name)
            self.loaded.append(file)

    def mutate(self) -> str:
        choice = self.rng.random()
        if choice < 0.5 and self.pending:
            file = self.pending.pop(0)
            self.store.store_text(file.text, file.name)
            self.loaded.append(file)
            return f"ingest {file.name}"
        if choice < 0.8 and self.loaded:
            file = self.rng.choice(self.loaded)
            # Markdown can be amended textually; other formats are
            # re-stored verbatim — still a full node rewrite + revision
            # bump, which is what the invalidation path cares about.
            text = file.text
            if file.name.endswith(".md"):
                text += "\nAmended relay budget paragraph.\n"
            self.store.replace_text(text, file.name)
            return f"replace {file.name}"
        if len(self.loaded) > 2:
            file = self.loaded.pop(self.rng.randrange(len(self.loaded)))
            entry = self.store.lookup_by_name(file.name)
            self.store.delete_document(entry.doc_id)
            return f"delete {file.name}"
        return "noop"

    def step(self) -> None:
        if self.rng.random() < WRITE_EVERY:
            self.mutate()
            return
        query = self.rng.choice(QUERIES)
        got = _xml(self.cached.execute(query))
        want = _xml(self.baseline.execute(query))
        assert got == want, f"cache diverged on {query!r}"


class TestCacheDifferential:
    @pytest.mark.parametrize("seed", [7, 2005, 1040])
    def test_interleaved_schedule_is_byte_identical(self, seed):
        harness = Harness(seed)
        for _ in range(STEPS):
            harness.step()
        counters = harness.cached.cache.snapshot_counters()
        # Guard against a vacuous run: the schedule must both replay
        # from cache and invalidate it.
        assert counters["hits"] > 0
        assert counters["misses"] > counters["hits"] // 10

    def test_snapshot_readers_join_the_schedule(self):
        """Pinned replays stay identical to pinned recomputation even as
        the live store churns."""
        harness = Harness(99)
        with harness.store.snapshot() as snap:
            before = [
                _xml(harness.cached.execute(query, snapshot=snap))
                for query in QUERIES[:5]
            ]
            for _ in range(10):
                harness.mutate()
            for query, expected in zip(QUERIES[:5], before):
                replay = harness.cached.execute(query, snapshot=snap)
                recompute = harness.baseline.execute(query, snapshot=snap)
                assert _xml(replay) == expected
                assert _xml(recompute) == expected

    def test_shared_lifts_never_change_answers(self):
        """Even with the result cache defeated (Cache=0 per request) the
        shared lift pool alone must be invisible in the output."""
        harness = Harness(123)
        for _ in range(20):
            harness.mutate()
        for query in QUERIES:
            opted_out = (
                query if "Cache=0" in query else f"{query}&Cache=0"
            )
            got = _xml(harness.cached.execute(opted_out))
            want = _xml(harness.baseline.execute(opted_out))
            assert got == want
