"""The generation-keyed result cache: hits, invalidation, and races.

The cache's one contract is *byte identity*: a cached answer must render
exactly as the uncached run would, and no reader — live or pinned — may
ever be served an answer from a store state it cannot see.
"""

import threading

import pytest

from repro import obs
from repro.errors import QueryError
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.query.language import format_query, parse_query
from repro.sgml.serializer import serialize

QUERY = "Context=Budget"
NEW_BUDGET_DOC = "# Late Filing\n\n## Budget\n\nEmergency budget line.\n"


def _xml(result) -> str:
    return serialize(result.to_xml(), indent=2)


@pytest.fixture
def engine(loaded_store) -> QueryEngine:
    return QueryEngine(loaded_store, cache=QueryCache())


class TestHitPath:
    def test_second_run_is_cached_and_byte_identical(self, engine):
        first = engine.execute(QUERY)
        second = engine.execute(QUERY)
        assert not first.cached
        assert second.cached
        assert _xml(second) == _xml(first)
        counters = engine.cache.snapshot_counters()
        assert counters["hits"] == 1 and counters["misses"] == 1

    def test_cached_flag_never_renders(self, engine):
        engine.execute(QUERY)
        cached = engine.execute(QUERY)
        assert cached.cached
        assert "cached" not in _xml(cached)

    def test_limit_is_part_of_the_key(self, engine):
        full = engine.execute(QUERY)
        limited = engine.execute(f"{QUERY}&limit=1")
        assert not limited.cached  # different key, not a truncated replay
        assert len(limited) == 1 and len(full) >= 1

    def test_cache_0_opts_out_both_ways(self, engine):
        engine.execute(QUERY)  # warm
        bypassed = engine.execute(f"{QUERY}&Cache=0")
        assert not bypassed.cached
        # ... and the bypassing run stored nothing new either.
        counters = engine.cache.snapshot_counters()
        assert counters["hits"] == 0
        uncached = QueryEngine(engine.store).execute(f"{QUERY}&Cache=0")
        assert _xml(bypassed) == _xml(uncached)

    def test_explain_queries_bypass_the_cache(self, engine):
        engine.execute(QUERY)  # warm
        engine.explain(parse_query(f"{QUERY}&Explain=1"))
        assert engine.cache.snapshot_counters()["hits"] == 0

    def test_deadline_queries_bypass_the_cache(self, engine):
        engine.execute(QUERY)  # warm
        bounded = engine.execute(parse_query(f"{QUERY}&Deadline=100"))
        assert not bounded.cached
        assert engine.cache.snapshot_counters()["hits"] == 0

    def test_metrics_published_for_hits_and_misses(self, loaded_store):
        previous = obs.push_registry()
        try:
            engine = QueryEngine(loaded_store, cache=QueryCache())
            engine.execute(QUERY)
            engine.execute(QUERY)
            registry = obs.get_registry()
            hits = registry.get("repro_cache_hits_total")
            misses = registry.get("repro_cache_misses_total")
            assert hits is not None and misses is not None
            assert dict(hits.series())['{cache="result"}'] == 1
            assert dict(misses.series())['{cache="result"}'] == 1
        finally:
            obs.set_registry(previous)


class TestInvalidation:
    def test_ingest_invalidates_exactly(self, engine, loaded_store):
        before = engine.execute(QUERY)
        loaded_store.store_text(NEW_BUDGET_DOC, "late.md")
        after = engine.execute(QUERY)
        assert not after.cached  # generation moved, the key with it
        assert len(after) == len(before) + 1
        assert "late.md" in after.documents()

    def test_replace_invalidates(self, engine, loaded_store):
        engine.execute(QUERY)
        loaded_store.replace_text(
            "# Overview\n\n## Budget\n\nRewritten dollars.\n", "notes.md"
        )
        fresh = engine.execute(QUERY)
        assert not fresh.cached
        assert any(
            "Rewritten dollars." in match.content for match in fresh.matches
        )

    def test_delete_invalidates(self, engine, loaded_store):
        engine.execute(QUERY)
        doomed = loaded_store.lookup_by_name("notes.md")
        loaded_store.delete_document(doomed.doc_id)
        fresh = engine.execute(QUERY)
        assert not fresh.cached
        assert "notes.md" not in fresh.documents()

    def test_pinned_reader_replays_its_own_lsn(self, engine, loaded_store):
        with loaded_store.snapshot() as snap:
            first = engine.execute(QUERY, snapshot=snap)
            loaded_store.store_text(NEW_BUDGET_DOC, "late.md")
            replay = engine.execute(QUERY, snapshot=snap)
            # Same pin, same LSN key: a hit, and byte-identical to the
            # pinned view — the write is invisible either way.
            assert replay.cached
            assert _xml(replay) == _xml(first)
            assert "late.md" not in replay.documents()

    def test_fresh_pin_after_a_write_misses(self, engine, loaded_store):
        with loaded_store.snapshot() as old_snap:
            engine.execute(QUERY, snapshot=old_snap)
        loaded_store.store_text(NEW_BUDGET_DOC, "late.md")
        with loaded_store.snapshot() as new_snap:
            fresh = engine.execute(QUERY, snapshot=new_snap)
        assert not fresh.cached  # new LSN, new key — never the old entry
        assert "late.md" in fresh.documents()


class TestBounds:
    def test_entry_capacity_evicts_lru(self, loaded_store):
        engine = QueryEngine(loaded_store, cache=QueryCache(capacity=2))
        for query in (QUERY, "Content=shuttle", "Context=Travel"):
            engine.execute(query)
        counters = engine.cache.snapshot_counters()
        assert counters["entries"] <= 2
        assert counters["evictions"] >= 1
        assert not engine.execute(QUERY).cached  # the LRU victim

    def test_byte_bound_evicts(self, loaded_store):
        engine = QueryEngine(loaded_store, cache=QueryCache(max_bytes=1))
        engine.execute(QUERY)
        engine.execute("Content=shuttle")
        counters = engine.cache.snapshot_counters()
        assert counters["entries"] == 1  # at least one entry always kept
        assert counters["evictions"] >= 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(QueryError):
            QueryCache(capacity=0)


class TestLanguageKnob:
    def test_cache_0_parses_and_round_trips(self):
        query = parse_query("Context=Budget&Cache=0")
        assert query.cache is False
        assert "Cache=0" in format_query(query)
        assert parse_query(format_query(query)) == query

    def test_cache_defaults_on_and_stays_out_of_the_string(self):
        query = parse_query("Context=Budget")
        assert query.cache is True
        assert "Cache" not in format_query(query)

    @pytest.mark.parametrize("value", ["0", "false", "no", "off"])
    def test_falsey_spellings(self, value):
        assert parse_query(f"Context=Budget&Cache={value}").cache is False

    def test_truthy_spelling(self):
        assert parse_query("Context=Budget&Cache=1").cache is True


class TestConcurrency:
    def test_concurrent_readers_agree_bytewise(self, engine):
        expected = _xml(engine.execute(QUERY))
        observed: list[str] = []
        errors: list[BaseException] = []

        def reader():
            try:
                observed.append(_xml(engine.execute(QUERY)))
            except BaseException as exc:  # pragma: no cover - fail fast
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert observed == [expected] * 8
        counters = engine.cache.snapshot_counters()
        assert counters["hits"] >= 1

    def test_racing_writer_never_leaves_stale_entries(
        self, engine, loaded_store
    ):
        """Readers race one ingest; afterwards the cached path must agree
        with an uncached engine byte-for-byte (no stale entry survived)."""
        errors: list[BaseException] = []

        def reader():
            try:
                for _ in range(5):
                    engine.execute(QUERY)
            except BaseException as exc:  # pragma: no cover - fail fast
                errors.append(exc)

        def writer():
            try:
                loaded_store.store_text(NEW_BUDGET_DOC, "late.md")
            except BaseException as exc:  # pragma: no cover - fail fast
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        settled = engine.execute(QUERY)
        uncached = QueryEngine(loaded_store).execute(QUERY)
        assert _xml(settled) == _xml(uncached)
        assert "late.md" in settled.documents()
