"""Result model: ordering helpers, XML rendering, limits."""

from repro.query.results import ResultSet, SectionMatch
from repro.sgml.dom import Element
from repro.sgml.serializer import serialize


def match(doc_id=1, file_name="a.md", context="H", content="body",
          section=None, source="local"):
    return SectionMatch(
        doc_id=doc_id,
        file_name=file_name,
        context=context,
        content=content,
        section=section,
        source=source,
    )


class TestResultSet:
    def test_len_bool_iter(self):
        results = ResultSet("q")
        assert not results and len(results) == 0
        results.add(match())
        assert results and len(results) == 1
        assert list(results)[0].context == "H"

    def test_documents_distinct_in_order(self):
        results = ResultSet("q")
        results.extend([match(file_name="b"), match(file_name="a"),
                        match(file_name="b")])
        assert results.documents() == ["b", "a"]

    def test_limited(self):
        results = ResultSet("q")
        results.extend([match(context=str(i)) for i in range(5)])
        assert len(results.limited(3)) == 3
        assert len(results.limited(None)) == 5
        assert len(results.limited(10)) == 5

    def test_brief_truncates(self):
        m = match(content="x" * 100)
        line = m.brief(width=20)
        assert "..." in line and len(line) < 100


class TestToXml:
    def test_shape(self):
        results = ResultSet("Context=Budget")
        results.add(match())
        document = results.to_xml()
        assert document.root.tag == "results"
        assert document.root.get("query") == "Context=Budget"
        [result] = document.find_all("result")
        assert result.get("doc") == "a.md"
        assert result.find("context").text_content() == "H"
        assert result.find("content").text_content() == "body"

    def test_section_children_cloned(self):
        section = Element("section")
        context = section.make_child("context")
        context.append_text("H")
        content = section.make_child("content")
        content.append_text("rich ")
        content.make_child("b").append_text("bold")
        results = ResultSet("q")
        results.add(match(section=section))
        first = serialize(results.to_xml())
        second = serialize(results.to_xml())
        assert first == second  # rendering twice must be stable
        assert "<b>bold</b>" in first
        # context child from section is not duplicated
        assert first.count("<context>") == 1

    def test_sources_attributed(self):
        results = ResultSet("q")
        results.add(match(source="llis"))
        xml = serialize(results.to_xml())
        assert 'source="llis"' in xml
