"""XDB query evaluation semantics against a loaded store."""

import pytest

from repro.query import QueryEngine, parse_query, phrase_in
from repro.query.ast import ContentSpec, ContextSpec
from repro.store import XmlStore


@pytest.fixture
def engine(loaded_store):
    return QueryEngine(loaded_store)


class TestPhraseIn:
    def test_token_containment(self):
        assert phrase_in("Budget", "FY04 Budget Summary")
        assert phrase_in("technology gap", "The Technology Gap widens")

    def test_no_substring_matches(self):
        assert not phrase_in("Budget", "Budgetary planning")

    def test_order_matters(self):
        assert not phrase_in("gap technology", "technology gap")

    def test_empty_phrase(self):
        assert not phrase_in("", "anything")


class TestContextSearch:
    def test_exact_heading(self, engine):
        matches = engine.execute("Context=Technology Gap").matches
        assert {match.file_name for match in matches} == {
            "report1.ndoc", "report2.npdf",
        }

    def test_heading_containment(self, engine):
        # "Budget" matches the heading "Budget" in three formats.
        matches = engine.execute("Context=Budget").matches
        assert {match.file_name for match in matches} == {
            "report1.ndoc", "notes.md", "page.html",
        }

    def test_case_insensitive(self, engine):
        assert len(engine.execute("Context=bUdGeT").matches) == 3

    def test_alternatives_union(self, engine):
        matches = engine.execute("Context=Budget|Cost Details").matches
        assert "report2.npdf" in {match.file_name for match in matches}

    def test_spreadsheet_rows_are_contexts(self, engine):
        matches = engine.execute("Context=Travel").matches
        by_file = {match.file_name: match for match in matches}
        assert "FY04: 10,000" in by_file["budget.csv"].content

    def test_content_of_match_is_section_text(self, engine):
        [match] = [
            m for m in engine.execute("Context=Travel").matches
            if m.file_name == "report1.ndoc"
        ]
        assert match.content == "Two conferences per year are planned."

    def test_no_match(self, engine):
        assert len(engine.execute("Context=Nonexistent Heading")) == 0

    def test_heading_word_in_content_does_not_match_context(self, engine):
        # "conferences" appears only in content, never as a heading.
        assert len(engine.execute("Context=conferences")) == 0


class TestContentSearch:
    def test_content_across_formats(self, engine):
        matches = engine.execute("Content=Shuttle").matches
        assert {match.file_name for match in matches} >= {
            "report1.ndoc", "report2.npdf", "notes.md",
        }

    def test_sections_are_the_unit(self, engine):
        matches = engine.execute("Content=shrinking").matches
        contexts = {match.context for match in matches}
        assert "Technology Gap" in contexts

    def test_conjunctive_all_mode(self, engine):
        # "funds" and "engine" occur in the same section of report1 only.
        matches = engine.execute("Content=funds engine").matches
        assert [match.file_name for match in matches] == ["report1.ndoc"]

    def test_conjunction_may_span_nodes_of_one_section(self, loaded_store):
        engine = QueryEngine(loaded_store)
        # "Travel" and "equipment" are in the same Budget section of
        # notes.md but in different content paragraphs.
        matches = engine.execute("Content=travel equipment").matches
        assert "notes.md" in {match.file_name for match in matches}

    def test_any_mode_unions(self, engine):
        all_matches = engine.execute("Content=any:equipment conferences").matches
        assert {match.file_name for match in all_matches} >= {
            "notes.md", "report1.ndoc", "budget.csv",
        }

    def test_phrase_mode(self, engine):
        matches = engine.execute('Content="shuttle engine"').matches
        assert [match.file_name for match in matches] == ["report1.ndoc"]
        assert engine.execute('Content="engine shuttle"').matches == []

    def test_stopwords_ignored_in_all_mode(self, engine):
        matches = engine.execute("Content=the shuttle").matches
        assert matches  # "the" is dropped, "shuttle" hits


class TestCombinedSearch:
    def test_paper_example(self, engine):
        matches = engine.execute(
            "Context=Technology Gap&Content=Shrinking"
        ).matches
        # Both reports have the heading; only report1 says "shrinking"
        # inside that section... report2 says "Nothing here is shrinking".
        assert {match.file_name for match in matches} == {
            "report1.ndoc", "report2.npdf",
        }

    def test_content_scoped_to_context(self, engine):
        # "Shuttle" appears in report2 only under Cost Details, not under
        # Technology Gap — wait, report2's TG section says "shrinking",
        # and its Cost Details says "Shuttle".  Scope check:
        matches = engine.execute("Context=Cost Details&Content=Shuttle").matches
        assert [match.file_name for match in matches] == ["report2.npdf"]
        assert engine.execute("Context=Travel&Content=Shuttle").matches == []

    def test_combined_with_alternatives(self, engine):
        matches = engine.execute(
            "Context=Budget|Cost Details&Content=shuttle"
        ).matches
        assert {match.file_name for match in matches} == {
            "report1.ndoc", "report2.npdf",
        }


class TestLimitsAndOrdering:
    def test_limit_applies(self, engine):
        assert len(engine.execute("Content=Shuttle&limit=2")) == 2

    def test_results_ordered_by_doc_then_node(self, engine):
        matches = engine.execute("Context=Budget").matches
        doc_ids = [match.doc_id for match in matches]
        assert doc_ids == sorted(doc_ids)

    def test_execute_accepts_parsed_query(self, engine):
        query = parse_query("Context=Budget")
        assert len(engine.execute(query)) == 3


class TestScanFallback:
    def test_scan_agrees_with_index(self, loaded_store):
        indexed = QueryEngine(loaded_store, use_index=True)
        scanning = QueryEngine(loaded_store, use_index=False)
        for query in (
            "Context=Budget",
            "Content=Shuttle",
            "Context=Technology Gap&Content=Shrinking",
            'Content="shuttle engine"',
        ):
            left = [(m.file_name, m.context) for m in indexed.execute(query)]
            right = [(m.file_name, m.context) for m in scanning.execute(query)]
            assert left == right, query


class TestDirectSpecs:
    def test_context_search_api(self, engine):
        matches = engine.context_search(ContextSpec(("Overview",)))
        assert [match.file_name for match in matches] == ["notes.md"]

    def test_content_search_api(self, engine):
        matches = engine.content_search(ContentSpec(("equipment",)))
        assert {match.file_name for match in matches} == {
            "notes.md", "budget.csv",
        }
