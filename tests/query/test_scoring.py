"""INTENSE-weighted relevance scoring."""

import pytest

from repro.netmark import Netmark


@pytest.fixture
def node():
    netmark = Netmark("score")
    netmark.ingest("plain.md", "# Alpha\nthe rocket flew today\n")
    netmark.ingest("bold.md", "# Beta\nsee the **rocket** now\n")
    netmark.ingest(
        "double.md", "# Gamma\n**rocket** one\n\nand **rocket** two\n"
    )
    return netmark


class TestIntenseScoring:
    def test_plain_match_scores_one(self, node):
        [match] = [
            m for m in node.search("Content=rocket")
            if m.file_name == "plain.md"
        ]
        assert match.score == 1.0

    def test_emphasized_match_boosted(self, node):
        [match] = [
            m for m in node.search("Content=rocket")
            if m.file_name == "bold.md"
        ]
        assert match.score == 1.5

    def test_multiple_emphasized_hits_accumulate(self, node):
        [match] = [
            m for m in node.search("Content=rocket")
            if m.file_name == "double.md"
        ]
        assert match.score == 2.0

    def test_ranked_puts_emphasis_first(self, node):
        ranked = node.search("Content=rocket").ranked()
        assert [match.file_name for match in ranked] == [
            "double.md", "bold.md", "plain.md",
        ]

    def test_result_order_remains_stable_document_order(self, node):
        matches = node.search("Content=rocket").matches
        assert [match.doc_id for match in matches] == sorted(
            match.doc_id for match in matches
        )

    def test_context_search_unscored(self, node):
        # Scoring is a content-search concept; context matches stay 1.0.
        assert all(
            match.score == 1.0 for match in node.search("Context=Alpha")
        )

    def test_intense_inside_heading_does_not_boost_content(self, node):
        node.ingest("hb.md", "# The **rocket** heading\nplain words\n")
        [match] = [
            m for m in node.search("Content=rocket")
            if m.file_name == "hb.md"
        ]
        # The hit is heading text: its ancestor chain reaches CONTEXT
        # first, so no INTENSE boost is attributed.
        assert match.score == 1.0


class TestRankedHelper:
    def test_ranked_is_stable_within_ties(self, node):
        ranked = node.search("Content=the").ranked()
        tied = [match for match in ranked if match.score == 1.0]
        assert [match.file_name for match in tied] == sorted(
            match.file_name for match in tied
        )
