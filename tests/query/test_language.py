"""XDB Query URL language: parsing, encoding, round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuerySyntaxError
from repro.query.ast import ContentSpec, ContextSpec, XdbQuery
from repro.query.language import (
    format_query,
    parse_pairs,
    parse_query,
    percent_decode,
    percent_encode,
)


class TestPercentCoding:
    @pytest.mark.parametrize(
        "encoded,decoded",
        [
            ("a+b", "a b"),
            ("a%20b", "a b"),
            ("caf%C3%A9", "café"),
            ("100%25", "100%"),
            ("plain", "plain"),
            ("%zz", "%zz"),  # bad escape passes through
        ],
    )
    def test_decode(self, encoded, decoded):
        assert percent_decode(encoded) == decoded

    @given(st.text(max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_encode_decode_round_trip(self, value):
        assert percent_decode(percent_encode(value)) == value


class TestParseQuery:
    def test_context_only(self):
        query = parse_query("Context=Introduction")
        assert query.kind == "context"
        assert query.context.phrases == ("Introduction",)

    def test_content_only(self):
        query = parse_query("Content=Shuttle")
        assert query.kind == "content"
        assert query.content.terms == ("Shuttle",)
        assert query.content.mode == "all"

    def test_combined_paper_example(self):
        query = parse_query("Context=Technology%20Gap&Content=Shrinking")
        assert query.kind == "combined"
        assert query.context.phrases == ("Technology Gap",)
        assert query.content.terms == ("Shrinking",)

    def test_alternatives(self):
        query = parse_query("Context=Budget|Cost%20Details")
        assert query.context.phrases == ("Budget", "Cost Details")

    def test_repeated_context_keys_accumulate(self):
        query = parse_query("Context=Budget&Context=Cost Details")
        assert query.context.phrases == ("Budget", "Cost Details")

    def test_quoted_content_is_phrase(self):
        query = parse_query('Content="technology gap"')
        assert query.content.mode == "phrase"
        assert query.content.terms == ("technology gap",)

    def test_any_prefix(self):
        query = parse_query("Content=any:risk safety margin")
        assert query.content.mode == "any"
        assert query.content.terms == ("risk", "safety", "margin")

    def test_conflicting_modes_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('Content="a b"&Content=any:c')

    def test_directives(self):
        query = parse_query(
            "Context=X&xslt=report.xsl&databank=eng&limit=5&custom=1"
        )
        assert query.stylesheet == "report.xsl"
        assert query.databank == "eng"
        assert query.limit == 5
        assert query.extras == (("custom", "1"),)

    def test_keys_case_insensitive(self):
        query = parse_query("CONTEXT=X&content=y&XSLT=s")
        assert query.context and query.content and query.stylesheet == "s"

    def test_full_url_accepted(self):
        query = parse_query("http://host/search?Context=X")
        assert query.context.phrases == ("X",)

    def test_empty_query_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("")

    def test_missing_equals_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Contextual")

    def test_bad_limit_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Context=X&limit=soon")
        with pytest.raises(QuerySyntaxError):
            parse_query("Context=X&limit=0")

    def test_blank_value_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Context=")


class TestAst:
    def test_query_needs_context_or_content(self):
        with pytest.raises(QuerySyntaxError):
            XdbQuery()

    def test_context_spec_trims(self):
        spec = ContextSpec(("  Budget ", ""))
        assert spec.phrases == ("Budget",)

    def test_content_spec_validates_mode(self):
        with pytest.raises(QuerySyntaxError):
            ContentSpec(("x",), "fuzzy")

    def test_kind(self):
        assert XdbQuery(context=ContextSpec(("a",))).kind == "context"
        assert XdbQuery(content=ContentSpec(("a",))).kind == "content"


class TestFormatQuery:
    def test_round_trip_simple(self):
        source = "Context=Technology+Gap&Content=Shrinking"
        assert format_query(parse_query(source)) == source

    def test_round_trip_phrase(self):
        query = parse_query('Content="a b"')
        again = parse_query(format_query(query))
        assert again.content == query.content

    def test_round_trip_everything(self):
        query = parse_query(
            "Context=A|B&Content=any:x y&xslt=s.xsl&databank=d&limit=3"
        )
        again = parse_query(format_query(query))
        assert again == query

    def test_parse_pairs_decodes(self):
        assert parse_pairs("a=1%202&b=c+d") == [("a", "1 2"), ("b", "c d")]
