"""Differential testing: the indexed and scan read paths must agree.

The ABL-IDX ablation swaps ``IndexProbe`` for ``Scan`` and (on combined
queries) drops the ``Intersect`` semijoin.  Both pipelines must return
the *same* matches — same documents, same physical rowids, same section
titles — over a generated workloads corpus, for every query shape and
with and without a limit.  Any divergence means one path over- or
under-prunes.
"""

import pytest

from repro.query import QueryEngine
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus

QUERIES = [
    "Context=Budget",
    "Context=Technology Gap",
    "Content=relay",
    "Content=relay marker",
    "Content=relay+appears",
    "Content=relay,milestones",
    "Context=Budget&Content=relay",
    "Context=Risk Assessment&Content=schedule",
    "Context=Budget&Doc=doc-00",
    "Context=Budget&Format=md",
]


@pytest.fixture(scope="module")
def corpus_store() -> XmlStore:
    store = XmlStore()
    files = generate_corpus(
        CorpusSpec(documents=24, seed=2005, planted_term="relay")
    )
    for file in files:
        store.store_text(file.text, file.name)
    return store


def signature(matches):
    return {
        (match.file_name, match.rowid, match.context)
        for match in matches
    }


class TestIndexScanEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    def test_identical_match_sets(self, corpus_store, query):
        indexed = QueryEngine(corpus_store, use_index=True).execute(query)
        scanned = QueryEngine(corpus_store, use_index=False).execute(query)
        assert signature(indexed.matches) == signature(scanned.matches)
        assert len(indexed.matches) == len(scanned.matches)

    @pytest.mark.parametrize("query", QUERIES)
    def test_identical_presentation_order(self, corpus_store, query):
        indexed = QueryEngine(corpus_store, use_index=True).execute(query)
        scanned = QueryEngine(corpus_store, use_index=False).execute(query)
        assert [
            (m.file_name, m.rowid) for m in indexed.matches
        ] == [(m.file_name, m.rowid) for m in scanned.matches]

    @pytest.mark.parametrize(
        "query",
        ["Context=Budget", "Content=relay", "Context=Budget&Content=relay"],
    )
    def test_limited_runs_agree(self, corpus_store, query):
        limited = f"{query}&limit=4"
        indexed = QueryEngine(corpus_store, use_index=True).execute(limited)
        scanned = QueryEngine(corpus_store, use_index=False).execute(limited)
        assert signature(indexed.matches) == signature(scanned.matches)

    def test_queries_actually_select_something(self, corpus_store):
        """Guard against a vacuous suite: most shapes must return rows."""
        engine = QueryEngine(corpus_store)
        nonempty = sum(
            1 for query in QUERIES if engine.execute(query).matches
        )
        assert nonempty >= 6

    def test_document_sets_agree(self, corpus_store):
        for query in QUERIES:
            indexed = QueryEngine(corpus_store, use_index=True).execute(query)
            scanned = QueryEngine(corpus_store, use_index=False).execute(query)
            assert indexed.documents() == scanned.documents()
