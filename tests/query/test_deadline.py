"""Deadline and cancellation semantics on the local query path."""

import pytest

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    QuerySyntaxError,
)
from repro.query import QueryEngine, parse_query
from repro.query.language import format_query
from repro.resilience import Budget, CancellationToken, Deadline
from repro.resilience.clock import LogicalClock
from repro.sgml.serializer import serialize


class SteppingClock:
    """A tick source that advances by one on every read.

    Plan operators consult the budget once per pulled row, so with this
    clock a query deterministically runs out of time mid-plan — no
    threads, no sleeps.
    """

    def __init__(self, start: int = 0) -> None:
        self.tick = start

    def now(self) -> int:
        self.tick += 1
        return self.tick


@pytest.fixture
def engine(loaded_store):
    return QueryEngine(loaded_store)


class TestQueryLanguage:
    def test_deadline_and_partial_parse(self):
        query = parse_query("Context=Budget&Deadline=50&Partial=1")
        assert query.deadline_ticks == 50
        assert query.partial_ok

    def test_round_trip_through_format(self):
        query = parse_query("Context=Budget&Deadline=7&Partial=1")
        assert parse_query(format_query(query)) == query

    def test_bad_deadline_values_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Context=Budget&Deadline=soon")
        with pytest.raises(QuerySyntaxError):
            parse_query("Context=Budget&Deadline=0")


class TestHardDeadline:
    def test_expired_budget_raises_timeout(self, engine):
        clock = LogicalClock()
        budget = Budget(deadline=Deadline(clock, 5))
        clock.advance(6)
        with pytest.raises(QueryTimeoutError):
            engine.execute("Context=Budget", budget=budget)

    def test_mid_plan_expiry_raises_timeout(self, engine):
        # Expires after a handful of admission checks, i.e. mid-pull.
        budget = Budget(deadline=Deadline(SteppingClock(), 3))
        with pytest.raises(QueryTimeoutError):
            engine.execute("Context=Budget", budget=budget)

    def test_deadline_accepted_directly_as_budget(self, engine):
        clock = LogicalClock()
        deadline = Deadline(clock, 2)
        clock.advance(3)
        with pytest.raises(QueryTimeoutError):
            engine.execute("Context=Budget", budget=deadline)

    def test_untouched_budget_changes_nothing(self, engine):
        clock = LogicalClock()
        with_budget = engine.execute(
            "Context=Budget", budget=Budget(deadline=Deadline(clock, 10_000))
        )
        without = engine.execute("Context=Budget")
        assert len(with_budget) == len(without) == 3
        assert not with_budget.partial


class TestPartialResults:
    def test_partial_ok_truncates_instead_of_raising(self, engine):
        full = engine.execute("Context=Budget")
        budget = Budget(
            deadline=Deadline(SteppingClock(), 3), partial_ok=True
        )
        result = engine.execute("Context=Budget", budget=budget)
        assert result.deadline_expired and result.partial
        assert len(result) < len(full)

    def test_partial_flag_comes_from_the_query_string(self, engine):
        budget = Budget(deadline=Deadline(SteppingClock(), 3))
        result = engine.execute(
            "Context=Budget&Partial=1", budget=budget
        )
        assert result.deadline_expired

    def test_truncated_result_renders_deadline_envelope(self, engine):
        budget = Budget(
            deadline=Deadline(SteppingClock(), 3), partial_ok=True
        )
        result = engine.execute("Context=Budget", budget=budget)
        xml = serialize(result.to_xml(), indent=2)
        assert 'partial="true"' in xml
        assert "<deadline-expired>" in xml


class TestCancellation:
    def test_cancelled_token_aborts_execution(self, engine):
        token = CancellationToken()
        token.cancel("caller gave up")
        with pytest.raises(QueryCancelledError, match="caller gave up"):
            engine.execute(
                "Context=Budget", budget=Budget(token=token)
            )

    def test_cancellation_beats_partial_ok(self, engine):
        token = CancellationToken()
        token.cancel()
        budget = Budget(token=token, partial_ok=True)
        with pytest.raises(QueryCancelledError):
            engine.execute("Context=Budget", budget=budget)
