"""Cursor pipeline: limit pushdown, laziness, EXPLAIN row counts.

These tests compile plans directly (``QueryEngine.compile``) so they can
inspect per-operator ``rows_out`` counters and the shared accessor's
work statistics — the proof that ``Limit`` really stops the pull and
that no operator materializes beyond what the limit requires.
"""

import pytest

from repro.query import QueryEngine, parse_query
from repro.store import XmlStore

#: Enough look-alike sections that an eager pipeline would visibly
#: over-walk: every document has a Budget section mentioning travel.
DOC_COUNT = 12


@pytest.fixture
def wide_store() -> XmlStore:
    store = XmlStore()
    for i in range(DOC_COUNT):
        store.store_text(
            f"# Report {i}\n\n"
            "## Budget\n\n"
            f"Travel spending item {i} for the shuttle program.\n\n"
            "## Outlook\n\n"
            "Unrelated closing remarks.\n",
            f"report{i}.md",
        )
    return store


def find_operator(node, name):
    if node.name == name:
        return node
    for child in node.children:
        found = find_operator(child, name)
        if found is not None:
            return found
    return None


def drain(engine, query_string):
    ctx, root = engine.compile(parse_query(query_string))
    matches = list(root.rows())
    return ctx, root, matches


class TestLimitPushdown:
    def test_section_walk_stops_at_limit(self, wide_store):
        engine = QueryEngine(wide_store)
        ctx, root, matches = drain(engine, "Content=travel&limit=3")
        assert len(matches) == 3
        # The blocking lift saw every candidate; everything above it —
        # rank's lazy emission included — flowed only the three rows the
        # limit admitted, so the expensive walk ran exactly three times.
        assert find_operator(root, "governing-lift").rows_out == DOC_COUNT
        assert find_operator(root, "rank").rows_out == 3
        assert find_operator(root, "section-walk").rows_out == 3
        assert find_operator(root, "limit").rows_out == 3
        assert find_operator(root, "materialize").rows_out == 3

    def test_limited_run_walks_fewer_sections(self, wide_store):
        engine = QueryEngine(wide_store)
        full_ctx, _, full = drain(engine, "Content=travel")
        limited_ctx, _, limited = drain(engine, "Content=travel&limit=3")
        assert len(full) == DOC_COUNT
        # Sibling hops happen only inside section walks; the limited run
        # must do strictly less of them.
        assert (
            limited_ctx.accessor.stats.sibling_hops
            < full_ctx.accessor.stats.sibling_hops
        )

    def test_limited_prefix_matches_full_run(self, wide_store):
        engine = QueryEngine(wide_store)
        _, _, full = drain(engine, "Content=travel")
        _, _, limited = drain(engine, "Content=travel&limit=3")
        assert [(m.file_name, m.rowid) for m in limited] == [
            (m.file_name, m.rowid) for m in full[:3]
        ]

    def test_context_query_never_walks_sections(self, wide_store):
        engine = QueryEngine(wide_store)
        ctx, root, matches = drain(engine, "Context=Budget&limit=2")
        assert len(matches) == 2
        assert find_operator(root, "materialize").rows_out == 2
        # A context search tests headings only; section scopes stay
        # untouched until a caller asks a lazy match for its content.
        assert ctx.accessor.stats.sibling_hops == 0

    def test_combined_query_respects_limit(self, wide_store):
        engine = QueryEngine(wide_store)
        _, root, matches = drain(engine, "Context=Budget&Content=travel&limit=2")
        assert len(matches) == 2
        assert find_operator(root, "section-walk").rows_out == 2


class TestLazyMaterialization:
    def test_section_resolution_deferred_until_access(self, wide_store):
        engine = QueryEngine(wide_store)
        ctx, _, matches = drain(engine, "Context=Budget&limit=2")
        hops_before = ctx.accessor.stats.sibling_hops
        match = matches[0]
        assert "Travel spending" in match.content
        assert ctx.accessor.stats.sibling_hops > hops_before

    def test_lazy_match_survives_source_rebrand(self, wide_store):
        engine = QueryEngine(wide_store)
        _, _, matches = drain(engine, "Context=Budget&limit=1")
        clone = matches[0].with_source("remote-a")
        assert clone.source == "remote-a"
        assert clone.context == matches[0].context
        assert "Travel spending" in clone.content


class TestExplain:
    def test_explain_reports_per_operator_rows(self, wide_store):
        engine = QueryEngine(wide_store)
        document = engine.explain("Content=travel&limit=3")
        plan = document.root
        assert plan.tag == "plan"
        assert plan.attributes["kind"] == "content"
        assert "Content=travel" in plan.attributes["query"]

        def operators(element):
            for child in element.children:
                if getattr(child, "tag", None) == "operator":
                    yield child
                    yield from operators(child)

        by_name = {
            op.attributes["name"]: int(op.attributes["rows"])
            for op in operators(plan)
        }
        assert by_name["governing-lift"] == DOC_COUNT
        assert by_name["rank"] == 3
        assert by_name["section-walk"] == 3
        assert by_name["limit"] == 3
        assert by_name["materialize"] == 3

    def test_explain_matches_execute_counts(self, wide_store):
        engine = QueryEngine(wide_store)
        result = engine.execute("Content=travel&limit=3")
        document = engine.explain("Content=travel&limit=3")
        root_rows = int(
            document.root.children[0].attributes["rows"]
        )
        assert root_rows == len(result.matches) == 3
