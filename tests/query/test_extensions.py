"""Query-language extensions: Nodename=, Doc=, Format= and store revisions."""

import pytest

from repro.errors import QuerySyntaxError
from repro.netmark import Netmark
from repro.query.language import format_query, parse_query


@pytest.fixture
def node():
    netmark = Netmark("ext")
    netmark.ingest("a.md", "# Budget\ntravel dollars\n\n# Other\nnoise\n")
    netmark.ingest("b.csv", "K,V\nBudget,77\n")
    netmark.ingest(
        "c.xml",
        "<report><chapter>alpha text</chapter>"
        "<chapter>beta text</chapter><summary>done</summary></report>",
    )
    return netmark


class TestNodenameQueries:
    def test_parse_kind(self):
        query = parse_query("Nodename=chapter")
        assert query.kind == "nodename"
        assert query.nodename == "chapter"

    def test_instances_returned(self, node):
        matches = node.search("Nodename=chapter")
        assert [match.content for match in matches] == [
            "alpha text", "beta text",
        ]

    def test_nodename_with_content_filter(self, node):
        matches = node.search("Nodename=chapter&Content=beta")
        assert [match.content for match in matches] == ["beta text"]

    def test_nodename_case_insensitive(self, node):
        assert len(node.search("Nodename=CHAPTER")) == 2

    def test_unknown_nodename_empty(self, node):
        assert len(node.search("Nodename=nonexistent")) == 0

    def test_nodename_of_context_element(self, node):
        # The canonical converters store headings as <context> elements.
        matches = node.search("Nodename=context&Doc=a.md")
        assert {match.content for match in matches} == {"Budget", "Other"}

    def test_round_trip_format(self):
        query = parse_query("Nodename=chapter&limit=2")
        assert parse_query(format_query(query)) == query

    def test_empty_nodename_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Nodename=%20")


class TestDocAndFormatFilters:
    def test_doc_filter_substring(self, node):
        matches = node.search("Context=Budget&Doc=a.md")
        assert [match.file_name for match in matches] == ["a.md"]
        matches = node.search("Context=Budget&Doc=.csv")
        assert [match.file_name for match in matches] == ["b.csv"]

    def test_format_filter(self, node):
        matches = node.search("Context=Budget&Format=spreadsheet")
        assert [match.file_name for match in matches] == ["b.csv"]
        matches = node.search("Context=Budget&Format=markdown")
        assert [match.file_name for match in matches] == ["a.md"]

    def test_filters_compose(self, node):
        assert len(node.search("Context=Budget&Doc=a.md&Format=spreadsheet")) == 0

    def test_filters_round_trip(self):
        query = parse_query("Context=X&Doc=a&Format=pdf")
        assert parse_query(format_query(query)) == query


class TestRevisions:
    def test_replace_text_increments_revision(self):
        node = Netmark("rev")
        node.store.store_text("# A\nversion one\n", "doc.md")
        result = node.store.replace_text("# A\nversion two\n", "doc.md")
        entry = node.store.describe(result.doc_id)
        assert entry.metadata["revision"] == "2"
        assert len(node.store) == 1
        [match] = node.search("Context=A")
        assert match.content == "version two"

    def test_replace_without_prior_is_plain_store(self):
        node = Netmark("rev")
        result = node.store.replace_text("# A\nfirst\n", "doc.md")
        assert node.store.describe(result.doc_id).metadata["revision"] == "1"

    def test_old_revision_unsearchable(self):
        node = Netmark("rev")
        node.store.store_text("# A\nuniqueoldterm\n", "doc.md")
        node.store.replace_text("# A\nnew text\n", "doc.md")
        assert len(node.search("Content=uniqueoldterm")) == 0
