"""XSLT-lite processor: templates, instructions, composition."""

import pytest

from repro.errors import XsltError
from repro.sgml.parser import parse_xml
from repro.sgml.serializer import serialize
from repro.xslt import compile_stylesheet, parse_pattern, transform, transform_text


def run(xsl_body: str, source: str) -> str:
    stylesheet = f"<xsl:stylesheet>{xsl_body}</xsl:stylesheet>"
    return transform_text(stylesheet, source)


class TestTemplates:
    def test_root_template(self):
        out = run(
            '<xsl:template match="/"><out/></xsl:template>', "<a><b/></a>"
        )
        assert out == "<out/>"

    def test_element_template_and_builtins(self):
        out = run(
            '<xsl:template match="b"><hit/></xsl:template>',
            "<a><b/><c><b/></c></a>",
        )
        # Built-in rules walk through a and c; both b's hit.
        assert out.count("<hit/>") == 2

    def test_builtin_text_copy(self):
        out = run("", "<a>plain</a>")
        assert "plain" in out

    def test_specific_beats_wildcard(self):
        out = run(
            '<xsl:template match="*"><any/></xsl:template>'
            '<xsl:template match="b"><b-hit/></xsl:template>',
            "<b/>",
        )
        assert out == "<b-hit/>"

    def test_later_template_wins_ties(self):
        out = run(
            '<xsl:template match="b"><first/></xsl:template>'
            '<xsl:template match="b"><second/></xsl:template>',
            "<b/>",
        )
        assert out == "<second/>"

    def test_path_pattern_more_specific(self):
        out = run(
            '<xsl:template match="b"><plain/></xsl:template>'
            '<xsl:template match="a/b"><nested/></xsl:template>',
            "<a><b/></a>",
        )
        assert out == "<nested/>"

    def test_pattern_matching_ancestors(self):
        pattern = parse_pattern("x/y")
        document = parse_xml("<x><y/></x>")
        assert pattern.matches(document.find("y"))
        other = parse_xml("<z><y/></z>")
        assert not pattern.matches(other.find("y"))


class TestInstructions:
    SRC = (
        '<doc><item n="1">alpha</item><item n="2">beta</item>'
        "<flag>yes</flag></doc>"
    )

    def test_value_of(self):
        out = run(
            '<xsl:template match="/">'
            '<v><xsl:value-of select="doc/item[2]"/></v></xsl:template>',
            self.SRC,
        )
        assert out == "<v>beta</v>"

    def test_for_each(self):
        out = run(
            '<xsl:template match="/">'
            '<list><xsl:for-each select="doc/item">'
            '<li><xsl:value-of select="@n"/></li>'
            "</xsl:for-each></list></xsl:template>",
            self.SRC,
        )
        assert out == "<list><li>1</li><li>2</li></list>"

    def test_apply_templates_with_select(self):
        out = run(
            '<xsl:template match="/">'
            '<r><xsl:apply-templates select="doc/item"/></r></xsl:template>'
            '<xsl:template match="item"><i/></xsl:template>',
            self.SRC,
        )
        assert out == "<r><i/><i/></r>"

    def test_if(self):
        out = run(
            '<xsl:template match="/">'
            '<xsl:if test="doc/flag = \'yes\'"><shown/></xsl:if>'
            '<xsl:if test="doc/flag = \'no\'"><hidden/></xsl:if>'
            "</xsl:template>",
            self.SRC,
        )
        assert "shown" in out and "hidden" not in out

    def test_choose(self):
        out = run(
            '<xsl:template match="/"><xsl:choose>'
            '<xsl:when test="doc/missing"><a/></xsl:when>'
            '<xsl:when test="doc/flag"><b/></xsl:when>'
            "<xsl:otherwise><c/></xsl:otherwise>"
            "</xsl:choose></xsl:template>",
            self.SRC,
        )
        assert out == "<b/>"

    def test_choose_otherwise(self):
        out = run(
            '<xsl:template match="/"><xsl:choose>'
            '<xsl:when test="doc/missing"><a/></xsl:when>'
            "<xsl:otherwise><c/></xsl:otherwise>"
            "</xsl:choose></xsl:template>",
            self.SRC,
        )
        assert out == "<c/>"

    def test_copy_of(self):
        out = run(
            '<xsl:template match="/">'
            '<wrap><xsl:copy-of select="doc/item"/></wrap></xsl:template>',
            self.SRC,
        )
        assert out == '<wrap><item n="1">alpha</item><item n="2">beta</item></wrap>'

    def test_attribute_value_template(self):
        out = run(
            '<xsl:template match="/">'
            '<o total="{count(doc/item)}" first="{doc/item/@n}"/>'
            "</xsl:template>",
            self.SRC,
        )
        assert out == '<o total="2" first="1"/>'

    def test_xsl_attribute(self):
        out = run(
            '<xsl:template match="/"><o>'
            '<xsl:attribute name="k"><xsl:value-of select="doc/flag"/>'
            "</xsl:attribute></o></xsl:template>",
            self.SRC,
        )
        assert out == '<o k="yes"/>'

    def test_xsl_element_with_avt_name(self):
        out = run(
            '<xsl:template match="/">'
            '<xsl:element name="tag-{doc/item/@n}">x</xsl:element>'
            "</xsl:template>",
            self.SRC,
        )
        assert out == "<tag-1>x</tag-1>"

    def test_xsl_text(self):
        out = run(
            '<xsl:template match="/"><o><xsl:text>  kept  </xsl:text></o>'
            "</xsl:template>",
            self.SRC,
        )
        assert out == "<o>  kept  </o>"

    def test_sort_ascending_descending(self):
        source = "<d><i>b</i><i>c</i><i>a</i></d>"
        out = run(
            '<xsl:template match="/"><o><xsl:for-each select="d/i">'
            '<xsl:sort select="."/><v><xsl:value-of select="."/></v>'
            "</xsl:for-each></o></xsl:template>",
            source,
        )
        assert out == "<o><v>a</v><v>b</v><v>c</v></o>"
        out = run(
            '<xsl:template match="/"><o><xsl:for-each select="d/i">'
            '<xsl:sort select="." order="descending"/>'
            '<v><xsl:value-of select="."/></v>'
            "</xsl:for-each></o></xsl:template>",
            source,
        )
        assert out == "<o><v>c</v><v>b</v><v>a</v></o>"

    def test_sort_numeric(self):
        source = "<d><i>10</i><i>9</i><i>100</i></d>"
        out = run(
            '<xsl:template match="/"><o><xsl:for-each select="d/i">'
            '<xsl:sort select="." data-type="number"/>'
            '<v><xsl:value-of select="."/></v>'
            "</xsl:for-each></o></xsl:template>",
            source,
        )
        assert out == "<o><v>9</v><v>10</v><v>100</v></o>"


class TestCompileErrors:
    def test_bad_root(self):
        with pytest.raises(XsltError):
            compile_stylesheet("<not-a-stylesheet/>")

    def test_template_without_match(self):
        with pytest.raises(XsltError):
            compile_stylesheet(
                "<xsl:stylesheet><xsl:template><x/></xsl:template>"
                "</xsl:stylesheet>"
            )

    def test_unknown_instruction(self):
        with pytest.raises(XsltError):
            compile_stylesheet(
                '<xsl:stylesheet><xsl:template match="/">'
                "<xsl:frobnicate/></xsl:template></xsl:stylesheet>"
            )

    def test_value_of_requires_select(self):
        with pytest.raises(XsltError):
            compile_stylesheet(
                '<xsl:stylesheet><xsl:template match="/">'
                "<xsl:value-of/></xsl:template></xsl:stylesheet>"
            )

    def test_bad_xpath_fails_at_compile_time(self):
        with pytest.raises(XsltError):
            compile_stylesheet(
                '<xsl:stylesheet><xsl:template match="/">'
                '<xsl:value-of select="$$$"/></xsl:template></xsl:stylesheet>'
            )

    def test_bad_pattern(self):
        with pytest.raises(XsltError):
            parse_pattern("a[@x]")

    def test_unterminated_avt(self):
        with pytest.raises(XsltError):
            run('<xsl:template match="/"><o k="{unclosed"/></xsl:template>',
                "<a/>")


class TestComposition:
    def test_fig7_style_report(self):
        """The paper's flow: query results -> XSLT -> new document."""
        results = parse_xml(
            '<results query="Context=Budget">'
            '<result doc="b.ndoc"><context>Budget</context>'
            "<content>We request funds</content></result>"
            '<result doc="a.npdf"><context>Cost Details</context>'
            "<content>Totals</content></result></results>"
        )
        stylesheet = compile_stylesheet(
            "<xsl:stylesheet>"
            '<xsl:template match="/">'
            '<report for="{results/@query}">'
            '<xsl:apply-templates select="results/result">'
            '<xsl:sort select="@doc"/></xsl:apply-templates>'
            "</report></xsl:template>"
            '<xsl:template match="result">'
            '<chapter title="{context}">'
            '<xsl:value-of select="content"/></chapter></xsl:template>'
            "</xsl:stylesheet>"
        )
        output = transform(stylesheet, results)
        text = serialize(output)
        assert text == (
            '<report for="Context=Budget">'
            '<chapter title="Cost Details">Totals</chapter>'
            '<chapter title="Budget">We request funds</chapter></report>'
        )

    def test_multiple_top_fragments_wrapped(self):
        out = run(
            '<xsl:template match="/"><a/><b/></xsl:template>', "<x/>"
        )
        assert out == "<output><a/><b/></output>"
