"""XPath subset: paths, predicates, functions, comparisons."""

import pytest

from repro.errors import XPathError
from repro.sgml.parser import parse_xml
from repro.xslt.xpath import XPathContext, evaluate, parse_xpath, select, to_string

DOC = parse_xml(
    """<catalog count="3">
      <book id="1" lang="en"><title>Alpha</title><price>10</price></book>
      <book id="2"><title>Beta</title><price>20</price></book>
      <book id="3" lang="fr"><title>Gamma</title><price>30</price></book>
      <note>standalone</note>
    </catalog>"""
)


def ctx(node=None):
    return XPathContext(node or DOC.root, root=DOC.root)


def titles(items):
    return [item.text_content() for item in items]


class TestPaths:
    def test_child_path(self):
        assert titles(select("book/title", ctx())) == ["Alpha", "Beta", "Gamma"]

    def test_absolute_path(self):
        assert titles(select("/catalog/book/title", ctx())) == [
            "Alpha", "Beta", "Gamma",
        ]

    def test_descendant_path(self):
        assert titles(select("//title", ctx())) == ["Alpha", "Beta", "Gamma"]

    def test_wildcard(self):
        assert len(select("book/*", ctx())) == 6

    def test_attribute_axis(self):
        assert select("@count", ctx()) == ["3"]
        assert select("book/@id", ctx()) == ["1", "2", "3"]

    def test_missing_attribute_empty(self):
        assert select("@missing", ctx()) == []

    def test_text_node_test(self):
        note = DOC.find("note")
        assert select("text()", ctx(note))[0].data == "standalone"

    def test_self_and_parent(self):
        book = DOC.find("book")
        assert select(".", ctx(book)) == [book]
        assert select("..", ctx(book)) == [DOC.root]

    def test_root_only_path(self):
        assert select("/", ctx())[0].__class__.__name__ == "_DocumentAnchor"


class TestPredicates:
    def test_positional(self):
        assert titles(select("book[2]/title", ctx())) == ["Beta"]

    def test_last(self):
        assert titles(select("book[last()]/title", ctx())) == ["Gamma"]

    def test_attribute_equality(self):
        assert titles(select("book[@lang='en']/title", ctx())) == ["Alpha"]

    def test_attribute_existence(self):
        assert titles(select("book[@lang]/title", ctx())) == ["Alpha", "Gamma"]

    def test_child_value_equality(self):
        assert select("book[title='Beta']/@id", ctx()) == ["2"]

    def test_child_existence(self):
        assert len(select("book[price]", ctx())) == 3

    def test_chained_predicates(self):
        assert titles(select("book[@lang][1]/title", ctx())) == ["Alpha"]

    def test_position_function_in_predicate(self):
        assert titles(select("book[position()=3]/title", ctx())) == ["Gamma"]


class TestFunctions:
    def test_count(self):
        assert evaluate(parse_xpath("count(book)"), ctx()) == 3.0

    def test_concat(self):
        result = evaluate(parse_xpath("concat('a', 'b', @count)"), ctx())
        assert result == "ab3"

    def test_name(self):
        assert evaluate(parse_xpath("name()"), ctx()) == "catalog"

    def test_string_of_path(self):
        assert evaluate(parse_xpath("string(note)"), ctx()) == "standalone"

    def test_normalize_space(self):
        document = parse_xml("<a>  x   y  </a>")
        context = XPathContext(document.root, root=document.root)
        assert evaluate(parse_xpath("normalize-space(.)"), context) == "x y"

    def test_contains(self):
        assert evaluate(parse_xpath("contains(note, 'alone')"), ctx()) is True
        assert evaluate(parse_xpath("contains(note, 'xyz')"), ctx()) is False

    def test_not_true_false(self):
        assert evaluate(parse_xpath("not(false())"), ctx()) is True
        assert evaluate(parse_xpath("not(book)"), ctx()) is False

    def test_wrong_arity_rejected(self):
        with pytest.raises(XPathError):
            evaluate(parse_xpath("count(book, note)"), ctx())

    def test_unknown_function_rejected(self):
        with pytest.raises(XPathError):
            parse_xpath("substring-before(a, b)")


class TestComparisons:
    def test_nodeset_vs_literal_is_existential(self):
        assert evaluate(parse_xpath("book/title = 'Beta'"), ctx()) is True
        assert evaluate(parse_xpath("book/title = 'Delta'"), ctx()) is False

    def test_not_equal(self):
        assert evaluate(parse_xpath("@count != '4'"), ctx()) is True

    def test_numeric_comparison(self):
        assert evaluate(parse_xpath("count(book) = 3"), ctx()) is True

    def test_boolean_connectives(self):
        expr = "book and note"
        assert evaluate(parse_xpath(expr), ctx()) is True
        assert evaluate(parse_xpath("book and missing"), ctx()) is False
        assert evaluate(parse_xpath("missing or note"), ctx()) is True


class TestErrorsAndStrings:
    def test_garbage_rejected(self):
        with pytest.raises(XPathError):
            parse_xpath("book//[2]")
        with pytest.raises(XPathError):
            parse_xpath("$$$")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(XPathError):
            parse_xpath("book title")

    def test_select_rejects_scalar_expr(self):
        with pytest.raises(XPathError):
            select("count(book)", ctx())

    def test_to_string_of_nodeset(self):
        assert to_string(select("book/title", ctx())) == "Alpha"
        assert to_string([]) == ""
        assert to_string(2.0) == "2"
        assert to_string(2.5) == "2.5"
