"""ROWID encoding, ordering and validation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RowIdError
from repro.ordbms.rowid import RowId


class TestEncoding:
    def test_str_form(self):
        assert str(RowId(0, 12, 3)) == "F0.B12.S3"

    def test_encode_matches_str(self):
        rowid = RowId(1, 2, 3)
        assert rowid.encode() == str(rowid)

    def test_decode_round_trip(self):
        rowid = RowId(4, 5, 6)
        assert RowId.decode(rowid.encode()) == rowid

    @pytest.mark.parametrize(
        "text", ["", "F1.B2", "f1.b2.s3", "F1,B2,S3", "F-1.B2.S3", "rubbish"]
    )
    def test_decode_rejects_malformed(self, text):
        with pytest.raises(RowIdError):
            RowId.decode(text)

    @given(st.integers(0, 10**6), st.integers(0, 10**6), st.integers(0, 10**6))
    def test_round_trip_property(self, file_no, block_no, slot_no):
        rowid = RowId(file_no, block_no, slot_no)
        assert RowId.decode(rowid.encode()) == rowid


class TestOrderingAndValidity:
    def test_total_order_is_physical(self):
        assert RowId(0, 0, 5) < RowId(0, 1, 0) < RowId(1, 0, 0)

    def test_hashable_and_equal(self):
        assert RowId(1, 1, 1) == RowId(1, 1, 1)
        assert len({RowId(1, 1, 1), RowId(1, 1, 1)}) == 1

    def test_is_valid(self):
        assert RowId(0, 0, 0).is_valid
        assert not RowId(-1, 0, 0).is_valid
