"""Crash recovery: replay, losers, checkpoints, and the crash matrix."""

import pytest

from repro.errors import RecoveryError, TransactionError, WalError
from repro.ordbms import (
    Column,
    Database,
    INTEGER,
    MemoryLogDevice,
    TableSchema,
    VARCHAR,
    recover,
)
from repro.ordbms.snapshot import dump_database
from repro.ordbms.wal import WalRecord, WriteAheadLog


def durable_database(device=None) -> Database:
    database = Database("durable")
    database.create_table(
        TableSchema(
            "T",
            (Column("ID", INTEGER, nullable=False), Column("V", VARCHAR)),
            primary_key="ID",
        )
    )
    database.enable_wal(device if device is not None else MemoryLogDevice())
    return database


def crash_and_recover(database: Database) -> Database:
    """Abandon the live object, recover a fresh one from its device."""
    return recover(database.wal.device).database


class TestBasicRecovery:
    def test_autocommit_rows_survive(self):
        database = durable_database()
        rowid = database.insert("T", {"ID": 1, "V": "tab\there"})
        recovered = crash_and_recover(database)
        assert recovered.fetch("T", rowid) == {
            "ID": 1, "V": "tab\there", "ROWID_": rowid,
        }
        assert dump_database(recovered) == dump_database(database)

    def test_committed_transaction_survives(self):
        database = durable_database()
        with database.begin():
            database.insert("T", {"ID": 1})
            database.insert("T", {"ID": 2})
        recovered = crash_and_recover(database)
        assert len(recovered.table("T")) == 2

    def test_uncommitted_transaction_is_discarded(self):
        database = durable_database()
        database.begin()
        database.insert("T", {"ID": 1})
        # No commit: the process "dies" here.  Recovery must land on
        # exactly the state a live rollback would have produced (the
        # undone insert leaves the same tombstone either way).
        twin = durable_database()
        twin_transaction = twin.begin()
        twin.insert("T", {"ID": 1})
        twin_transaction.rollback()
        recovered = crash_and_recover(database)
        assert len(recovered.table("T")) == 0
        assert dump_database(recovered) == dump_database(twin)

    def test_loser_reported_in_result(self):
        database = durable_database()
        database.begin()
        database.insert("T", {"ID": 1})
        result = recover(database.wal.device)
        assert result.losers_discarded == (1,)
        assert result.transactions_committed == 0

    def test_rolled_back_transaction_leaves_no_rows(self):
        database = durable_database()
        transaction = database.begin()
        database.insert("T", {"ID": 1})
        transaction.rollback()
        recovered = crash_and_recover(database)
        assert len(recovered.table("T")) == 0

    def test_update_delete_replay(self):
        database = durable_database()
        rowid = database.insert("T", {"ID": 1, "V": "old"})
        victim = database.insert("T", {"ID": 2})
        database.update("T", rowid, {"V": "new"})
        database.delete("T", victim)
        recovered = crash_and_recover(database)
        assert recovered.fetch("T", rowid)["V"] == "new"
        assert not recovered.table("T").exists(victim)


class TestRowIdStability:
    def test_slots_match_after_interleaved_rollback(self):
        """Rolled-back inserts still consume slots during replay."""
        database = durable_database()
        transaction = database.begin()
        database.insert("T", {"ID": 1})
        transaction.rollback()
        survivor = database.insert("T", {"ID": 2})
        recovered = crash_and_recover(database)
        assert recovered.fetch("T", survivor)["ID"] == 2

    def test_savepoint_truncate_replay(self):
        database = durable_database()
        with database.begin() as transaction:
            database.insert("T", {"ID": 1})
            transaction.savepoint("mark")
            database.insert("T", {"ID": 2})
            transaction.rollback_to("mark")
            database.insert("T", {"ID": 3})
        recovered = crash_and_recover(database)
        ids = sorted(row["ID"] for row in recovered.table("T").scan())
        assert ids == [1, 3]
        assert dump_database(recovered) == dump_database(database)

    def test_new_writes_after_recovery_do_not_collide(self):
        database = durable_database()
        first = database.insert("T", {"ID": 1})
        recovered = crash_and_recover(database)
        second = recovered.insert("T", {"ID": 2})
        assert second != first
        twice = crash_and_recover(recovered)
        assert sorted(row["ID"] for row in twice.table("T").scan()) == [1, 2]


class TestCheckpoints:
    def test_recovery_from_checkpoint_plus_log(self):
        database = durable_database()
        database.insert("T", {"ID": 1})
        database.checkpoint()
        database.insert("T", {"ID": 2})
        result = recover(database.wal.device)
        assert result.checkpoint_lsn > 0
        ids = sorted(row["ID"] for row in result.database.table("T").scan())
        assert ids == [1, 2]

    def test_crash_between_save_and_truncate_is_idempotent(self):
        """Records at or below the checkpoint LSN are skipped on replay."""
        database = durable_database()
        database.insert("T", {"ID": 1})
        device = database.wal.device
        from repro.ordbms.wal import encode_checkpoint

        # Simulate: checkpoint saved, crash before the log was truncated.
        device.save_checkpoint(
            encode_checkpoint(database.wal.next_lsn - 1, dump_database(database))
        )
        recovered = recover(device).database
        assert len(recovered.table("T")) == 1  # not doubled

    def test_checkpoint_inside_transaction_rejected(self):
        database = durable_database()
        database.begin()
        with pytest.raises(TransactionError):
            database.checkpoint()

    def test_checkpoint_without_wal_rejected(self):
        with pytest.raises(WalError):
            Database("plain").checkpoint()

    def test_double_attach_rejected(self):
        database = durable_database()
        with pytest.raises(WalError):
            database.enable_wal(MemoryLogDevice())


class TestTornTail:
    def test_torn_tail_is_trimmed_and_log_stays_appendable(self):
        database = durable_database()
        database.insert("T", {"ID": 1})
        device = database.wal.device
        device.append("2 COMMIT 99|deadbeef")  # torn: bad CRC, no newline
        result = recover(device)
        assert result.torn_tail is not None
        # The trim must be physical: appending new records after it and
        # recovering again must parse cleanly.
        result.database.insert("T", {"ID": 2})
        second = recover(device)
        assert second.torn_tail is None
        ids = sorted(row["ID"] for row in second.database.table("T").scan())
        assert ids == [1, 2]

    def test_preimage_divergence_refused(self):
        database = durable_database()
        rowid = database.insert("T", {"ID": 1, "V": "real"})
        device = database.wal.device
        wal = WriteAheadLog(device, start_lsn=database.wal.next_lsn)
        wal.log_update(
            0, "T", rowid, before=(1, "imposter"), after=(1, "other")
        )
        with pytest.raises(RecoveryError):
            recover(device)

    def test_unknown_table_refused(self):
        device = MemoryLogDevice()
        database = durable_database(device)
        wal = WriteAheadLog(device, start_lsn=database.wal.next_lsn)
        from repro.ordbms import RowId

        wal.log_insert(0, "GHOST", RowId(0, 0, 0), (1,))
        with pytest.raises(RecoveryError):
            recover(device)


def live_rows(database: Database) -> list[tuple]:
    """Canonical live-row state: (rowid, columns) of every live row.

    Tombstones are physical residue — a loser undone by recovery leaves
    the same dead slots a live rollback would, but *which* slots depends
    on where the crash fell — so atomicity is asserted on the rows a
    query can see, ROWIDs included.
    """
    return sorted(
        (row["ROWID_"], row["ID"], row["V"])
        for row in database.table("T").scan()
    )


class TestCrashMatrixProperty:
    def test_every_crash_point_recovers_to_a_boundary(self):
        """The tentpole property: at every append the process could die,
        recovery lands on the pre- or post-transaction state, never
        between, and ROWIDs are preserved exactly."""
        from repro.resilience import crash_matrix

        boundary_states: list[list[tuple]] = []

        def run(device):
            database = Database("durable")
            database.create_table(
                TableSchema(
                    "T",
                    (
                        Column("ID", INTEGER, nullable=False),
                        Column("V", VARCHAR),
                    ),
                    primary_key="ID",
                )
            )
            database.enable_wal(device)
            boundary_states.append(live_rows(database))
            with database.begin():
                database.insert("T", {"ID": 1, "V": "first"})
                database.insert("T", {"ID": 2, "V": "second"})
            boundary_states.append(live_rows(database))
            rowid = database.insert("T", {"ID": 3, "V": "third"})
            boundary_states.append(live_rows(database))
            database.update("T", rowid, {"V": "patched"})
            boundary_states.append(live_rows(database))

        matrix = crash_matrix(MemoryLogDevice, run)
        assert matrix.total_appends > 0
        for point in matrix.points:
            assert point.crashed, f"point {point.index}/{point.kind} ran clean"
            recovered = recover(point.device).database
            state = live_rows(recovered)
            assert state in boundary_states, (
                f"crash at append {point.index} ({point.kind}) recovered "
                f"to a state between transaction boundaries"
            )

    def test_uncrashed_matrix_baseline_recovers_byte_identical(self):
        """Recovery of an *intact* log is an exact no-op replay."""
        from repro.resilience import crash_matrix

        dumps: list[str] = []

        def run(device):
            database = Database("durable")
            database.create_table(
                TableSchema(
                    "T",
                    (
                        Column("ID", INTEGER, nullable=False),
                        Column("V", VARCHAR),
                    ),
                    primary_key="ID",
                )
            )
            database.enable_wal(device)
            with database.begin():
                database.insert("T", {"ID": 1, "V": "first"})
            database.insert("T", {"ID": 2, "V": "second"})
            dumps.append(dump_database(database))

        matrix = crash_matrix(MemoryLogDevice, run, kinds=())
        recovered = recover(matrix.baseline.target).database
        assert dump_database(recovered) == dumps[0]

    def test_no_crash_run_matches_in_memory_run(self):
        """With zero faults, the durable database behaves byte-identically
        to a WAL-free one."""

        def workload(database: Database) -> None:
            with database.begin():
                database.insert("T", {"ID": 1, "V": "a"})
            rowid = database.insert("T", {"ID": 2, "V": "b"})
            database.update("T", rowid, {"V": "b2"})
            transaction = database.begin()
            database.insert("T", {"ID": 3})
            transaction.rollback()

        def plain() -> Database:
            database = Database("durable")
            database.create_table(
                TableSchema(
                    "T",
                    (
                        Column("ID", INTEGER, nullable=False),
                        Column("V", VARCHAR),
                    ),
                    primary_key="ID",
                )
            )
            return database

        in_memory = plain()
        workload(in_memory)
        durable = plain()
        durable.enable_wal(MemoryLogDevice())
        workload(durable)
        assert dump_database(durable) == dump_database(in_memory)
        recovered = recover(durable.wal.device).database
        assert dump_database(recovered) == dump_database(in_memory)
