"""Database snapshots: exact restoration including physical ROWIDs."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatabaseError
from repro.ordbms import (
    CLOB,
    Column,
    Database,
    INTEGER,
    RowId,
    TIMESTAMP,
    TableSchema,
    VARCHAR,
)
from repro.ordbms.snapshot import (
    _decode_value,
    _encode_value,
    dump_database,
    load_database,
)


def build_sample() -> tuple[Database, list[RowId]]:
    database = Database("sample")
    table = database.create_table(
        TableSchema(
            "T",
            (
                Column("ID", INTEGER, nullable=False),
                Column("NAME", VARCHAR),
                Column("NOTE", CLOB),
                Column("WHEN_", TIMESTAMP),
            ),
            primary_key="ID",
            unique=("NAME",),
        )
    )
    table.create_index("NOTE")
    table.create_text_index("NOTE")
    rowids = []
    for index in range(5):
        rowids.append(
            database.insert(
                "T",
                {
                    "ID": index,
                    "NAME": f"name{index}",
                    "NOTE": f"some note text {index}",
                    "WHEN_": dt.datetime(2005, 6, 14, index),
                },
            )
        )
    database.delete("T", rowids[2])  # leave a tombstone in the middle
    return database, rowids


class TestValueCoding:
    @pytest.mark.parametrize(
        "value",
        [None, 0, -17, 3.5, "", "plain", "tab\there\nnewline\\slash",
         dt.datetime(2005, 6, 14, 12, 30), RowId(1, 2, 3)],
    )
    def test_round_trip(self, value):
        assert _decode_value(_encode_value(value)) == value

    def test_bad_value_rejected(self):
        with pytest.raises(DatabaseError):
            _encode_value(object())
        with pytest.raises(DatabaseError):
            _encode_value(True)

    def test_bad_text_rejected(self):
        with pytest.raises(DatabaseError):
            _decode_value("x:nope")


class TestRoundTrip:
    def test_rows_and_rowids_identical(self):
        database, rowids = build_sample()
        restored = load_database(dump_database(database))
        table = restored.table("T")
        assert len(table) == 4
        for rowid in rowids:
            if rowid == rowids[2]:
                assert not table.exists(rowid)  # tombstone preserved
            else:
                original = database.table("T").fetch(rowid)
                copy = table.fetch(rowid)
                assert copy == original

    def test_new_inserts_do_not_reuse_slots(self):
        database, rowids = build_sample()
        restored = load_database(dump_database(database))
        new_rowid = restored.insert("T", {"ID": 99, "NAME": "new"})
        assert new_rowid not in rowids  # appended after the restored slots

    def test_schema_restored(self):
        database, _ = build_sample()
        restored = load_database(dump_database(database))
        schema = restored.table("T").schema
        assert schema.primary_key == "ID"
        assert schema.unique == ("NAME",)
        assert schema.column("WHEN_").dtype.name == "TIMESTAMP"

    def test_indexes_rebuilt_and_enforced(self):
        database, _ = build_sample()
        restored = load_database(dump_database(database))
        table = restored.table("T")
        assert table.index_on("NOTE") is not None
        assert table.text_index_on("NOTE") is not None
        assert [row["ID"] for row in table.lookup("NAME", "name1")] == [1]
        from repro.errors import ConstraintError

        with pytest.raises(ConstraintError):
            restored.insert("T", {"ID": 100, "NAME": "name1"})

    def test_text_index_rebuilt(self):
        database, _ = build_sample()
        restored = load_database(dump_database(database))
        index = restored.table("T").text_index_on("NOTE")
        assert len(index.lookup("note")) == 4

    def test_double_round_trip_stable(self):
        database, _ = build_sample()
        once = dump_database(database)
        twice = dump_database(load_database(once))
        assert once == twice

    def test_bad_magic_rejected(self):
        with pytest.raises(DatabaseError):
            load_database("not a snapshot")

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 10**6),
                st.text(max_size=25) | st.none(),
            ),
            max_size=80,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, rows):
        database = Database()
        database.create_table(
            TableSchema(
                "P",
                (Column("K", INTEGER, nullable=False), Column("V", VARCHAR)),
                primary_key="K",
            )
        )
        for key, value in rows:
            database.insert("P", {"K": key, "V": value})
        restored = load_database(dump_database(database))
        original_rows = sorted(
            (row["K"], row["V"]) for row in database.table("P").scan()
        )
        restored_rows = sorted(
            (row["K"], row["V"]) for row in restored.table("P").scan()
        )
        assert original_rows == restored_rows


class TestXmlStoreRestore:
    def test_store_round_trip_with_queries(self):
        from repro.query import QueryEngine
        from repro.sgml.serializer import serialize
        from repro.store import XmlStore

        store = XmlStore()
        store.store_text("# Budget\ntravel dollars\n", "a.md")
        store.store_text("%NPDF-1.0\n[F14] Cost\n[F10] shuttle body\n", "b.npdf")
        snapshot = store.dump()

        restored = XmlStore.restore(snapshot)
        assert len(restored) == 2
        # Documents reconstruct identically.
        for doc_id in (1, 2):
            assert serialize(restored.document(doc_id)) == serialize(
                store.document(doc_id)
            )
        # Queries work (text index was rebuilt).
        engine = QueryEngine(restored)
        assert len(engine.execute("Context=Budget")) == 1
        assert len(engine.execute("Content=shuttle")) == 1

    def test_id_allocators_resume(self):
        from repro.store import XmlStore

        store = XmlStore()
        store.store_text("# A\nx\n", "a.md")
        restored = XmlStore.restore(store.dump())
        result = restored.store_text("# B\ny\n", "b.md")
        assert result.doc_id == 2
        node_ids = [row["NODEID"] for row in restored.xml_table.scan()]
        assert len(node_ids) == len(set(node_ids))  # no collisions


class TestValueCodecProperties:
    """The snapshot/WAL value dialect round-trips every storable value.

    Recovery promises byte-identical restored state only because snapshots
    and WAL row images speak exactly this dialect, so these properties are
    load-bearing for the durability layer.
    """

    storable = st.one_of(
        st.none(),
        st.integers(),
        st.floats(allow_nan=False),
        st.text(),  # any codepoint: NULs, newlines, '|', unicode spaces
        st.datetimes(
            min_value=dt.datetime(1970, 1, 1),
            max_value=dt.datetime(2100, 1, 1),
        ),
        st.builds(
            RowId,
            st.integers(0, 2**16),
            st.integers(0, 2**16),
            st.integers(0, 2**16),
        ),
    )

    @given(storable)
    @settings(max_examples=200, deadline=None)
    def test_value_round_trip(self, value):
        from repro.ordbms.valuecodec import decode_value, encode_value

        assert decode_value(encode_value(value)) == value

    @given(st.lists(storable, max_size=8).map(tuple))
    @settings(max_examples=200, deadline=None)
    def test_packed_row_round_trips_as_one_clean_token(self, values):
        from repro.ordbms.valuecodec import pack_row, unpack_row

        token = pack_row(values)
        # The WAL line format separates fields on single spaces and
        # records on newlines; a row image must never contain either.
        assert " " not in token and "\n" not in token
        assert "\t" not in token and "\r" not in token
        assert unpack_row(token) == values

    @given(st.text())
    @settings(max_examples=200, deadline=None)
    def test_escape_round_trip(self, text):
        from repro.ordbms.valuecodec import escape, unescape

        assert unescape(escape(text)) == text
        assert "\t" not in escape(text) and "\n" not in escape(text)


class TestTombstoneStability:
    @given(
        st.lists(st.integers(0, 19), max_size=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_dump_load_preserves_live_and_dead_slots(self, deletions):
        """Any delete pattern: dump/load keeps every surviving ROWID at
        its slot and every tombstone dead, byte-stably."""
        database = Database()
        database.create_table(
            TableSchema(
                "P",
                (Column("K", INTEGER, nullable=False), Column("V", VARCHAR)),
                primary_key="K",
            )
        )
        rowids = [
            database.insert("P", {"K": key, "V": f"v{key}"})
            for key in range(20)
        ]
        dead = set()
        for victim in deletions:
            if victim not in dead:
                database.delete("P", rowids[victim])
                dead.add(victim)
        restored = load_database(dump_database(database))
        table = restored.table("P")
        for index, rowid in enumerate(rowids):
            if index in dead:
                assert not table.exists(rowid)
            else:
                assert table.fetch(rowid)["K"] == index
        assert dump_database(restored) == dump_database(database)
