"""Inverted text index: tokenisation, term/phrase/prefix lookup, removal."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordbms.rowid import RowId
from repro.ordbms.textindex import STOPWORDS, TextIndex, tokenize


def rid(n: int) -> RowId:
    return RowId(0, 0, n)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Shuttle Engine") == ["shuttle", "engine"]

    def test_drops_stopwords_by_default(self):
        assert tokenize("the engine of the shuttle") == ["engine", "shuttle"]

    def test_keep_stopwords_preserves_positions(self):
        assert tokenize("the engine", keep_stopwords=True) == ["the", "engine"]

    def test_punctuation_is_boundary(self):
        assert tokenize("budget, travel; equipment.") == [
            "budget", "travel", "equipment",
        ]

    def test_numbers_and_apostrophes(self):
        assert tokenize("FY04 doesn't") == ["fy04", "doesn't"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   \n\t ") == []

    def test_stopword_list_is_lowercase(self):
        assert all(word == word.lower() for word in STOPWORDS)


@pytest.fixture
def index():
    idx = TextIndex("t")
    idx.add(rid(1), "The shuttle engine failed during ascent")
    idx.add(rid(2), "Budget review for the engine program")
    idx.add(rid(3), "Travel budget shrinking this year")
    return idx


class TestLookup:
    def test_single_term(self, index):
        assert index.lookup("engine") == {rid(1), rid(2)}

    def test_case_insensitive(self, index):
        assert index.lookup("ENGINE") == {rid(1), rid(2)}

    def test_missing_term(self, index):
        assert index.lookup("nozzle") == set()

    def test_lookup_all_conjunctive(self, index):
        assert index.lookup_all(["engine", "budget"]) == {rid(2)}
        assert index.lookup_all(["engine", "nozzle"]) == set()

    def test_lookup_any_disjunctive(self, index):
        assert index.lookup_any(["shuttle", "travel"]) == {rid(1), rid(3)}

    def test_lookup_all_empty_terms(self, index):
        assert index.lookup_all([]) == set()


class TestPhrase:
    def test_adjacent_phrase(self, index):
        assert index.lookup_phrase("shuttle engine") == {rid(1)}

    def test_phrase_requires_order(self, index):
        assert index.lookup_phrase("engine shuttle") == set()

    def test_phrase_across_stopwords(self, index):
        # "review for the engine": stopwords participate in positions.
        assert index.lookup_phrase("review for the engine") == {rid(2)}

    def test_single_word_phrase(self, index):
        assert index.lookup_phrase("budget") == {rid(2), rid(3)}

    def test_empty_phrase(self, index):
        assert index.lookup_phrase("") == set()

    def test_phrase_missing_word(self, index):
        assert index.lookup_phrase("shuttle nozzle") == set()


class TestPrefix:
    def test_prefix(self, index):
        assert index.lookup_prefix("shr") == {rid(3)}

    def test_prefix_matches_whole_word_too(self, index):
        assert index.lookup_prefix("budget") == {rid(2), rid(3)}


class TestMutation:
    def test_remove_makes_row_unfindable(self, index):
        index.remove(rid(1), "The shuttle engine failed during ascent")
        assert index.lookup("shuttle") == set()
        assert index.lookup("engine") == {rid(2)}
        assert len(index) == 2

    def test_add_empty_text_is_noop(self):
        idx = TextIndex()
        idx.add(rid(1), "")
        assert len(idx) == 0

    def test_term_count(self, index):
        assert index.term_count > 0
        before = index.term_count
        index.add(rid(9), "zzzuniqueterm")
        assert index.term_count == before + 1

    def test_doc_count_tracks_rows_not_terms(self):
        idx = TextIndex()
        idx.add(rid(1), "alpha beta gamma")
        assert len(idx) == 1


class TestProperties:
    @given(
        st.lists(
            st.text(
                alphabet=st.sampled_from("abc XYZ,."), min_size=0, max_size=40
            ),
            max_size=25,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_lookup_agrees_with_tokenize(self, texts):
        idx = TextIndex()
        for position, text in enumerate(texts):
            idx.add(rid(position), text)
        for position, text in enumerate(texts):
            for term in tokenize(text, keep_stopwords=True):
                assert rid(position) in idx.lookup(term)

    @given(
        st.lists(
            st.text(alphabet=st.sampled_from("ab c"), min_size=1, max_size=30),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_add_remove_round_trip(self, texts):
        idx = TextIndex()
        for position, text in enumerate(texts):
            idx.add(rid(position), text)
        for position, text in enumerate(texts):
            idx.remove(rid(position), text)
        assert len(idx) == 0
        assert idx.term_count == 0
