"""Plan operators: scans, joins, aggregation, sorting, limits."""

import pytest

from repro.errors import QueryPlanError
from repro.ordbms import (
    Aggregate,
    AggSpec,
    Col,
    Column,
    Distinct,
    Filter,
    HashJoin,
    INTEGER,
    IndexLookup,
    IndexRange,
    Limit,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    Table,
    TableSchema,
    TextSearch,
    UnionAll,
    VARCHAR,
    Values,
    execute,
)


@pytest.fixture
def employees():
    table = Table(
        TableSchema(
            "EMP",
            (
                Column("ID", INTEGER, nullable=False),
                Column("DEPT", VARCHAR),
                Column("SALARY", INTEGER),
                Column("BIO", VARCHAR),
            ),
            primary_key="ID",
        )
    )
    table.create_index("DEPT")
    table.create_text_index("BIO")
    data = [
        (1, "eng", 100, "works on shuttle engines"),
        (2, "eng", 120, "avionics and software"),
        (3, "sci", 90, "earth science payloads"),
        (4, "ops", 80, "launch operations"),
        (5, "sci", 95, None),
    ]
    for id_, dept, salary, bio in data:
        table.insert({"ID": id_, "DEPT": dept, "SALARY": salary, "BIO": bio})
    return table


class TestLeaves:
    def test_seqscan_all(self, employees):
        assert len(execute(SeqScan(employees))) == 5

    def test_seqscan_with_predicate(self, employees):
        rows = execute(SeqScan(employees, Col("SALARY") > 90))
        assert sorted(row["ID"] for row in rows) == [1, 2, 5]

    def test_index_lookup(self, employees):
        rows = execute(IndexLookup(employees, "DEPT", "sci"))
        assert sorted(row["ID"] for row in rows) == [3, 5]

    def test_index_lookup_requires_index(self, employees):
        with pytest.raises(QueryPlanError):
            execute(IndexLookup(employees, "SALARY", 100))

    def test_index_range(self, employees):
        employees.create_index("SALARY")
        rows = execute(IndexRange(employees, "SALARY", 90, 100))
        assert sorted(row["ID"] for row in rows) == [1, 3, 5]

    def test_text_search_all(self, employees):
        rows = execute(TextSearch(employees, "BIO", "shuttle engines"))
        assert [row["ID"] for row in rows] == [1]

    def test_text_search_phrase_vs_all(self, employees):
        assert execute(TextSearch(employees, "BIO", "engines shuttle", "all"))
        assert not execute(
            TextSearch(employees, "BIO", "engines shuttle", "phrase")
        )

    def test_text_search_bad_mode(self, employees):
        with pytest.raises(QueryPlanError):
            execute(TextSearch(employees, "BIO", "x", "fuzzy"))

    def test_values(self):
        rows = execute(Values([{"A": 1}, {"A": 2}]))
        assert rows == [{"A": 1}, {"A": 2}]


class TestUnary:
    def test_filter(self, employees):
        plan = Filter(SeqScan(employees), Col("DEPT") == "eng")
        assert len(execute(plan)) == 2

    def test_project_rename_and_compute(self, employees):
        plan = Project(
            SeqScan(employees, Col("ID") == 1),
            {"who": "ID", "double": lambda row: row["SALARY"] * 2},
        )
        assert execute(plan) == [{"WHO": 1, "DOUBLE": 200}]

    def test_sort_asc_desc(self, employees):
        ascending = execute(Sort(SeqScan(employees), "SALARY"))
        assert [row["ID"] for row in ascending] == [4, 3, 5, 1, 2]
        descending = execute(Sort(SeqScan(employees), "SALARY", descending=True))
        assert [row["ID"] for row in descending] == [2, 1, 5, 3, 4]

    def test_sort_nulls_last(self, employees):
        rows = execute(Sort(SeqScan(employees), "BIO"))
        assert rows[-1]["ID"] == 5

    def test_limit_and_offset(self, employees):
        plan = Limit(Sort(SeqScan(employees), "ID"), count=2, offset=1)
        assert [row["ID"] for row in execute(plan)] == [2, 3]

    def test_distinct(self):
        plan = Distinct(Values([{"A": 1}, {"A": 1}, {"A": 2}]))
        assert len(execute(plan)) == 2


class TestJoins:
    def test_hash_join(self, employees):
        departments = Values(
            [
                {"NAME": "eng", "BUILDING": "N239"},
                {"NAME": "sci", "BUILDING": "N245"},
            ]
        )
        plan = HashJoin(
            SeqScan(employees), departments, "DEPT", "NAME", "E", "D"
        )
        rows = execute(plan)
        assert len(rows) == 4  # ops has no department row
        sample = next(row for row in rows if row["E.ID"] == 1)
        assert sample["D.BUILDING"] == "N239"
        assert sample["BUILDING"] == "N239"  # unambiguous bare name

    def test_nested_loop_theta_join(self):
        left = Values([{"X": 1}, {"X": 5}])
        right = Values([{"Y": 3}])
        plan = NestedLoopJoin(left, right, Col("X") > Col("Y"))
        rows = execute(plan)
        assert len(rows) == 1
        assert rows[0]["L.X"] == 5

    def test_union_all(self):
        plan = UnionAll([Values([{"A": 1}]), Values([{"A": 1}, {"A": 2}])])
        assert len(execute(plan)) == 3


class TestAggregate:
    def test_global_aggregates(self, employees):
        plan = Aggregate(
            SeqScan(employees),
            (),
            (
                AggSpec("count", "*", "N"),
                AggSpec("sum", "SALARY", "TOTAL"),
                AggSpec("avg", "SALARY", "MEAN"),
                AggSpec("min", "SALARY", "LO"),
                AggSpec("max", "SALARY", "HI"),
            ),
        )
        [row] = execute(plan)
        assert row == {"N": 5, "TOTAL": 485, "MEAN": 97.0, "LO": 80, "HI": 120}

    def test_group_by(self, employees):
        plan = Aggregate(
            SeqScan(employees),
            ("DEPT",),
            (AggSpec("count", "*", "N"), AggSpec("sum", "SALARY", "TOTAL")),
        )
        rows = {row["DEPT"]: row for row in execute(plan)}
        assert rows["eng"]["N"] == 2 and rows["eng"]["TOTAL"] == 220
        assert rows["sci"]["N"] == 2 and rows["ops"]["N"] == 1

    def test_count_column_skips_nulls(self, employees):
        plan = Aggregate(SeqScan(employees), (), (AggSpec("count", "BIO", "N"),))
        assert execute(plan) == [{"N": 4}]

    def test_empty_input_global_aggregate(self):
        plan = Aggregate(Values([]), (), (AggSpec("count", "*", "N"),
                                          AggSpec("sum", "X", "S")))
        assert execute(plan) == [{"N": 0, "S": None}]

    def test_bad_aggregate_function(self):
        with pytest.raises(QueryPlanError):
            AggSpec("median", "X", "M")


class TestExplain:
    def test_explain_renders_tree(self, employees):
        plan = Limit(Filter(SeqScan(employees), Col("ID") == 1), 1)
        text = plan.explain()
        assert "Limit" in text and "Filter" in text and "SeqScan(EMP" in text
        assert text.index("Limit") < text.index("Filter")
