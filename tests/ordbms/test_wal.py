"""WAL record grammar, CRCs, torn-tail semantics and log devices."""

import pytest

from repro.errors import CorruptLogError, WalError
from repro.ordbms import RowId
from repro.ordbms.wal import (
    AUTOCOMMIT_TXID,
    BEGIN,
    CHECKPOINT,
    COMMIT,
    DELETE,
    FileLogDevice,
    INSERT,
    MemoryLogDevice,
    ROLLBACK,
    TRUNCATE,
    UPDATE,
    WalRecord,
    WriteAheadLog,
    decode_checkpoint,
    encode_checkpoint,
    highest_txid,
    parse_log,
)

ROWID = RowId(0, 0, 0)


def sample_records() -> list[WalRecord]:
    return [
        WalRecord(1, BEGIN, 7),
        WalRecord(2, INSERT, 7, table="T", rowid=ROWID, after=(1, "a b\tc")),
        WalRecord(
            3, UPDATE, 7, table="T", rowid=ROWID,
            before=(1, "a b\tc"), after=(1, "x\ny"),
        ),
        WalRecord(4, TRUNCATE, 7, keep=1),
        WalRecord(5, DELETE, 7, table="T", rowid=ROWID, before=(1, "x\ny")),
        WalRecord(6, COMMIT, 7),
        WalRecord(7, ROLLBACK, 8),
        WalRecord(8, CHECKPOINT),
    ]


class TestRecordCodec:
    @pytest.mark.parametrize("record", sample_records())
    def test_round_trip(self, record):
        parsed, torn = parse_log(record.encode())
        assert torn is None
        assert parsed == [record]

    def test_encoded_form_is_one_line_with_crc(self):
        line = WalRecord(1, BEGIN, 3).encode()
        assert line.endswith("\n")
        assert line.count("\n") == 1
        body, _, crc = line.rstrip("\n").rpartition("|")
        assert body == "1 BEGIN 3"
        assert len(crc) == 8

    def test_unknown_kind_rejected(self):
        with pytest.raises(WalError):
            WalRecord(1, "MERGE").encode()

    def test_special_characters_survive(self):
        nasty = "tab\there\nnewline \\slash space"
        record = WalRecord(
            1, INSERT, table="T", rowid=ROWID, after=(nasty, None)
        )
        parsed, _ = parse_log(record.encode())
        assert parsed[0].after == (nasty, None)


class TestParseLog:
    def test_empty_log(self):
        assert parse_log("") == ([], None)

    def test_torn_tail_is_truncated_not_fatal(self):
        good = WalRecord(1, BEGIN, 1).encode()
        torn = WalRecord(2, COMMIT, 1).encode()[:-5]  # cut mid-CRC
        records, reason = parse_log(good + torn)
        assert [record.lsn for record in records] == [1]
        assert reason is not None and "record 2" in reason

    def test_flipped_crc_at_tail_is_torn(self):
        good = WalRecord(1, BEGIN, 1).encode()
        bad = WalRecord(2, COMMIT, 1).encode()
        bad = bad[:-2] + ("0" if bad[-2] != "0" else "1") + "\n"
        records, reason = parse_log(good + bad)
        assert len(records) == 1
        assert "CRC" in reason

    def test_damage_followed_by_valid_record_is_corruption(self):
        first = WalRecord(1, BEGIN, 1).encode()
        middle = WalRecord(2, COMMIT, 1).encode()
        middle = middle[:-2] + ("0" if middle[-2] != "0" else "1") + "\n"
        last = WalRecord(3, BEGIN, 2).encode()
        with pytest.raises(CorruptLogError):
            parse_log(first + middle + last)

    def test_lsn_must_advance(self):
        lines = WalRecord(5, BEGIN, 1).encode() + WalRecord(5, COMMIT, 1).encode()
        records, reason = parse_log(lines)
        assert len(records) == 1
        assert "LSN" in reason

    def test_highest_txid(self):
        records, _ = parse_log(
            WalRecord(1, BEGIN, 4).encode() + WalRecord(2, COMMIT, 4).encode()
        )
        assert highest_txid(records) == 4
        assert highest_txid([]) == AUTOCOMMIT_TXID


class TestCheckpointCodec:
    def test_round_trip(self):
        text = encode_checkpoint(42, "snapshot body\nwith lines\n")
        assert decode_checkpoint(text) == (42, "snapshot body\nwith lines\n")

    def test_damaged_snapshot_detected(self):
        text = encode_checkpoint(42, "snapshot body\n")
        with pytest.raises(CorruptLogError):
            decode_checkpoint(text[:-2] + "X\n")

    @pytest.mark.parametrize(
        "bad", ["", "nonsense", "%NETMARK-CKPT x y\nbody"]
    )
    def test_bad_header_detected(self, bad):
        with pytest.raises(CorruptLogError):
            decode_checkpoint(bad)


class TestWriteAheadLog:
    def test_lsns_are_sequential_and_synced_on_commit(self):
        device = MemoryLogDevice()
        wal = WriteAheadLog(device)
        wal.log_begin(1)
        wal.log_insert(1, "T", ROWID, (1, "v"))
        wal.log_commit(1)
        records, torn = wal.records()
        assert torn is None
        assert [record.lsn for record in records] == [1, 2, 3]
        assert wal.next_lsn == 4
        assert wal.records_written == 3

    def test_start_lsn_below_one_rejected(self):
        with pytest.raises(WalError):
            WriteAheadLog(MemoryLogDevice(), start_lsn=0)

    def test_checkpoint_truncates_and_stamps(self):
        device = MemoryLogDevice()
        wal = WriteAheadLog(device)
        wal.log_begin(1)
        wal.log_commit(1)
        covered = wal.write_checkpoint("SNAP")
        assert covered == 2
        assert decode_checkpoint(device.load_checkpoint()) == (2, "SNAP")
        records, _ = wal.records()
        assert [record.kind for record in records] == [CHECKPOINT]
        assert records[0].lsn == 3  # LSNs keep advancing across checkpoints


class TestFileLogDevice:
    def test_append_read_truncate(self, tmp_path):
        device = FileLogDevice(str(tmp_path / "db"))
        device.append("one|ffffffff\n")
        device.sync()
        assert device.read_log() == "one|ffffffff\n"
        device.truncate_log()
        assert device.read_log() == ""
        device.close()

    def test_checkpoint_slot_round_trip(self, tmp_path):
        device = FileLogDevice(str(tmp_path / "db"))
        assert device.load_checkpoint() is None
        device.save_checkpoint("ckpt-bytes")
        assert device.load_checkpoint() == "ckpt-bytes"
        device.close()

    def test_survives_reopen(self, tmp_path):
        base = str(tmp_path / "db")
        first = FileLogDevice(base)
        first.append("line|00000000\n")
        first.sync()
        first.close()
        second = FileLogDevice(base)
        assert second.read_log() == "line|00000000\n"
        second.close()
