"""Slotted-page heap storage: stability of ROWIDs, tombstones, restore."""

import pytest

from repro.errors import RowIdError
from repro.ordbms.rowid import RowId
from repro.ordbms.storage import BLOCK_CAPACITY, HeapFile


@pytest.fixture
def heap():
    return HeapFile("T")


class TestInsertFetch:
    def test_insert_returns_sequential_slots(self, heap):
        first = heap.insert(("a",))
        second = heap.insert(("b",))
        assert first == RowId(0, 0, 0)
        assert second == RowId(0, 0, 1)

    def test_fetch_is_identity(self, heap):
        rowid = heap.insert((1, "x"))
        assert heap.fetch(rowid) == (1, "x")

    def test_block_overflow_opens_new_block(self, heap):
        rowids = [heap.insert((i,)) for i in range(BLOCK_CAPACITY + 1)]
        assert rowids[-1].block_no == 1
        assert rowids[-1].slot_no == 0
        assert heap.fetch(rowids[-1]) == (BLOCK_CAPACITY,)

    def test_len_counts_live_rows(self, heap):
        for i in range(5):
            heap.insert((i,))
        assert len(heap) == 5

    def test_fetch_out_of_range_raises(self, heap):
        with pytest.raises(RowIdError):
            heap.fetch(RowId(0, 0, 99))
        with pytest.raises(RowIdError):
            heap.fetch(RowId(5, 0, 0))

    def test_fetch_invalid_rowid_raises(self, heap):
        with pytest.raises(RowIdError):
            heap.fetch(RowId(-1, 0, 0))


class TestDelete:
    def test_delete_returns_old_row(self, heap):
        rowid = heap.insert(("gone",))
        assert heap.delete(rowid) == ("gone",)

    def test_deleted_row_not_fetchable(self, heap):
        rowid = heap.insert(("gone",))
        heap.delete(rowid)
        with pytest.raises(RowIdError):
            heap.fetch(rowid)

    def test_double_delete_raises(self, heap):
        rowid = heap.insert(("gone",))
        heap.delete(rowid)
        with pytest.raises(RowIdError):
            heap.delete(rowid)

    def test_delete_does_not_move_survivors(self, heap):
        keep_before = heap.insert(("before",))
        victim = heap.insert(("victim",))
        keep_after = heap.insert(("after",))
        heap.delete(victim)
        assert heap.fetch(keep_before) == ("before",)
        assert heap.fetch(keep_after) == ("after",)

    def test_exists(self, heap):
        rowid = heap.insert(("x",))
        assert heap.exists(rowid)
        heap.delete(rowid)
        assert not heap.exists(rowid)
        assert not heap.exists(RowId(9, 9, 9))


class TestRestore:
    def test_restore_revives_at_same_rowid(self, heap):
        rowid = heap.insert(("original",))
        heap.delete(rowid)
        heap.restore(rowid, ("original",))
        assert heap.fetch(rowid) == ("original",)
        assert len(heap) == 1

    def test_restore_live_slot_raises(self, heap):
        rowid = heap.insert(("live",))
        with pytest.raises(RowIdError):
            heap.restore(rowid, ("other",))

    def test_restore_out_of_range_raises(self, heap):
        with pytest.raises(RowIdError):
            heap.restore(RowId(0, 0, 7), ("x",))


class TestScanAndUpdate:
    def test_scan_physical_order(self, heap):
        rowids = [heap.insert((i,)) for i in range(10)]
        scanned = list(heap.scan())
        assert [rowid for rowid, _ in scanned] == rowids
        assert [row[0] for _, row in scanned] == list(range(10))

    def test_scan_skips_tombstones(self, heap):
        rowids = [heap.insert((i,)) for i in range(4)]
        heap.delete(rowids[1])
        assert [row[0] for _, row in heap.scan()] == [0, 2, 3]

    def test_update_in_place(self, heap):
        rowid = heap.insert(("old",))
        heap.update(rowid, ("new",))
        assert heap.fetch(rowid) == ("new",)

    def test_update_deleted_raises(self, heap):
        rowid = heap.insert(("old",))
        heap.delete(rowid)
        with pytest.raises(RowIdError):
            heap.update(rowid, ("new",))

    def test_block_count_grows(self, heap):
        assert heap.block_count == 1
        for i in range(BLOCK_CAPACITY + 1):
            heap.insert((i,))
        assert heap.block_count == 2


class TestFileRollover:
    def test_new_data_file_opens_when_file_fills(self, monkeypatch):
        import repro.ordbms.storage as storage_module

        monkeypatch.setattr(storage_module, "FILE_CAPACITY", 2)
        heap = HeapFile("T")
        total = BLOCK_CAPACITY * 2 + 1  # fills file 0, spills into file 1
        rowids = [heap.insert((i,)) for i in range(total)]
        assert rowids[-1].file_no == 1
        assert rowids[-1].block_no == 0
        assert heap.fetch(rowids[-1]) == (total - 1,)
        assert len(heap) == total
        # Scan order still matches insert order across files.
        assert [row[0] for _, row in heap.scan()] == list(range(total))
