"""Transactions: atomicity of multi-row loads, savepoints, rollback."""

import pytest

from repro.errors import TransactionError
from repro.ordbms import Column, Database, INTEGER, TableSchema, VARCHAR


@pytest.fixture
def database():
    db = Database("txtest")
    db.create_table(
        TableSchema(
            "T",
            (Column("ID", INTEGER, nullable=False), Column("V", VARCHAR)),
            primary_key="ID",
        )
    )
    return db


class TestCommitRollback:
    def test_commit_keeps_rows(self, database):
        with database.begin():
            database.insert("T", {"ID": 1})
        assert len(database.table("T")) == 1
        assert database.stats.transactions_committed == 1

    def test_rollback_removes_inserts(self, database):
        transaction = database.begin()
        database.insert("T", {"ID": 1})
        database.insert("T", {"ID": 2})
        transaction.rollback()
        assert len(database.table("T")) == 0
        assert database.stats.transactions_rolled_back == 1

    def test_rollback_restores_deletes_at_same_rowid(self, database):
        rowid = database.insert("T", {"ID": 1, "V": "keep"})
        transaction = database.begin()
        database.delete("T", rowid)
        transaction.rollback()
        assert database.fetch("T", rowid)["V"] == "keep"

    def test_rollback_restores_updates(self, database):
        rowid = database.insert("T", {"ID": 1, "V": "old"})
        transaction = database.begin()
        database.update("T", rowid, {"V": "new"})
        transaction.rollback()
        assert database.fetch("T", rowid)["V"] == "old"

    def test_rollback_insert_then_delete(self, database):
        # The regression that motivated HeapFile.restore: undo order is
        # delete-undo (restore) then insert-undo (delete) on the same slot.
        transaction = database.begin()
        rowid = database.insert("T", {"ID": 1})
        database.delete("T", rowid)
        transaction.rollback()
        assert len(database.table("T")) == 0

    def test_context_manager_commits_on_success(self, database):
        with database.begin():
            database.insert("T", {"ID": 1})
        assert len(database.table("T")) == 1

    def test_context_manager_rolls_back_on_error(self, database):
        with pytest.raises(ValueError):
            with database.begin():
                database.insert("T", {"ID": 1})
                raise ValueError("boom")
        assert len(database.table("T")) == 0


class TestStateMachine:
    def test_double_begin_rejected(self, database):
        database.begin()
        with pytest.raises(TransactionError):
            database.begin()

    def test_commit_twice_rejected(self, database):
        transaction = database.begin()
        transaction.commit()
        with pytest.raises(TransactionError):
            transaction.commit()

    def test_rollback_after_commit_rejected(self, database):
        transaction = database.begin()
        transaction.commit()
        with pytest.raises(TransactionError):
            transaction.rollback()

    def test_new_transaction_after_close(self, database):
        database.begin().commit()
        database.begin().rollback()  # no error

    def test_autocommit_outside_transaction(self, database):
        database.insert("T", {"ID": 1})
        assert not database.in_transaction
        assert len(database.table("T")) == 1


class TestSavepoints:
    def test_rollback_to_savepoint_is_partial(self, database):
        transaction = database.begin()
        database.insert("T", {"ID": 1})
        transaction.savepoint("sp")
        database.insert("T", {"ID": 2})
        database.insert("T", {"ID": 3})
        transaction.rollback_to("sp")
        transaction.commit()
        assert sorted(row["ID"] for row in database.table("T").scan()) == [1]

    def test_unknown_savepoint_raises(self, database):
        transaction = database.begin()
        with pytest.raises(TransactionError):
            transaction.rollback_to("nope")

    def test_savepoints_after_mark_are_invalidated(self, database):
        transaction = database.begin()
        transaction.savepoint("a")
        database.insert("T", {"ID": 1})
        transaction.savepoint("b")
        transaction.rollback_to("a")
        with pytest.raises(TransactionError):
            transaction.rollback_to("b")

    def test_pending_undo_count(self, database):
        transaction = database.begin()
        assert transaction.pending_undo_count == 0
        database.insert("T", {"ID": 1})
        assert transaction.pending_undo_count == 1


class TestFailedRollback:
    """An undo callback that raises must fail the transaction terminally."""

    def poison(self, transaction):
        def explode():
            raise RuntimeError("disk fell out")

        transaction.record_undo("poisoned step", explode)

    def test_failure_surfaces_wrapped_and_chained(self, database):
        transaction = database.begin()
        self.poison(transaction)
        with pytest.raises(TransactionError) as info:
            transaction.rollback()
        assert "poisoned step" in str(info.value)
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_failed_state_is_terminal(self, database):
        transaction = database.begin()
        self.poison(transaction)
        with pytest.raises(TransactionError):
            transaction.rollback()
        assert transaction.is_failed
        assert not transaction.is_active
        for retry in (transaction.rollback, transaction.commit):
            with pytest.raises(TransactionError):
                retry()

    def test_failure_counted_and_database_reusable(self, database):
        transaction = database.begin()
        self.poison(transaction)
        with pytest.raises(TransactionError):
            transaction.rollback()
        assert database.stats.transactions_failed == 1
        assert database.stats.transactions_rolled_back == 0
        # The slot is released: a fresh transaction can begin and commit.
        with database.begin():
            database.insert("T", {"ID": 7})
        assert len(database.table("T")) == 1

    def test_undo_records_before_the_poison_still_ran(self, database):
        transaction = database.begin()
        database.insert("T", {"ID": 1})  # will be undone (popped last)
        self.poison(transaction)
        undone = []
        transaction.record_undo("tracer", lambda: undone.append(True))
        with pytest.raises(TransactionError):
            transaction.rollback()
        assert undone == [True]  # newest-first: tracer ran, then the poison
        assert len(database.table("T")) == 1  # insert's undo never reached
