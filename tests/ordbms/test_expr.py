"""Predicate expressions: comparisons, NULL semantics, LIKE, helpers."""

import pytest

from repro.errors import QueryPlanError
from repro.ordbms.expr import (
    And,
    Col,
    Compare,
    InList,
    IsNull,
    Like,
    Lit,
    Not,
    Or,
    conjuncts,
    equality_on,
)

ROW = {"A": 5, "B": "hello", "C": None, "D": 2.5}


class TestComparisons:
    def test_eq_builder(self):
        assert (Col("A") == 5).evaluate(ROW) is True
        assert (Col("A") == 6).evaluate(ROW) is False

    def test_ordering_operators(self):
        assert (Col("A") > 4).evaluate(ROW)
        assert (Col("A") >= 5).evaluate(ROW)
        assert (Col("A") < 6).evaluate(ROW)
        assert (Col("A") <= 5).evaluate(ROW)
        assert (Col("A") != 4).evaluate(ROW)

    def test_column_to_column(self):
        row = {"X": 1, "Y": 1}
        assert Compare(Col("X"), "=", Col("Y")).evaluate(row)

    def test_null_comparisons_are_false(self):
        assert (Col("C") == None).evaluate(ROW) is False  # noqa: E711
        assert (Col("C") != 5).evaluate(ROW) is False
        assert (Col("C") < 5).evaluate(ROW) is False

    def test_missing_column_raises(self):
        with pytest.raises(QueryPlanError):
            (Col("MISSING") == 1).evaluate(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryPlanError):
            Compare(Col("A"), "~~", Lit(1))

    def test_case_insensitive_column(self):
        assert (Col("a") == 5).evaluate(ROW)


class TestBooleans:
    def test_and_or_not(self):
        true = Col("A") == 5
        false = Col("A") == 6
        assert And(true, true).evaluate(ROW)
        assert not And(true, false).evaluate(ROW)
        assert Or(false, true).evaluate(ROW)
        assert Not(false).evaluate(ROW)

    def test_operator_overloads(self):
        assert ((Col("A") == 5) & (Col("B") == "hello")).evaluate(ROW)
        assert ((Col("A") == 9) | (Col("B") == "hello")).evaluate(ROW)
        assert (~(Col("A") == 9)).evaluate(ROW)

    def test_is_null(self):
        assert IsNull(Col("C")).evaluate(ROW)
        assert not IsNull(Col("A")).evaluate(ROW)
        assert Col("C").is_null().evaluate(ROW)


class TestInAndLike:
    def test_in_list(self):
        assert InList(Col("A"), (1, 5, 9)).evaluate(ROW)
        assert not InList(Col("A"), (1, 2)).evaluate(ROW)
        assert not InList(Col("C"), (None,)).evaluate(ROW)

    def test_in_builder(self):
        assert Col("A").in_((5,)).evaluate(ROW)

    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("hello", True),
            ("HELLO", True),     # case-insensitive
            ("hel%", True),
            ("%llo", True),
            ("h_llo", True),
            ("hell_o", False),
            ("%ell%", True),
            ("", False),
            ("%", True),
        ],
    )
    def test_like(self, pattern, expected):
        assert Like(Col("B"), pattern).evaluate(ROW) is expected

    def test_like_on_null_and_non_string(self):
        assert not Like(Col("C"), "%").evaluate(ROW)
        assert not Like(Col("A"), "%").evaluate(ROW)

    def test_like_escapes_regex_metacharacters(self):
        row = {"B": "a.b"}
        assert Like(Col("B"), "a.b").evaluate(row)
        assert not Like(Col("B"), "axb").evaluate(row)


class TestPlannerHelpers:
    def test_conjuncts_flattens(self):
        expr = (Col("A") == 1) & ((Col("B") == 2) & (Col("C") == 3))
        assert len(conjuncts(expr)) == 3

    def test_conjuncts_none(self):
        assert conjuncts(None) == []

    def test_conjuncts_stops_at_or(self):
        expr = (Col("A") == 1) | (Col("B") == 2)
        assert conjuncts(expr) == [expr]

    def test_equality_on_matches(self):
        assert equality_on(Col("A") == 7, "a") == 7

    def test_equality_on_reversed(self):
        assert equality_on(Compare(Lit(7), "=", Col("A")), "A") == 7

    def test_equality_on_rejects_wrong_shape(self):
        assert equality_on(Col("A") > 7, "A") is None
        assert equality_on(Col("B") == 7, "A") is None
