"""Table layer: constraints, index maintenance, lookups."""

import pytest

from repro.errors import CatalogError, ConstraintError
from repro.ordbms import (
    CLOB,
    INTEGER,
    VARCHAR,
    Col,
    Column,
    Table,
    TableSchema,
)
from repro.ordbms.table import ROWID_PSEUDO


@pytest.fixture
def table():
    return Table(
        TableSchema(
            "EMP",
            (
                Column("ID", INTEGER, nullable=False),
                Column("NAME", VARCHAR),
                Column("NOTE", CLOB),
            ),
            primary_key="ID",
        )
    )


class TestConstraints:
    def test_primary_key_uniqueness(self, table):
        table.insert({"ID": 1, "NAME": "a"})
        with pytest.raises(ConstraintError):
            table.insert({"ID": 1, "NAME": "b"})

    def test_unique_constraint_via_schema(self):
        schema = TableSchema(
            "U",
            (Column("ID", INTEGER, nullable=False), Column("EMAIL", VARCHAR)),
            primary_key="ID",
            unique=("EMAIL",),
        )
        table = Table(schema)
        table.insert({"ID": 1, "EMAIL": "x@y"})
        with pytest.raises(ConstraintError):
            table.insert({"ID": 2, "EMAIL": "x@y"})
        # NULLs never collide.
        table.insert({"ID": 3})
        table.insert({"ID": 4})

    def test_update_respects_uniqueness(self, table):
        table.insert({"ID": 1})
        rowid = table.insert({"ID": 2})
        with pytest.raises(ConstraintError):
            table.update(rowid, {"ID": 1})

    def test_update_to_same_value_allowed(self, table):
        rowid = table.insert({"ID": 1, "NAME": "a"})
        table.update(rowid, {"ID": 1, "NAME": "b"})
        assert table.fetch(rowid)["NAME"] == "b"

    def test_delete_frees_unique_value(self, table):
        rowid = table.insert({"ID": 1})
        table.delete(rowid)
        table.insert({"ID": 1})  # no error


class TestIndexMaintenance:
    def test_create_index_backfills(self, table):
        table.insert({"ID": 1, "NAME": "alice"})
        table.insert({"ID": 2, "NAME": "bob"})
        table.create_index("NAME")
        assert [row["ID"] for row in table.lookup("NAME", "bob")] == [2]

    def test_duplicate_index_rejected(self, table):
        table.create_index("NAME")
        with pytest.raises(CatalogError):
            table.create_index("NAME")

    def test_index_follows_updates(self, table):
        table.create_index("NAME")
        rowid = table.insert({"ID": 1, "NAME": "old"})
        table.update(rowid, {"NAME": "new"})
        assert table.lookup("NAME", "old") == []
        assert [row["ID"] for row in table.lookup("NAME", "new")] == [1]

    def test_index_follows_deletes(self, table):
        table.create_index("NAME")
        rowid = table.insert({"ID": 1, "NAME": "gone"})
        table.delete(rowid)
        assert table.lookup("NAME", "gone") == []

    def test_text_index_backfills_and_follows(self, table):
        rowid = table.insert({"ID": 1, "NOTE": "engine anomaly report"})
        index = table.create_text_index("NOTE")
        assert index.lookup("anomaly") == {rowid}
        table.update(rowid, {"NOTE": "budget review"})
        assert index.lookup("anomaly") == set()
        assert index.lookup("budget") == {rowid}

    def test_restore_reindexes(self, table):
        table.create_index("NAME")
        rowid = table.insert({"ID": 1, "NAME": "alice"})
        values = table.delete(rowid)
        table.restore(rowid, values)
        assert [row["ID"] for row in table.lookup("NAME", "alice")] == [1]


class TestAccess:
    def test_fetch_includes_rowid_pseudo_column(self, table):
        rowid = table.insert({"ID": 1})
        assert table.fetch(rowid)[ROWID_PSEUDO] == rowid

    def test_try_fetch_returns_none_for_dead(self, table):
        rowid = table.insert({"ID": 1})
        table.delete(rowid)
        assert table.try_fetch(rowid) is None

    def test_scan_with_expr_predicate(self, table):
        for i in range(5):
            table.insert({"ID": i})
        rows = list(table.scan(Col("ID") >= 3))
        assert sorted(row["ID"] for row in rows) == [3, 4]

    def test_scan_with_callable_predicate(self, table):
        for i in range(5):
            table.insert({"ID": i})
        rows = list(table.scan(lambda row: row["ID"] % 2 == 0))
        assert sorted(row["ID"] for row in rows) == [0, 2, 4]

    def test_lookup_without_index_scans(self, table):
        table.insert({"ID": 1, "NAME": "x"})
        assert [row["ID"] for row in table.lookup("NAME", "x")] == [1]

    def test_len(self, table):
        for i in range(3):
            table.insert({"ID": i})
        assert len(table) == 3
