"""B+tree index: correctness under inserts, duplicates, deletes, ranges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordbms.btree import FANOUT, BTreeIndex
from repro.ordbms.rowid import RowId


def rid(n: int) -> RowId:
    return RowId(0, n // 64, n % 64)


@pytest.fixture
def tree():
    return BTreeIndex("t")


class TestBasics:
    def test_empty_search(self, tree):
        assert tree.search("missing") == []
        assert len(tree) == 0

    def test_insert_and_search(self, tree):
        tree.insert("k", rid(1))
        assert tree.search("k") == [rid(1)]

    def test_duplicate_keys_accumulate(self, tree):
        tree.insert("k", rid(1))
        tree.insert("k", rid(2))
        assert sorted(tree.search("k")) == [rid(1), rid(2)]
        assert len(tree) == 2

    def test_search_does_not_bleed_into_neighbors(self, tree):
        for i, key in enumerate(["a", "b", "c"]):
            tree.insert(key, rid(i))
        assert tree.search("b") == [rid(1)]


class TestSplitsAndDepth:
    def test_many_inserts_keep_all_keys(self, tree):
        count = FANOUT * FANOUT  # forces at least two levels of splits
        for i in range(count):
            tree.insert(i, rid(i))
        assert len(tree) == count
        for probe in (0, 1, FANOUT, count // 2, count - 1):
            assert tree.search(probe) == [rid(probe)]

    def test_depth_grows(self, tree):
        assert tree.depth == 1
        for i in range(FANOUT * 4):
            tree.insert(i, rid(i))
        assert tree.depth >= 2

    def test_keys_iterates_sorted(self, tree):
        import random

        values = list(range(200))
        random.Random(5).shuffle(values)
        for value in values:
            tree.insert(value, rid(value))
        assert list(tree.keys()) == sorted(values)


class TestDelete:
    def test_delete_single(self, tree):
        tree.insert("k", rid(1))
        assert tree.delete("k", rid(1))
        assert tree.search("k") == []
        assert len(tree) == 0

    def test_delete_one_of_duplicates(self, tree):
        tree.insert("k", rid(1))
        tree.insert("k", rid(2))
        assert tree.delete("k", rid(1))
        assert tree.search("k") == [rid(2)]

    def test_delete_missing_returns_false(self, tree):
        tree.insert("k", rid(1))
        assert not tree.delete("k", rid(99))
        assert not tree.delete("other", rid(1))

    def test_delete_after_splits(self, tree):
        count = FANOUT * 3
        for i in range(count):
            tree.insert(i, rid(i))
        for i in range(0, count, 2):
            assert tree.delete(i, rid(i))
        for i in range(count):
            expected = [] if i % 2 == 0 else [rid(i)]
            assert tree.search(i) == expected


class TestRange:
    def test_range_inclusive(self, tree):
        for i in range(20):
            tree.insert(i, rid(i))
        got = [key for key, _ in tree.range(5, 9)]
        assert got == [5, 6, 7, 8, 9]

    def test_range_exclusive_bounds(self, tree):
        for i in range(10):
            tree.insert(i, rid(i))
        got = [
            key
            for key, _ in tree.range(2, 6, include_low=False, include_high=False)
        ]
        assert got == [3, 4, 5]

    def test_range_open_ended(self, tree):
        for i in range(10):
            tree.insert(i, rid(i))
        assert [k for k, _ in tree.range(low=7)] == [7, 8, 9]
        assert [k for k, _ in tree.range(high=2)] == [0, 1, 2]
        assert len(list(tree.range())) == 10

    def test_range_spans_leaf_boundaries(self, tree):
        count = FANOUT * 3
        for i in range(count):
            tree.insert(i, rid(i))
        got = [key for key, _ in tree.range(FANOUT - 2, FANOUT + 2)]
        assert got == list(range(FANOUT - 2, FANOUT + 3))


class TestProperties:
    @given(st.lists(st.integers(-1000, 1000), max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_multimap(self, keys):
        tree = BTreeIndex()
        reference: dict[int, list[RowId]] = {}
        for position, key in enumerate(keys):
            rowid = rid(position)
            tree.insert(key, rowid)
            reference.setdefault(key, []).append(rowid)
        for key, rowids in reference.items():
            assert sorted(tree.search(key)) == sorted(rowids)
        assert list(tree.keys()) == sorted(reference)
        assert len(tree) == len(keys)

    @given(
        st.lists(
            st.tuples(st.sampled_from("abcdef"), st.integers(0, 30)),
            max_size=150,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_insert_delete_interleaving(self, operations):
        tree = BTreeIndex()
        reference: dict[str, set[RowId]] = {}
        for key, n in operations:
            rowid = rid(n)
            live = reference.setdefault(key, set())
            if rowid in live:
                assert tree.delete(key, rowid)
                live.discard(rowid)
            else:
                tree.insert(key, rowid)
                live.add(rowid)
        for key in "abcdef":
            assert set(tree.search(key)) == reference.get(key, set())

    @given(st.sets(st.integers(0, 500), max_size=200), st.integers(0, 500),
           st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_range_equals_filter(self, keys, bound_a, bound_b):
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        tree = BTreeIndex()
        for key in keys:
            tree.insert(key, rid(key))
        got = [key for key, _ in tree.range(low, high)]
        assert got == sorted(key for key in keys if low <= key <= high)
