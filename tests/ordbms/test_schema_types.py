"""Column types and table schemas."""

import datetime as dt

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.ordbms import (
    CLOB,
    FLOAT,
    INTEGER,
    ROWID,
    TIMESTAMP,
    VARCHAR,
    Column,
    ForeignKey,
    RowId,
    TableSchema,
)


class TestTypes:
    def test_integer_accepts_int(self):
        assert INTEGER.validate(5, "C") == 5

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(True, "C")

    def test_integer_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate("5", "C")

    def test_float_coerces_int(self):
        assert FLOAT.validate(3, "C") == 3.0
        assert isinstance(FLOAT.validate(3, "C"), float)

    def test_varchar_and_clob_accept_str(self):
        assert VARCHAR.validate("x", "C") == "x"
        assert CLOB.validate("y" * 10000, "C") == "y" * 10000

    def test_timestamp_accepts_datetime_and_iso(self):
        moment = dt.datetime(2005, 6, 14, 12, 0)
        assert TIMESTAMP.validate(moment, "C") == moment
        assert TIMESTAMP.validate("2005-06-14T12:00:00", "C") == moment

    def test_timestamp_rejects_garbage_string(self):
        with pytest.raises(TypeMismatchError):
            TIMESTAMP.validate("not a date", "C")

    def test_rowid_type(self):
        assert ROWID.validate(RowId(0, 0, 0), "C") == RowId(0, 0, 0)
        with pytest.raises(TypeMismatchError):
            ROWID.validate("F0.B0.S0", "C")

    def test_none_always_passes_type_check(self):
        for data_type in (INTEGER, FLOAT, VARCHAR, TIMESTAMP, ROWID):
            assert data_type.validate(None, "C") is None


def make_schema(**overrides):
    parameters = dict(
        name="EMP",
        columns=(
            Column("ID", INTEGER, nullable=False),
            Column("NAME", VARCHAR),
            Column("NOTE", CLOB, default=""),
        ),
        primary_key="ID",
    )
    parameters.update(overrides)
    return TableSchema(**parameters)


class TestTableSchema:
    def test_names_uppercased(self):
        schema = TableSchema("emp", (Column("id", INTEGER),))
        assert schema.name == "EMP"
        assert schema.columns[0].name == "ID"

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", (Column("A", INTEGER), Column("a", VARCHAR)))

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", ())

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            make_schema(primary_key="NOPE")

    def test_unique_must_exist(self):
        with pytest.raises(SchemaError):
            make_schema(unique=("NOPE",))

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(SchemaError):
            make_schema(foreign_keys=(ForeignKey("NOPE", "OTHER", "ID"),))

    def test_position_and_column_lookup(self):
        schema = make_schema()
        assert schema.position("name") == 1
        assert schema.column("NOTE").dtype is CLOB
        with pytest.raises(SchemaError):
            schema.position("missing")

    def test_invalid_column_name(self):
        with pytest.raises(SchemaError):
            Column("bad name!", INTEGER)


class TestMakeRow:
    def test_full_row(self):
        schema = make_schema()
        assert schema.make_row({"id": 1, "name": "a", "note": "n"}) == (1, "a", "n")

    def test_defaults_applied(self):
        schema = make_schema()
        assert schema.make_row({"id": 1}) == (1, None, "")

    def test_not_null_enforced(self):
        schema = make_schema()
        with pytest.raises(TypeMismatchError):
            schema.make_row({"name": "a"})

    def test_unknown_column_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.make_row({"id": 1, "bogus": 2})

    def test_type_checked(self):
        schema = make_schema()
        with pytest.raises(TypeMismatchError):
            schema.make_row({"id": "one"})

    def test_row_to_dict_round_trip(self):
        schema = make_schema()
        row = schema.make_row({"id": 7, "name": "x"})
        assert schema.row_to_dict(row) == {"ID": 7, "NAME": "x", "NOTE": ""}

    def test_row_to_dict_width_check(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.row_to_dict((1,))
