"""Database facade: catalog operations and stats counters."""

import pytest

from repro.errors import CatalogError
from repro.ordbms import Column, Database, INTEGER, TableSchema


@pytest.fixture
def database():
    return Database("d")


def schema(name="T"):
    return TableSchema(name, (Column("ID", INTEGER, nullable=False),),
                       primary_key="ID")


class TestCatalog:
    def test_create_and_get(self, database):
        database.create_table(schema())
        assert database.table("t").schema.name == "T"

    def test_duplicate_table_rejected(self, database):
        database.create_table(schema())
        with pytest.raises(CatalogError):
            database.create_table(schema())

    def test_missing_table_raises(self, database):
        with pytest.raises(CatalogError):
            database.table("NOPE")

    def test_drop_table(self, database):
        database.create_table(schema())
        database.drop_table("T")
        assert not database.catalog.has_table("T")
        with pytest.raises(CatalogError):
            database.drop_table("T")

    def test_ddl_statement_counter(self, database):
        before = database.catalog.ddl_statements
        database.create_table(schema("A"))
        database.create_table(schema("B"))
        database.drop_table("A")
        assert database.catalog.ddl_statements == before + 3

    def test_table_names_and_len(self, database):
        database.create_table(schema("A"))
        database.create_table(schema("B"))
        assert set(database.catalog.table_names()) == {"A", "B"}
        assert len(database.catalog) == 2


class TestStats:
    def test_dml_counters(self, database):
        database.create_table(schema())
        rowid = database.insert("T", {"ID": 1})
        database.update("T", rowid, {"ID": 2})
        database.delete("T", rowid)
        stats = database.stats
        assert stats.rows_inserted == 1
        assert stats.rows_updated == 1
        assert stats.rows_deleted == 1

    def test_rowid_fetch_counter(self, database):
        database.create_table(schema())
        rowid = database.insert("T", {"ID": 1})
        database.fetch("T", rowid)
        database.fetch("T", rowid)
        assert database.stats.rowid_fetches == 2

    def test_reset(self, database):
        database.create_table(schema())
        database.insert("T", {"ID": 1})
        database.stats.reset()
        assert database.stats.rows_inserted == 0
