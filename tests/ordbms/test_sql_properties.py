"""Property-based checks: SQL results vs plain-Python references."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordbms import Column, Database, INTEGER, TableSchema, VARCHAR
from repro.ordbms.sql import execute_sql

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 50),
        st.sampled_from(["eng", "sci", "ops"]),
        st.integers(-100, 100),
    ),
    max_size=60,
)


def _load(rows) -> Database:
    database = Database()
    database.create_table(
        TableSchema(
            "T",
            (
                Column("ID", INTEGER, nullable=False),
                Column("DEPT", VARCHAR),
                Column("V", INTEGER),
            ),
        )
    )
    for id_, dept, value in rows:
        database.insert("T", {"ID": id_, "DEPT": dept, "V": value})
    return database


class TestSelectAgainstReference:
    @given(rows_strategy, st.integers(-100, 100))
    @settings(max_examples=40, deadline=None)
    def test_where_matches_filter(self, rows, threshold):
        database = _load(rows)
        got = execute_sql(
            database, f"SELECT id FROM t WHERE v > {threshold} OR v < 0"
        ).rows
        expected = sorted(
            id_ for id_, _, value in rows if value > threshold or value < 0
        )
        assert sorted(row["ID"] for row in got) == expected

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_group_by_matches_reference(self, rows):
        database = _load(rows)
        got = {
            row["DEPT"]: (row["N"], row["S"])
            for row in execute_sql(
                database,
                "SELECT dept, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY dept",
            ).rows
        }
        expected: dict[str, tuple[int, int]] = {}
        for _, dept, value in rows:
            count, total = expected.get(dept, (0, 0))
            expected[dept] = (count + 1, total + value)
        assert got == expected

    @given(rows_strategy, st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_order_limit_matches_sorted_slice(self, rows, limit):
        database = _load(rows)
        got = [
            row["V"]
            for row in execute_sql(
                database, f"SELECT v FROM t ORDER BY v LIMIT {limit}"
            ).rows
        ]
        assert got == sorted(value for _, _, value in rows)[:limit]

    @given(rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_delete_then_count(self, rows):
        database = _load(rows)
        deleted = execute_sql(database, "DELETE FROM t WHERE v < 0").rowcount
        [row] = execute_sql(database, "SELECT COUNT(*) AS n FROM t").rows
        negatives = sum(1 for _, _, value in rows if value < 0)
        assert deleted == negatives
        assert row["N"] == len(rows) - negatives

    @given(rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_update_is_visible(self, rows):
        database = _load(rows)
        execute_sql(database, "UPDATE t SET v = 0 WHERE dept = 'eng'")
        got = execute_sql(
            database, "SELECT v FROM t WHERE dept = 'eng'"
        ).rows
        assert all(row["V"] == 0 for row in got)
