"""The SQL subset: DDL, DML, SELECT planning, CONTAINS lowering."""

import pytest

from repro.errors import CatalogError, ConstraintError
from repro.ordbms import Database, execute_sql
from repro.ordbms.sql import SqlError


@pytest.fixture
def database():
    db = Database()
    execute_sql(
        db,
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept VARCHAR, "
        "salary INTEGER, bio CLOB)",
    )
    execute_sql(db, "CREATE INDEX ON emp (dept)")
    execute_sql(db, "CREATE TEXT INDEX ON emp (bio)")
    execute_sql(
        db,
        "INSERT INTO emp (id, dept, salary, bio) VALUES "
        "(1, 'eng', 100, 'shuttle engines'), "
        "(2, 'eng', 120, 'avionics software'), "
        "(3, 'sci', 90, 'earth payloads'), "
        "(4, 'ops', 80, 'launch ops')",
    )
    return db


class TestDdl:
    def test_create_table_with_constraints(self):
        db = Database()
        execute_sql(
            db,
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR NOT NULL, "
            "c VARCHAR UNIQUE)",
        )
        schema = db.table("T").schema
        assert schema.primary_key == "A"
        assert not schema.column("B").nullable
        assert "C" in schema.unique

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlError):
            execute_sql(Database(), "CREATE TABLE t (a BLOB)")

    def test_drop_table(self, database):
        execute_sql(database, "DROP TABLE emp")
        with pytest.raises(CatalogError):
            database.table("EMP")

    def test_create_duplicate_index_fails(self, database):
        with pytest.raises(CatalogError):
            execute_sql(database, "CREATE INDEX ON emp (dept)")


class TestDml:
    def test_insert_rowcount(self, database):
        result = execute_sql(
            database, "INSERT INTO emp (id, dept) VALUES (5, 'hr'), (6, 'hr')"
        )
        assert result.rowcount == 2
        assert len(database.table("EMP")) == 6

    def test_insert_pk_violation(self, database):
        with pytest.raises(ConstraintError):
            execute_sql(database, "INSERT INTO emp (id) VALUES (1)")

    def test_insert_arity_mismatch(self, database):
        with pytest.raises(SqlError):
            execute_sql(database, "INSERT INTO emp (id, dept) VALUES (9)")

    def test_update_with_where(self, database):
        result = execute_sql(
            database, "UPDATE emp SET salary = 130 WHERE dept = 'eng'"
        )
        assert result.rowcount == 2
        rows = execute_sql(
            database, "SELECT salary FROM emp WHERE dept = 'eng'"
        ).rows
        assert [row["SALARY"] for row in rows] == [130, 130]

    def test_update_all_rows(self, database):
        assert execute_sql(database, "UPDATE emp SET salary = 1").rowcount == 4

    def test_delete_with_where(self, database):
        assert (
            execute_sql(database, "DELETE FROM emp WHERE salary < 95").rowcount
            == 2
        )
        assert len(database.table("EMP")) == 2

    def test_string_escape(self, database):
        execute_sql(
            database, "INSERT INTO emp (id, bio) VALUES (9, 'it''s fine')"
        )
        [row] = execute_sql(
            database, "SELECT bio FROM emp WHERE id = 9"
        ).rows
        assert row["BIO"] == "it's fine"


class TestSelect:
    def test_select_star(self, database):
        rows = execute_sql(database, "SELECT * FROM emp").rows
        assert len(rows) == 4
        assert set(rows[0]) == {"ID", "DEPT", "SALARY", "BIO"}

    def test_projection_and_alias(self, database):
        rows = execute_sql(
            database, "SELECT id AS who, salary FROM emp WHERE id = 1"
        ).rows
        assert rows == [{"WHO": 1, "SALARY": 100}]

    def test_where_connectives(self, database):
        rows = execute_sql(
            database,
            "SELECT id FROM emp WHERE (dept = 'eng' AND salary > 110) "
            "OR dept = 'ops'",
        ).rows
        assert sorted(row["ID"] for row in rows) == [2, 4]

    def test_not_and_in_and_like(self, database):
        rows = execute_sql(
            database, "SELECT id FROM emp WHERE dept IN ('eng', 'sci')"
        ).rows
        assert sorted(row["ID"] for row in rows) == [1, 2, 3]
        rows = execute_sql(
            database, "SELECT id FROM emp WHERE bio LIKE '%engine%'"
        ).rows
        assert [row["ID"] for row in rows] == [1]
        rows = execute_sql(
            database, "SELECT id FROM emp WHERE NOT dept = 'eng'"
        ).rows
        assert sorted(row["ID"] for row in rows) == [3, 4]

    def test_is_null(self, database):
        execute_sql(database, "INSERT INTO emp (id) VALUES (7)")
        rows = execute_sql(
            database, "SELECT id FROM emp WHERE dept IS NULL"
        ).rows
        assert [row["ID"] for row in rows] == [7]
        rows = execute_sql(
            database, "SELECT id FROM emp WHERE dept IS NOT NULL"
        ).rows
        assert len(rows) == 4

    def test_order_limit_offset(self, database):
        rows = execute_sql(
            database,
            "SELECT id FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1",
        ).rows
        assert [row["ID"] for row in rows] == [1, 3]

    def test_group_by_aggregates(self, database):
        rows = execute_sql(
            database,
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp "
            "GROUP BY dept ORDER BY dept",
        ).rows
        assert rows[0] == {"DEPT": "eng", "N": 2, "TOTAL": 220}

    def test_global_aggregate(self, database):
        [row] = execute_sql(
            database, "SELECT MIN(salary) AS lo, MAX(salary) AS hi FROM emp"
        ).rows
        assert row == {"LO": 80, "HI": 120}

    def test_non_grouped_column_rejected(self, database):
        with pytest.raises(SqlError):
            execute_sql(database, "SELECT dept, salary FROM emp GROUP BY dept")

    def test_join(self, database):
        execute_sql(
            database,
            "CREATE TABLE dept (name VARCHAR PRIMARY KEY, building VARCHAR)",
        )
        execute_sql(
            database,
            "INSERT INTO dept (name, building) VALUES ('eng', 'N239'), "
            "('sci', 'N245')",
        )
        rows = execute_sql(
            database,
            "SELECT emp.id, dept.building FROM emp "
            "JOIN dept ON emp.dept = dept.name ORDER BY id",
        ).rows
        assert rows == [
            {"ID": 1, "BUILDING": "N239"},
            {"ID": 2, "BUILDING": "N239"},
            {"ID": 3, "BUILDING": "N245"},
        ]

    def test_join_bad_qualifier(self, database):
        execute_sql(database, "CREATE TABLE d2 (name VARCHAR)")
        with pytest.raises(SqlError):
            execute_sql(
                database,
                "SELECT * FROM emp JOIN d2 ON nosuch.dept = d2.name",
            )


class TestContains:
    def test_contains_uses_text_index(self, database):
        rows = execute_sql(
            database, "SELECT id FROM emp WHERE CONTAINS(bio, 'shuttle')"
        ).rows
        assert [row["ID"] for row in rows] == [1]

    def test_contains_with_residual_predicate(self, database):
        rows = execute_sql(
            database,
            "SELECT id FROM emp WHERE CONTAINS(bio, 'engines') "
            "AND salary >= 100",
        ).rows
        assert [row["ID"] for row in rows] == [1]

    def test_two_contains_intersect(self, database):
        rows = execute_sql(
            database,
            "SELECT id FROM emp WHERE CONTAINS(bio, 'shuttle') "
            "AND CONTAINS(bio, 'engines')",
        ).rows
        assert [row["ID"] for row in rows] == [1]

    def test_contains_under_or_evaluates_inline(self, database):
        rows = execute_sql(
            database,
            "SELECT id FROM emp WHERE CONTAINS(bio, 'shuttle') "
            "OR dept = 'ops'",
        ).rows
        assert sorted(row["ID"] for row in rows) == [1, 4]

    def test_contains_needs_string(self, database):
        with pytest.raises(SqlError):
            execute_sql(database, "SELECT id FROM emp WHERE CONTAINS(bio, 3)")


class TestErrors:
    def test_unsupported_statement(self, database):
        with pytest.raises(SqlError):
            execute_sql(database, "GRANT ALL TO public")

    def test_trailing_tokens(self, database):
        with pytest.raises(SqlError):
            execute_sql(database, "SELECT * FROM emp extra junk")

    def test_garbage_rejected(self, database):
        with pytest.raises(SqlError):
            execute_sql(database, "SELECT @@ FROM emp")

    def test_semicolon_tolerated(self, database):
        assert execute_sql(database, "SELECT * FROM emp;").rowcount == 4


class TestNegativeLiterals:
    def test_insert_and_compare_negative(self, database):
        execute_sql(database, "INSERT INTO emp (id, salary) VALUES (10, -5)")
        rows = execute_sql(
            database, "SELECT id FROM emp WHERE salary = -5"
        ).rows
        assert [row["ID"] for row in rows] == [10]
        rows = execute_sql(
            database, "SELECT id FROM emp WHERE salary < -1"
        ).rows
        assert [row["ID"] for row in rows] == [10]

    def test_unary_minus_requires_number(self, database):
        with pytest.raises(SqlError):
            execute_sql(database, "SELECT id FROM emp WHERE dept = -'eng'")
