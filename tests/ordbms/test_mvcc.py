"""MVCC: snapshot visibility, transaction pins, version-GC, the seqlock."""

import threading

import pytest

from repro import obs
from repro.errors import RowIdError, TransactionError
from repro.ordbms import (
    ABSENT,
    Column,
    Database,
    INTEGER,
    MvccState,
    TableSchema,
    VARCHAR,
)
from repro.ordbms.table import AUTO_VACUUM_INTERVAL


@pytest.fixture
def database():
    db = Database("mvcctest")
    db.create_table(
        TableSchema(
            "T",
            (
                Column("ID", INTEGER, nullable=False),
                Column("V", VARCHAR),
            ),
            primary_key="ID",
        )
    )
    return db


@pytest.fixture
def table(database):
    return database.table("T")


class TestSnapshotVisibility:
    def test_snapshot_does_not_see_later_insert(self, database, table):
        rid1 = database.insert("T", {"ID": 1, "V": "one"})
        with database.open_snapshot() as snap:
            rid2 = database.insert("T", {"ID": 2, "V": "two"})
            assert table.visible_row(rid1, snap.lsn)["V"] == "one"
            assert table.visible_row(rid2, snap.lsn) is None
        # A fresh snapshot sees both.
        with database.open_snapshot() as fresh:
            assert table.visible_row(rid2, fresh.lsn)["V"] == "two"

    def test_snapshot_sees_pre_update_value(self, database, table):
        rid = database.insert("T", {"ID": 1, "V": "old"})
        with database.open_snapshot() as snap:
            database.update("T", rid, {"V": "new"})
            assert table.visible_row(rid, snap.lsn)["V"] == "old"
            assert table.fetch(rid)["V"] == "new"  # live read unaffected

    def test_snapshot_sees_deleted_row(self, database, table):
        rid = database.insert("T", {"ID": 1, "V": "doomed"})
        with database.open_snapshot() as snap:
            database.delete("T", rid)
            assert table.visible_row(rid, snap.lsn)["V"] == "doomed"
            with pytest.raises(RowIdError):
                table.fetch(rid)
        with database.open_snapshot() as fresh:
            assert table.visible_row(rid, fresh.lsn) is None

    def test_update_chain_resolves_oldest_superseding_preimage(
        self, database, table
    ):
        rid = database.insert("T", {"ID": 1, "V": "v0"})
        snapshots = [database.open_snapshot()]
        for revision in range(1, 4):
            database.update("T", rid, {"V": f"v{revision}"})
            snapshots.append(database.open_snapshot())
        # Each pin sees exactly the value committed when it was opened.
        for revision, snap in enumerate(snapshots):
            assert table.visible_row(rid, snap.lsn)["V"] == f"v{revision}"
        for snap in snapshots:
            snap.release()

    def test_visible_many_raises_on_invisible_row(self, database, table):
        with database.open_snapshot() as snap:
            rid = database.insert("T", {"ID": 1})
            with pytest.raises(RowIdError):
                table.visible_many([rid], snap.lsn)

    def test_snapshot_scan_is_as_of_pin(self, database, table):
        database.insert("T", {"ID": 1, "V": "a"})
        rid2 = database.insert("T", {"ID": 2, "V": "b"})
        with database.open_snapshot() as snap:
            database.insert("T", {"ID": 3, "V": "c"})
            database.delete("T", rid2)
            ids = sorted(row["ID"] for row in table.snapshot_scan(snap.lsn))
            assert ids == [1, 2]

    def test_snapshot_search_indexed_column(self, database, table):
        # ID is the primary key, so it carries a B+tree index.
        database.insert("T", {"ID": 1, "V": "a"})
        with database.open_snapshot() as snap:
            database.insert("T", {"ID": 2, "V": "b"})
            assert [
                row["ID"] for row in table.snapshot_search("ID", 1, snap.lsn)
            ] == [1]
            assert table.snapshot_search("ID", 2, snap.lsn) == []

    def test_snapshot_search_update_moves_row_between_keys(
        self, database, table
    ):
        rid = database.insert("T", {"ID": 1, "V": "a"})
        with database.open_snapshot() as snap:
            database.update("T", rid, {"ID": 9})
            # The live index says ID=9, but at the pin the row had ID=1.
            assert [
                row["ID"] for row in table.snapshot_search("ID", 1, snap.lsn)
            ] == [1]
            assert table.snapshot_search("ID", 9, snap.lsn) == []

    def test_snapshot_search_unindexed_column_falls_back_to_scan(
        self, database, table
    ):
        database.insert("T", {"ID": 1, "V": "x"})
        with database.open_snapshot() as snap:
            database.insert("T", {"ID": 2, "V": "x"})
            rows = table.snapshot_search("V", "x", snap.lsn)
            assert [row["ID"] for row in rows] == [1]

    def test_changed_rowids_since(self, database, table):
        rid1 = database.insert("T", {"ID": 1})
        pin = database.mvcc.lsn
        rid2 = database.insert("T", {"ID": 2})
        database.update("T", rid1, {"V": "touched"})
        assert table.changed_rowids_since(pin) == {rid1, rid2}
        assert table.changed_rowids_since(database.mvcc.lsn) == set()


class TestTransactionPin:
    def test_snapshot_during_transaction_pins_txn_begin(
        self, database, table
    ):
        rid = database.insert("T", {"ID": 1, "V": "committed"})
        with database.begin():
            database.update("T", rid, {"V": "in-flight"})
            with database.open_snapshot() as snap:
                # The snapshot must not see any of the open transaction.
                assert table.visible_row(rid, snap.lsn)["V"] == "committed"
        with database.open_snapshot() as fresh:
            assert table.visible_row(rid, fresh.lsn)["V"] == "in-flight"

    def test_pin_correct_under_rollback(self, database, table):
        rid = database.insert("T", {"ID": 1, "V": "committed"})
        transaction = database.begin()
        database.update("T", rid, {"V": "doomed"})
        snap = database.open_snapshot()
        transaction.rollback()
        # The compensating statements got LSNs above the pin, so the
        # snapshot still reads the pre-transaction value.
        assert table.visible_row(rid, snap.lsn)["V"] == "committed"
        assert table.fetch(rid)["V"] == "committed"
        snap.release()

    def test_gc_during_transaction_respects_txn_pin(self, database, table):
        rid = database.insert("T", {"ID": 1, "V": "base"})
        with database.begin():
            database.update("T", rid, {"V": "wip"})
            database.vacuum_versions()
            # The txn pin holds the horizon at the pre-txn LSN: the
            # in-flight update's pre-image must survive the sweep so a
            # mid-transaction snapshot still reads the committed value.
            assert table.version_count >= 1
            with database.open_snapshot() as snap:
                assert table.visible_row(rid, snap.lsn)["V"] == "base"


class TestVersionGc:
    def test_vacuum_reclaims_only_unpinned_history(self, database, table):
        rid = database.insert("T", {"ID": 1, "V": "v0"})
        snap = database.open_snapshot()
        database.update("T", rid, {"V": "v1"})
        database.update("T", rid, {"V": "v2"})
        assert table.version_count > 0
        reclaimed_while_pinned = database.vacuum_versions()
        # Entries above the pin must survive: the snapshot still needs
        # them to reconstruct v0.
        assert table.visible_row(rid, snap.lsn)["V"] == "v0"
        snap.release()
        reclaimed_after = database.vacuum_versions()
        assert reclaimed_after > 0
        assert table.version_count == 0
        assert (
            database.mvcc.reclaimed_total
            == reclaimed_while_pinned + reclaimed_after
        )

    def test_auto_vacuum_bounds_history_without_pins(self, database, table):
        rid = database.insert("T", {"ID": 1, "V": "x"})
        for index in range(AUTO_VACUUM_INTERVAL + 2):
            database.update("T", rid, {"V": f"x{index}"})
        # Un-pinned history collapses at the interval sweep; whatever
        # remains is bounded by the statements since the last sweep.
        assert table.version_count <= AUTO_VACUUM_INTERVAL + 2
        database.vacuum_versions()
        assert table.version_count == 0

    def test_gc_horizon_tracks_oldest_pin(self, database):
        mvcc = database.mvcc
        database.insert("T", {"ID": 1})
        first = database.open_snapshot()
        database.insert("T", {"ID": 2})
        second = database.open_snapshot()
        assert mvcc.gc_horizon() == first.lsn
        first.release()
        assert mvcc.gc_horizon() == second.lsn
        second.release()
        assert mvcc.gc_horizon() == mvcc.lsn


class TestMvccState:
    def test_single_writer_tripwire(self):
        state = MvccState()
        state.begin_statement()
        with pytest.raises(TransactionError):
            state.begin_statement()
        state.commit_statement(1)
        assert state.begin_statement() == 2

    def test_release_is_idempotent(self, database):
        snap = database.open_snapshot()
        snap.release()
        snap.release()
        assert database.mvcc.active_snapshots == 0

    def test_active_snapshot_gauges(self, database):
        previous = obs.push_registry()
        try:
            database.insert("T", {"ID": 1})
            with database.open_snapshot():
                database.insert("T", {"ID": 2})
                with database.open_snapshot():
                    # Reopen under load: the gauges reflect both pins and
                    # the age of the oldest one.
                    database.open_snapshot().release()
                    snapshot = obs.snapshot()
                    assert snapshot["repro_mvcc_active_snapshots"] == 2
                    assert (
                        snapshot["repro_mvcc_oldest_snapshot_age_lsns"] == 1
                    )
            assert obs.snapshot()["repro_mvcc_active_snapshots"] == 0
        finally:
            obs.set_registry(previous)

    def test_absent_sentinel_repr(self):
        assert repr(ABSENT) == "ABSENT"


class TestSeqlockReaders:
    def test_concurrent_reader_never_sees_torn_state(self, database, table):
        """A reader hammering visible_row during writes sees only committed
        values — the seqlock retries across mid-statement windows."""
        rid = database.insert("T", {"ID": 1, "V": "gen0"})
        pin = database.mvcc.lsn
        stop = threading.Event()
        seen: set[str] = set()
        errors: list[BaseException] = []

        def read_loop():
            try:
                while not stop.is_set():
                    row = table.visible_row(rid, pin)
                    seen.add(row["V"])
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            for generation in range(200):
                database.update("T", rid, {"V": f"gen{generation + 1}"})
        finally:
            stop.set()
            reader.join()
        assert not errors
        # The pin predates every update: the reader saw gen0, only gen0.
        assert seen == {"gen0"}
