"""Converter registry: dispatch by extension and by content sniffing."""

import pytest

from repro.converters import (
    HtmlConverter,
    MarkdownConverter,
    PdfConverter,
    PlainTextConverter,
    SlidesConverter,
    SpreadsheetConverter,
    WordDocConverter,
    XmlConverter,
    convert,
    registry,
)
from repro.converters.base import Converter, ConverterRegistry
from repro.errors import ConverterError, UnsupportedFormatError


class TestDispatch:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("a.ndoc", WordDocConverter),
            ("a.doc", WordDocConverter),
            ("a.npdf", PdfConverter),
            ("a.pdf", PdfConverter),
            ("a.nppt", SlidesConverter),
            ("a.ppt", SlidesConverter),
            ("a.csv", SpreadsheetConverter),
            ("a.tsv", SpreadsheetConverter),
            ("a.html", HtmlConverter),
            ("a.htm", HtmlConverter),
            ("a.md", MarkdownConverter),
            ("a.txt", PlainTextConverter),
            ("a.xml", XmlConverter),
        ],
    )
    def test_extension_dispatch(self, name, expected):
        assert isinstance(registry.for_name(name), expected)

    def test_extension_case_insensitive(self):
        assert isinstance(registry.for_name("A.NDOC"), WordDocConverter)

    def test_sniff_ndoc_without_extension(self):
        converter = registry.resolve("mystery", "{\\ndoc1}\n{\\style Title}X\n")
        assert isinstance(converter, WordDocConverter)

    def test_sniff_npdf(self):
        converter = registry.resolve("mystery", "%NPDF-1.0\n[F10] x\n")
        assert isinstance(converter, PdfConverter)

    def test_sniff_html(self):
        converter = registry.resolve("mystery", "<!DOCTYPE html><html></html>")
        assert isinstance(converter, HtmlConverter)

    def test_sniff_markdown(self):
        converter = registry.resolve("mystery", "# Heading\n\nbody\n")
        assert isinstance(converter, MarkdownConverter)

    def test_plain_text_is_fallback(self):
        converter = registry.resolve("mystery", "nothing special here")
        assert isinstance(converter, PlainTextConverter)

    def test_markup_with_unknown_extension_is_xml(self):
        converter = registry.resolve("mystery.bin", "<root><x/></root>")
        assert isinstance(converter, XmlConverter)

    def test_formats_inventory(self):
        formats = registry.formats()
        assert {"word", "pdf", "slides", "spreadsheet", "html", "markdown",
                "text", "xml"} <= set(formats)


class TestRegistryIsolation:
    def test_duplicate_extension_rejected(self):
        fresh = ConverterRegistry()

        class A(Converter):
            format_name = "a"
            extensions = ("zzz",)

        class B(Converter):
            format_name = "b"
            extensions = ("zzz",)

        fresh.register(A())
        with pytest.raises(ConverterError):
            fresh.register(B())

    def test_unresolvable_raises(self):
        fresh = ConverterRegistry()
        with pytest.raises(UnsupportedFormatError):
            fresh.resolve("x.unknown", "plain words")


class TestCanonicalShape:
    def test_every_format_produces_document_root(self):
        samples = {
            "a.ndoc": "{\\ndoc1}\n{\\style Heading1}H\n{\\style Normal}B\n",
            "a.npdf": "%NPDF-1.0\n[F14] H\n[F10] B\n[F10] B2\n",
            "a.md": "# H\n\nB\n",
            "a.nppt": "#NPPT\n== Slide 1: H ==\n* B\n",
            "a.csv": "K,V\nH,B\n",
            "a.txt": "H\n===\nB\n",
            "a.html": "<html><body><h1>H</h1><p>B</p></body></html>",
        }
        for name, text in samples.items():
            document = convert(text, name)
            assert document.root.tag == "document", name
            contexts = document.find_all("context")
            assert contexts, f"{name} produced no contexts"
            assert any(
                context.text_content().strip() == "H" for context in contexts
            ), name

    def test_metadata_always_has_format(self):
        document = convert("# H\nbody\n", "n.md")
        assert document.metadata["format"] == "markdown"
        assert document.metadata["char_size"] > 0
