"""Per-format upmark behaviour."""

import pytest

from repro.converters import convert
from repro.converters.pdfdoc import PdfConverter
from repro.converters.plaintext import PlainTextConverter
from repro.converters.spreadsheet import parse_delimited
from repro.converters.worddoc import WordDocConverter
from repro.errors import ConverterError


def sections_of(document):
    """[(context title, [content texts])] of a canonical document."""
    result = []
    for section in document.find_all("section"):
        context = section.find("context")
        contents = [
            content.text_content().strip()
            for content in section.find_all("content")
        ]
        result.append((context.text_content().strip(), contents))
    return result


class TestWordDoc:
    def test_styles_to_sections(self):
        text = (
            "{\\ndoc1}\n"
            "{\\style Title}My Title\n"
            "{\\style Heading1}Alpha\n"
            "{\\style Normal}Body one.\n"
            "{\\style Heading2}Beta\n"
            "{\\style Normal}Body two.\n"
        )
        sections = sections_of(convert(text, "t.ndoc"))
        assert sections[0][0] == "My Title"
        assert sections[1] == ("Alpha", ["Body one."])
        assert sections[2] == ("Beta", ["Body two."])

    def test_heading_levels_recorded(self):
        text = "{\\ndoc1}\n{\\style Heading3}Deep\n{\\style Normal}x\n"
        document = convert(text, "t.ndoc")
        section = document.find("section")
        assert section.get("level") == "3"

    def test_meta_directives(self):
        text = "{\\ndoc1}\n{\\meta author Grace Hopper}\n{\\style Normal}x\n"
        document = convert(text, "t.ndoc")
        assert document.metadata["author"] == "Grace Hopper"

    def test_continuation_lines_join_section(self):
        text = "{\\ndoc1}\n{\\style Heading1}H\n{\\style Normal}a\nb-continued\n"
        sections = sections_of(convert(text, "t.ndoc"))
        assert sections[0][1] == ["a", "b-continued"]

    def test_missing_magic_raises(self):
        with pytest.raises(ConverterError):
            WordDocConverter().convert("no magic", "t.ndoc")

    def test_unknown_directive_raises(self):
        with pytest.raises(ConverterError):
            convert("{\\ndoc1}\n{\\frobnicate x}y\n", "t.ndoc")

    def test_emphasis_becomes_intense(self):
        text = "{\\ndoc1}\n{\\style Normal}plain **bold** tail\n"
        document = convert(text, "t.ndoc")
        bold = document.find("b")
        assert bold is not None and bold.text_content() == "bold"


class TestPdf:
    def test_font_ranking(self):
        text = (
            "%NPDF-1.0\n[F20] Title\n[F14] Section\n"
            "[F10] body body body.\n[F10] more body text here.\n"
        )
        sections = sections_of(convert(text, "t.npdf"))
        assert [title for title, _ in sections] == ["Title", "Section"]

    def test_tie_breaks_toward_smaller_body(self):
        # Equal line counts; body carries more characters.
        text = (
            "%NPDF-1.0\n[F14] Head\n"
            "[F10] a very long body line with many characters\n"
        )
        sections = sections_of(convert(text, "t.npdf"))
        assert sections[0][0] == "Head"

    def test_blank_line_splits_paragraphs(self):
        text = "%NPDF-1.0\n[F14] H\n[F10] one\n\n[F10] two\n"
        sections = sections_of(convert(text, "t.npdf"))
        assert sections[0][1] == ["one", "two"]

    def test_unmarked_line_raises(self):
        with pytest.raises(ConverterError):
            convert("%NPDF-1.0\nno marker\n", "t.npdf")

    def test_missing_magic_raises(self):
        with pytest.raises(ConverterError):
            PdfConverter().convert("[F10] x", "t.npdf")

    def test_empty_body_ok(self):
        document = convert("%NPDF-1.0\n", "t.npdf")
        assert document.root.tag == "document"


class TestSlides:
    def test_slides_to_sections(self):
        text = (
            "#NPPT\n== Slide 1: One ==\n* a\n* b\n"
            "== Slide 2: Two ==\nfree text\nnotes: speak slowly\n"
        )
        sections = sections_of(convert(text, "t.nppt"))
        assert sections[0] == ("One", ["a", "b"])
        assert sections[1][0] == "Two"
        assert "Speaker notes: speak slowly" in sections[1][1]

    def test_slide_title_without_number(self):
        text = "#NPPT\n== Just A Title ==\n* x\n"
        sections = sections_of(convert(text, "t.nppt"))
        assert sections[0][0] == "Just A Title"

    def test_missing_magic_raises(self):
        with pytest.raises(ConverterError):
            convert("== Slide 1: X ==\n", "deck.nppt")


class TestSpreadsheet:
    def test_rows_become_sections(self):
        sections = sections_of(
            convert("Item,FY04\nTravel,1000\nEquipment,2000\n", "b.csv")
        )
        assert sections == [
            ("Travel", ["FY04: 1000"]),
            ("Equipment", ["FY04: 2000"]),
        ]

    def test_quoted_fields(self):
        rows = parse_delimited('a,"b,c","d""e"\n')
        assert rows == [["a", "b,c", 'd"e']]

    def test_quoted_newline(self):
        rows = parse_delimited('"line1\nline2",x\n')
        assert rows == [["line1\nline2", "x"]]

    def test_unterminated_quote_raises(self):
        with pytest.raises(ConverterError):
            parse_delimited('"never closed')

    def test_tsv_by_extension_and_sniff(self):
        sections = sections_of(convert("K\tV\nRow\t9\n", "t.tsv"))
        assert sections == [("Row", ["V: 9"])]
        sections = sections_of(convert("K\tV\nRow\t9\n", "t.csv"))
        assert sections == [("Row", ["V: 9"])]

    def test_empty_values_skipped(self):
        sections = sections_of(convert("K,A,B\nRow,,x\n", "t.csv"))
        assert sections == [("Row", ["B: x"])]

    def test_metadata_counts(self):
        document = convert("K,V\na,1\nb,2\n", "t.csv")
        assert document.metadata["row_count"] == 2
        assert document.metadata["column_count"] == 2


class TestPlainText:
    def test_underlined_headings(self):
        text = "Main\n====\nbody one\n\nSub\n---\nbody two\n"
        sections = sections_of(convert(text, "t.txt"))
        assert sections[0] == ("Main", ["body one"])
        assert sections[1] == ("Sub", ["body two"])

    def test_numbered_headings(self):
        text = "1. Introduction\nhello\n2.1 Details\nworld\n"
        sections = sections_of(convert(text, "t.txt"))
        assert sections[0][0] == "Introduction"
        assert sections[1][0] == "Details"

    def test_all_caps_heading(self):
        text = "ABSTRACT\nThis works.\n"
        sections = sections_of(convert(text, "t.txt"))
        assert sections[0] == ("Abstract", ["This works."])

    def test_untitled_preamble_gets_filename_context(self):
        text = "Just a paragraph with no heading at all.\n"
        document = convert(text, "readme.txt")
        contexts = document.find_all("context")
        assert contexts[0].text_content() == "readme"
        assert contexts[0].synthetic

    def test_sniff_rejects_markup(self):
        assert not PlainTextConverter().sniff("<xml/>")


class TestMarkdown:
    def test_atx_and_setext(self):
        text = "# One\n\nalpha\n\nTwo\n===\nbeta\n"
        sections = sections_of(convert(text, "t.md"))
        assert [title for title, _ in sections] == ["One", "Two"]

    def test_fenced_code_preserved_as_block(self):
        text = "# H\n\n```\ncode line\nsecond\n```\n"
        sections = sections_of(convert(text, "t.md"))
        assert sections[0][1] == ["code line\nsecond"]

    def test_bullets_become_blocks(self):
        sections = sections_of(convert("# H\n- a\n- b\n", "t.md"))
        assert sections[0][1] == ["a", "b"]


class TestHtml:
    def test_heading_hierarchy(self):
        html = (
            "<html><body><h1>Top</h1><p>a</p>"
            "<h2>Nested</h2><p>b</p></body></html>"
        )
        document = convert(html, "t.html")
        sections = sections_of(document)
        assert sections == [("Top", ["a"]), ("Nested", ["b"])]
        nested = document.find_all("section")[1]
        assert nested.get("level") == "2"

    def test_title_in_metadata(self):
        html = "<html><head><title>Page T</title></head><body></body></html>"
        document = convert(html, "t.html")
        assert document.metadata["title"] == "Page T"

    def test_emphasis_survives_as_intense(self):
        html = "<body><h1>H</h1><p>go <b>fast</b> now</p></body>"
        document = convert(html, "t.html")
        assert document.find("b").text_content() == "fast"

    def test_script_and_style_skipped(self):
        html = (
            "<body><h1>H</h1><script>var x=1;</script>"
            "<style>p{}</style><p>real</p></body>"
        )
        sections = sections_of(convert(html, "t.html"))
        assert sections == [("H", ["real"])]

    def test_list_items_become_blocks(self):
        html = "<body><h1>H</h1><ul><li>a</li><li>b</li></ul></body>"
        sections = sections_of(convert(html, "t.html"))
        assert sections[0][1] == ["a", "b"]


class TestXmlPassthrough:
    def test_structure_preserved(self):
        xml = "<inventory><part id='7'>bolt</part></inventory>"
        document = convert(xml.replace("'", '"'), "t.xml")
        assert document.root.tag == "inventory"
        assert document.find("part").get("id") == "7"

    def test_strict_parse_errors_propagate(self):
        from repro.errors import SgmlSyntaxError

        with pytest.raises(SgmlSyntaxError):
            convert("<a><b></a>", "t.xml")
