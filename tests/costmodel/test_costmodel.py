"""Cost model: measured artifact curves and the Fig 1 shapes."""

from repro.costmodel import (
    GrowthScenario,
    artifact_curves,
    build_gav_integration,
    build_netmark_integration,
    consumer_cost_curves,
    gav_marginal_cost,
    is_linear_growth,
    netmark_marginal_cost,
    shows_economies_of_scale,
)


class TestMeasuredArtifacts:
    def test_gav_artifacts_grow_linearly_in_sources(self):
        builds = [build_gav_integration(k)[1] for k in (2, 4, 8)]
        deltas = [
            later.artifacts - earlier.artifacts
            for earlier, later in zip(builds, builds[1:])
        ]
        # Constant per-source increment => linear growth.
        per_source = [
            delta / (later.sources - earlier.sources)
            for delta, (earlier, later) in zip(deltas, zip(builds, builds[1:]))
        ]
        assert len(set(per_source)) == 1
        assert per_source[0] >= 4  # schema + 2 relations + 2 mapping rules

    def test_netmark_artifacts_one_per_source(self):
        for count in (2, 5, 9):
            _, build = build_netmark_integration(count)
            assert build.artifacts == count
            assert build.spec_lines == count

    def test_gap_widens_with_scale(self):
        curves = artifact_curves([2, 8, 16])
        ratios = [
            gav.spec_lines / netmark.spec_lines
            for gav, netmark in zip(curves["gav"], curves["netmark"])
        ]
        absolute_gaps = [
            gav.spec_lines - netmark.spec_lines
            for gav, netmark in zip(curves["gav"], curves["netmark"])
        ]
        assert all(ratio > 20 for ratio in ratios)  # order of magnitude
        assert absolute_gaps == sorted(absolute_gaps)  # widens with scale
        assert absolute_gaps[-1] > 4 * absolute_gaps[0]

    def test_gav_mediator_actually_works(self):
        # The ledger must be from a *working* integration, not a mock.
        mediator, _ = build_gav_integration(3)
        assert mediator.query("G_DOCS") == []  # empty extensions, no error


class TestFig1Curves:
    def test_gav_is_linear(self):
        curves = consumer_cost_curves()
        assert is_linear_growth(curves["gav"])

    def test_netmark_shows_economies_of_scale(self):
        curves = consumer_cost_curves()
        assert shows_economies_of_scale(curves["netmark"], curves["gav"])
        # The linear trend can never be 5x below itself.
        assert not shows_economies_of_scale(curves["gav"], curves["gav"])

    def test_scaling_advantage_is_order_of_magnitude(self):
        from repro.costmodel import scaling_advantage

        curves = consumer_cost_curves()
        assert scaling_advantage(curves["gav"], curves["netmark"]) > 10

    def test_netmark_always_cheaper(self):
        curves = consumer_cost_curves()
        for gav_point, netmark_point in zip(curves["gav"], curves["netmark"]):
            assert netmark_point.cumulative_cost < gav_point.cumulative_cost

    def test_marginal_costs(self):
        # Steady state: a new app that reuses sources.
        assert netmark_marginal_cost(0, 6) == 7  # databank + 6 lines
        assert gav_marginal_cost(0, 6) > 50      # views + 12 mapping rules

    def test_scenario_new_sources(self):
        scenario = GrowthScenario()
        assert scenario.new_sources(0) == scenario.sources_per_app
        assert scenario.new_sources(3) == 1

    def test_cost_per_consumer_direction(self):
        curves = consumer_cost_curves(GrowthScenario(applications=10))
        netmark = curves["netmark"]
        assert netmark[-1].cost_per_consumer < netmark[0].cost_per_consumer
        # GAV's per-consumer cost converges to its (large) marginal cost,
        # never to NETMARK's levels.
        gav = curves["gav"]
        assert gav[-1].cost_per_consumer > 10 * netmark[-1].cost_per_consumer
