"""The perf gate gates: synthetic regressions must fail, noise must not.

``benchmarks/`` is a script directory, not a package, so the gate module
is loaded by file path.  The tests run the real ``check``/``main`` code
against fixture artifacts seeded with known perturbations — an exact
counter bumped by one, a timing float doubled, a ratio nudged inside
tolerance — and assert which of those the gate catches.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = (
    Path(__file__).resolve().parent.parent.parent
    / "benchmarks"
    / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


BASELINE = {
    "limit_pushdown": {
        "byte_identical": True,
        "call_reduction": 7.81,
        "documents": 400,
        "lazy_table_calls": 32,
        "queries_per_second": 20.0,
        "query": "Context=Budget&limit=5",
        "outcomes": [{"matches": 4, "status": "partial"}],
    },
    "result_cache": {
        "ratchet_speedup_floor": 5.0,
        "hot_hit_table_calls": 0,
    },
}


def _write(directory: Path, name: str, payload: dict) -> None:
    (directory / name).write_text(json.dumps(payload))


@pytest.fixture()
def dirs(tmp_path: Path) -> tuple[Path, Path]:
    fresh = tmp_path / "fresh"
    baselines = tmp_path / "baselines"
    fresh.mkdir()
    baselines.mkdir()
    _write(baselines, "BENCH_fig6.json", BASELINE)
    return fresh, baselines


def _gate(fresh: Path, baselines: Path, **kwargs):
    return gate.check(fresh, baselines, artifacts=("BENCH_fig6.json",), **kwargs)


class TestGateVerdicts:
    def test_identical_run_passes(self, dirs):
        fresh, baselines = dirs
        _write(fresh, "BENCH_fig6.json", BASELINE)
        deltas, errors = _gate(fresh, baselines)
        assert not errors
        assert all(d.status == "ok" for d in deltas)

    def test_counter_drift_is_a_regression(self, dirs):
        """Exact tier: a work counter off by one must fail the gate."""
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["limit_pushdown"]["lazy_table_calls"] = 33
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines)
        failed = [d for d in deltas if d.failed]
        assert [d.path for d in failed] == ["limit_pushdown.lazy_table_calls"]

    def test_flag_flip_is_a_regression(self, dirs):
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["limit_pushdown"]["byte_identical"] = False
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines)
        assert any(
            d.failed and d.path == "limit_pushdown.byte_identical"
            for d in deltas
        )

    def test_timing_noise_is_reported_not_gated(self, dirs):
        """A halved QPS on a shared runner is drift, not failure."""
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["limit_pushdown"]["queries_per_second"] = 10.0
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines)
        assert not any(d.failed for d in deltas)
        assert any(
            d.status == "drift"
            and d.path == "limit_pushdown.queries_per_second"
            for d in deltas
        )

    def test_gate_timings_turns_drift_into_failure(self, dirs):
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["limit_pushdown"]["queries_per_second"] = 10.0
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines, gate_timings=True)
        assert any(
            d.failed and d.path == "limit_pushdown.queries_per_second"
            for d in deltas
        )

    def test_ratio_within_tolerance_passes(self, dirs):
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["limit_pushdown"]["call_reduction"] = 7.81 * 1.1
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines)
        assert not any(d.failed for d in deltas)

    def test_ratio_beyond_tolerance_is_a_regression(self, dirs):
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["limit_pushdown"]["call_reduction"] = 7.81 * 2
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines)
        assert any(
            d.failed and d.path == "limit_pushdown.call_reduction"
            for d in deltas
        )

    def test_missing_key_is_a_regression_new_key_is_not(self, dirs):
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        del perturbed["limit_pushdown"]["documents"]
        perturbed["limit_pushdown"]["brand_new_metric"] = 1
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines)
        by_path = {d.path: d.status for d in deltas}
        assert by_path["limit_pushdown.documents"] == "REGRESSION"
        assert by_path["limit_pushdown.brand_new_metric"] == "new"

    def test_ratchet_floor_may_hold_or_rise(self, dirs):
        """Monotone tier: equal and higher floors both pass."""
        fresh, baselines = dirs
        for floor in (5.0, 9.0):
            perturbed = json.loads(json.dumps(BASELINE))
            perturbed["result_cache"]["ratchet_speedup_floor"] = floor
            _write(fresh, "BENCH_fig6.json", perturbed)
            deltas, _ = _gate(fresh, baselines)
            assert not any(
                d.failed and d.path == "result_cache.ratchet_speedup_floor"
                for d in deltas
            )

    def test_lowered_ratchet_floor_is_a_regression(self, dirs):
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["result_cache"]["ratchet_speedup_floor"] = 4.9
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines)
        assert any(
            d.failed and d.path == "result_cache.ratchet_speedup_floor"
            for d in deltas
        )

    def test_ratchet_keys_have_no_timing_exemption(self, dirs):
        """Even a timing-suffixed ratchet key gates without --gate-timings."""
        fresh, baselines = dirs
        seeded = json.loads(json.dumps(BASELINE))
        seeded["result_cache"]["ratchet_hot_queries_per_second"] = 100.0
        _write(baselines, "BENCH_fig6.json", seeded)
        perturbed = json.loads(json.dumps(seeded))
        perturbed["result_cache"]["ratchet_hot_queries_per_second"] = 50.0
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines)
        assert any(
            d.failed
            and d.path == "result_cache.ratchet_hot_queries_per_second"
            for d in deltas
        )

    def test_list_shrink_is_a_regression(self, dirs):
        """Dropped outcome rows change the list length (an exact int)."""
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["limit_pushdown"]["outcomes"] = []
        _write(fresh, "BENCH_fig6.json", perturbed)
        deltas, _ = _gate(fresh, baselines)
        assert any(
            d.failed and d.path == "limit_pushdown.outcomes.len"
            for d in deltas
        )


class TestCli:
    def test_missing_fresh_artifact_errors(self, dirs):
        fresh, baselines = dirs
        deltas, errors = _gate(fresh, baselines)
        assert not deltas
        assert errors and "missing" in errors[0]

    def test_main_exit_codes(self, dirs, capsys):
        fresh, baselines = dirs
        common = [
            "--fresh-dir", str(fresh),
            "--baseline-dir", str(baselines),
            "BENCH_fig6.json",
        ]
        _write(fresh, "BENCH_fig6.json", BASELINE)
        assert gate.main(common) == 0
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["limit_pushdown"]["lazy_table_calls"] = 99
        _write(fresh, "BENCH_fig6.json", perturbed)
        assert gate.main(common) == 1
        out = capsys.readouterr()
        assert "lazy_table_calls" in out.out
        assert "FAIL" in out.err

    def test_update_baselines_round_trip(self, dirs, capsys):
        fresh, baselines = dirs
        perturbed = json.loads(json.dumps(BASELINE))
        perturbed["limit_pushdown"]["lazy_table_calls"] = 99
        _write(fresh, "BENCH_fig6.json", perturbed)
        common = [
            "--fresh-dir", str(fresh),
            "--baseline-dir", str(baselines),
            "BENCH_fig6.json",
        ]
        assert gate.main(common) == 1
        capsys.readouterr()
        assert gate.main(common + ["--update-baselines"]) == 0
        assert gate.main(common) == 0

    def test_real_committed_baselines_pass(self):
        """The repo's own artifacts must satisfy the committed baselines."""
        fresh = gate.REPO_ROOT
        baselines = gate.BASELINE_DIR
        present = [
            name for name in gate.GATED_ARTIFACTS
            if (fresh / name).exists() and (baselines / name).exists()
        ]
        if not present:  # pragma: no cover - artifacts not generated yet
            pytest.skip("figure artifacts not generated in this checkout")
        deltas, errors = gate.check(
            fresh, baselines, artifacts=tuple(present)
        )
        assert not errors
        assert not [d for d in deltas if d.failed]
