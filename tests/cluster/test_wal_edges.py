"""WAL edge cases that only shipping exposes.

Three corners of the durability contract, now reachable from a second
machine's perspective: a follower's torn tail (it died mid-batch), a
follower's mid-log corruption (its disk went bad — quarantine, don't
crash the cluster), and catch-up idempotence across a coordinator
checkpoint.
"""

import pytest

from repro.cluster import FollowerReplica, NetmarkCluster
from repro.errors import (
    CorruptLogError,
    CrashError,
    ReplicaQuarantinedError,
)
from repro.ordbms.wal import MemoryLogDevice, parse_log
from repro.resilience import FaultPlan


class TestTornTailAtFollower:
    def test_follower_killed_mid_batch_recovers_to_durable_prefix(self):
        plan = FaultPlan()
        device = plan.wrap_log_device(MemoryLogDevice(), "wal-n2")
        cluster = NetmarkCluster(
            ["n1", "n2", "n3"], devices={"n2": device}
        )
        cluster.ingest("a.md", "# A\n\nalpha\n")
        acked = cluster.nodes["n2"].acked_lsn
        # The next shipped append tears: half a record reaches the disk.
        plan.fail("wal-n2", "append", kind="torn", times=1)
        cluster.ingest("b.md", "# B\n\nbeta\n")  # n2 dies mid-batch
        assert not cluster.network.alive("n2")
        _, torn = parse_log(device.read_log())
        assert torn is not None
        cluster.revive("n2")
        replica = cluster.nodes["n2"].replica
        assert replica is not None and replica.torn_tail
        assert replica.acked_lsn == acked  # trimmed to the durable prefix
        cluster.catch_up("n2")
        dumps = cluster.dumps()
        assert len(dumps) == 3 and len(set(dumps.values())) == 1

    def test_torn_tail_records_are_reshipped_not_doubled(self):
        plan = FaultPlan()
        device = plan.wrap_log_device(MemoryLogDevice(), "wal-n2")
        cluster = NetmarkCluster(
            ["n1", "n2", "n3"], devices={"n2": device}
        )
        # Tear partway into the first shipped batch (rules count from
        # installation, so bootstrap appends are not affected).
        plan.fail("wal-n2", "append", kind="torn", after=1, times=1)
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.revive("n2")
        cluster.catch_up("n2")
        records, torn = parse_log(device.read_log())
        assert torn is None
        lsns = [record.lsn for record in records]
        assert lsns == sorted(set(lsns))  # no duplicate appends


class TestQuarantine:
    def corrupt_mid_log(self, device):
        """Damage an early record while leaving the tail intact."""
        lines = device.read_log().splitlines(keepends=True)
        assert len(lines) >= 3
        lines[1] = lines[1].replace("|", "!", 1)
        device.truncate_log()
        for line in lines:
            device.append(line)

    def test_corrupt_replica_is_quarantined_not_fatal(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n2")
        self.corrupt_mid_log(cluster.nodes["n2"].device)
        cluster.revive("n2")  # reopen hits CorruptLogError
        assert cluster.nodes["n2"].quarantine is not None
        assert cluster.role_of("n2") == "quarantined"
        assert cluster.stats.quarantines == 1
        # The cluster keeps serving reads and writes around it.
        cluster.ingest("b.md", "# B\n\nbeta\n")
        assert len(cluster.search("content=beta")) == 1

    def test_quarantined_replica_rejects_catch_up(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n2")
        self.corrupt_mid_log(cluster.nodes["n2"].device)
        cluster.revive("n2")
        with pytest.raises(ReplicaQuarantinedError, match="rejoin"):
            cluster.catch_up("n2")

    def test_rejoin_replaces_the_corrupt_log_wholesale(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n2")
        self.corrupt_mid_log(cluster.nodes["n2"].device)
        cluster.revive("n2")
        cluster.rejoin("n2")
        assert cluster.nodes["n2"].quarantine is None
        assert cluster.nodes["n2"].in_sync
        dumps = cluster.dumps()
        assert len(dumps) == 3 and len(set(dumps.values())) == 1
        # The replaced log parses cleanly again.
        records, torn = parse_log(cluster.nodes["n2"].device.read_log())
        assert torn is None

    def test_quarantined_node_cannot_win_elections(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"], heartbeat_timeout=2)
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n2")
        self.corrupt_mid_log(cluster.nodes["n2"].device)
        cluster.revive("n2")
        assert cluster.nodes["n2"].quarantine is not None
        cluster.kill("n1")
        cluster.tick(4)
        assert cluster.coordinator == "n3"


class TestCheckpointIdempotentCatchUp:
    def test_catch_up_after_checkpoint_is_idempotent(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n2")
        cluster.ingest("b.md", "# B\n\nbeta\n")
        cluster.checkpoint()
        cluster.revive("n2")
        first = cluster.catch_up("n2")
        second = cluster.catch_up("n2")  # nothing new: same ack, no churn
        assert first == second
        dumps = cluster.dumps()
        assert len(dumps) == 3 and len(set(dumps.values())) == 1

    def test_direct_overlap_reapply_is_a_no_op(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        shipper = cluster._shipper()
        replica = cluster.nodes["n2"].replica
        before = replica.dump()
        replica.apply_batch(shipper.batch_after(0))  # full overlap
        assert replica.dump() == before

    def test_follower_compaction_survives_reopen(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        node = cluster.nodes["n2"]
        node.replica.compact()
        reopened = FollowerReplica("n2", node.device)
        assert reopened.dump() == cluster.nodes["n1"].store.dump()


class TestCrashErrorStaysFatalOutsideTheCluster:
    def test_raw_store_still_dies_on_injected_crash(self):
        """CrashError models SIGKILL: only NetmarkCluster (the OS
        stand-in) may catch it.  A bare store must not survive it."""
        plan = FaultPlan()
        device = plan.wrap_log_device(MemoryLogDevice(), "wal")
        from repro.sgml.config import DEFAULT_CONFIG
        from repro.store.xmlstore import XmlStore

        store = XmlStore.open(device, DEFAULT_CONFIG)
        plan.fail("wal", "append", kind="crash", times=1)
        with pytest.raises(CrashError):
            store.store_text("# A\n\nalpha\n", "a.md")

    def test_corrupt_log_error_propagates_from_bare_replica(self):
        cluster = NetmarkCluster(["n1", "n2"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        device = cluster.nodes["n2"].device
        lines = device.read_log().splitlines(keepends=True)
        lines[1] = lines[1].replace("|", "!", 1)
        device.truncate_log()
        for line in lines:
            device.append(line)
        with pytest.raises(CorruptLogError):
            FollowerReplica("n2", device)
