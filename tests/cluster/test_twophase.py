"""Two-phase commit: votes, decisions, crash recovery, idempotence."""

import pytest

from repro.cluster import (
    DecisionLog,
    StoreParticipant,
    TwoPhaseCoordinator,
)
from repro.cluster.harness import twopc_crash_matrix
from repro.cluster.twophase import ABORT, COMMIT, DIGEST_KEY
from repro.errors import TwoPhaseError
from repro.ordbms.wal import MemoryLogDevice
from repro.store.xmlstore import XmlStore

DOC = ("memo.md", "# Memo\n\ntwo stores, one truth\n")


def build_rig(count=2):
    stores = {f"s{i}": XmlStore() for i in range(1, count + 1)}
    participants = {
        name: StoreParticipant(name, store)
        for name, store in stores.items()
    }
    journal = DecisionLog(MemoryLogDevice())
    return stores, participants, journal


class TestHappyPath:
    def test_commit_lands_on_every_participant(self):
        stores, participants, journal = build_rig()
        outcome = TwoPhaseCoordinator(journal, participants).ingest(
            "g1", *DOC
        )
        assert outcome.outcome == COMMIT
        assert outcome.votes == {"s1": True, "s2": True}
        for store in stores.values():
            assert store.lookup_by_name(DOC[0]) is not None

    def test_commit_is_idempotent_by_digest(self):
        stores, participants, journal = build_rig()
        coordinator = TwoPhaseCoordinator(journal, participants)
        first = coordinator.ingest("g1", *DOC)
        again = coordinator.ingest("g2", *DOC)
        assert all(doc_id is not None for doc_id in first.applied.values())
        assert all(doc_id is None for doc_id in again.applied.values())
        entry = stores["s1"].lookup_by_name(DOC[0])
        assert DIGEST_KEY in entry.metadata

    def test_one_no_vote_aborts_everywhere(self):
        stores, participants, journal = build_rig()
        outcome = TwoPhaseCoordinator(journal, participants).ingest(
            "g1", "bad.xml", "<a><b></a>"  # mismatched tags: vote no
        )
        assert outcome.outcome == ABORT
        assert outcome.votes == {"s1": False, "s2": False}
        for store in stores.values():
            assert store.lookup_by_name("bad.xml") is None
        for participant in participants.values():
            assert participant.prepared == ()


class TestJournal:
    def test_lines_are_crc_guarded(self):
        device = MemoryLogDevice()
        journal = DecisionLog(device)
        journal.append("DECIDE", "g1", "commit")
        assert journal.entries() == [("DECIDE", "g1", "commit")]

    def test_torn_tail_is_dropped(self):
        device = MemoryLogDevice()
        journal = DecisionLog(device)
        journal.append("DECIDE", "g1", "commit")
        device.append("DONE g1|deadbeef")  # bad CRC, no newline: torn
        assert journal.entries() == [("DECIDE", "g1", "commit")]

    def test_mid_log_damage_raises(self):
        device = MemoryLogDevice()
        journal = DecisionLog(device)
        journal.append("DECIDE", "g1", "commit")
        device.append("garbage-line|ffffffff\n")
        journal.append("DONE", "g1")
        with pytest.raises(TwoPhaseError, match="damaged mid-log"):
            journal.entries()

    def test_fields_may_not_carry_separators(self):
        journal = DecisionLog(MemoryLogDevice())
        with pytest.raises(TwoPhaseError):
            journal.append("DECIDE", "g 1", "commit")


class TestRecovery:
    def test_undecided_transaction_presumes_abort(self):
        stores, participants, journal = build_rig()
        # Journal a prepare with no decision — the coordinator died.
        from repro.ordbms.valuecodec import pack_row

        journal.append("PREPARE", "g1", "s1", pack_row(DOC))
        actions = TwoPhaseCoordinator(journal, participants).recover()
        assert actions == [("g1", ABORT)]
        assert stores["s1"].lookup_by_name(DOC[0]) is None
        # The abort decision is now durable; recovery is idempotent.
        assert TwoPhaseCoordinator(journal, participants).recover() == []

    def test_decided_commit_is_redelivered_from_the_journal(self):
        stores, participants, journal = build_rig()
        from repro.ordbms.valuecodec import pack_row

        payload = pack_row(DOC)
        journal.append("PREPARE", "g1", "s1", payload)
        journal.append("PREPARE", "g1", "s2", payload)
        journal.append("DECIDE", "g1", COMMIT)
        actions = TwoPhaseCoordinator(journal, participants).recover()
        assert actions == [("g1", COMMIT)]
        for store in stores.values():
            assert store.lookup_by_name(DOC[0]) is not None

    def test_unknown_participant_in_journal_raises(self):
        _, participants, journal = build_rig()
        from repro.ordbms.valuecodec import pack_row

        journal.append("PREPARE", "g1", "ghost", pack_row(DOC))
        journal.append("DECIDE", "g1", COMMIT)
        with pytest.raises(TwoPhaseError, match="ghost"):
            TwoPhaseCoordinator(journal, participants).recover()


class TestCrashMatrix:
    def test_every_crash_point_preserves_atomicity(self):
        matrix = twopc_crash_matrix()
        assert len(matrix.points) == 5  # 2 prepare + 1 decide + 2 commit
        assert all(point.crashed for point in matrix.points)
        assert matrix.all_atomic

    def test_crash_after_decide_still_commits_everywhere(self):
        matrix = twopc_crash_matrix()
        for point in matrix.points:
            if point.operation == "commit":
                assert point.committed_everywhere
            else:
                assert not point.committed_everywhere
