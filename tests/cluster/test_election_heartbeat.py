"""Heartbeats, the simulated network, and bully elections."""

import pytest

from repro.cluster import NetmarkCluster, elect
from repro.errors import ClusterError, NoQuorumError, ResilienceError
from repro.resilience import HeartbeatMonitor, LogicalClock, Network


class TestHeartbeatMonitor:
    def test_alive_within_timeout(self):
        clock = LogicalClock()
        monitor = HeartbeatMonitor(clock, timeout=3)
        monitor.beat("n2")
        clock.advance(3)
        assert monitor.alive("n2")
        clock.advance(1)
        assert not monitor.alive("n2")
        assert monitor.suspects() == ["n2"]

    def test_never_seen_is_not_alive(self):
        monitor = HeartbeatMonitor(LogicalClock(), timeout=3)
        assert not monitor.alive("ghost")

    def test_timeout_must_be_positive(self):
        with pytest.raises(ResilienceError):
            HeartbeatMonitor(LogicalClock(), timeout=0)


class TestNetwork:
    def test_partition_and_heal(self):
        network = Network(LogicalClock(), ["a", "b", "c", "d"])
        network.partition(["a", "b"], ["c", "d"])
        assert network.reachable("a", "b")
        assert not network.reachable("a", "c")
        network.heal()
        assert network.reachable("a", "c")

    def test_partition_must_cover_every_node_once(self):
        network = Network(LogicalClock(), ["a", "b", "c"])
        with pytest.raises(ResilienceError):
            network.partition(["a"], ["b"])  # c missing
        with pytest.raises(ResilienceError):
            network.partition(["a", "b"], ["b", "c"])  # b twice

    def test_dead_nodes_are_unreachable(self):
        network = Network(LogicalClock(), ["a", "b"])
        network.kill("b")
        assert not network.reachable("a", "b")
        assert network.peers_of("a") == []
        network.revive("b")
        assert network.reachable("a", "b")


class TestElection:
    def build(self, names):
        return Network(LogicalClock(), list(names))

    def test_highest_acked_lsn_wins(self):
        network = self.build(["a", "b", "c"])
        record = elect(
            network, "a", {"a": (5, "a"), "b": (9, "b"), "c": (7, "c")}
        )
        assert record.winner == "b"
        assert record.quorum == ("a", "b", "c")
        assert "a->b ELECTION" in record.messages
        assert "b->a ALIVE" in record.messages
        assert record.messages[-1].endswith("COORDINATOR")

    def test_name_breaks_lsn_ties(self):
        network = self.build(["a", "b", "c"])
        record = elect(
            network, "a", {"a": (5, "a"), "b": (5, "b"), "c": (5, "c")}
        )
        assert record.winner == "c"

    def test_minority_partition_cannot_elect(self):
        network = self.build(["a", "b", "c", "d", "e"])
        network.partition(["a", "b"], ["c", "d", "e"])
        with pytest.raises(NoQuorumError):
            elect(network, "a", {"a": (9, "a"), "b": (1, "b")})

    def test_initiator_must_be_eligible(self):
        network = self.build(["a", "b"])
        with pytest.raises(ClusterError):
            elect(network, "ghost", {"a": (1, "a"), "b": (2, "b")})


class TestClusterFailureDetection:
    def test_dead_coordinator_is_detected_and_replaced(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"], heartbeat_timeout=2)
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n1")
        cluster.tick(4)
        assert cluster.coordinator in {"n2", "n3"}
        assert cluster.stats.failovers == 1
        assert cluster.elections[-1].winner == cluster.coordinator

    def test_election_trace_is_deterministic(self):
        def run():
            cluster = NetmarkCluster(
                ["n1", "n2", "n3"], heartbeat_timeout=2
            )
            cluster.ingest("a.md", "# A\n\nalpha\n")
            cluster.kill("n1")
            cluster.tick(4)
            return [
                (r.tick, r.initiator, r.winner, r.messages, r.quorum)
                for r in cluster.elections
            ]

        assert run() == run()

    def test_minority_coordinator_demotes_and_majority_elects(self):
        cluster = NetmarkCluster(
            ["n1", "n2", "n3", "n4", "n5"], heartbeat_timeout=2
        )
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.partition(["n1", "n2"], ["n3", "n4", "n5"])
        cluster.tick(4)
        assert cluster.stats.demotions == 1
        assert cluster.coordinator in {"n3", "n4", "n5"}
        with pytest.raises(NoQuorumError):
            # The write path re-checks quorum even if a stale client
            # talks to the old coordinator's side.
            cluster.partition(["n1"], ["n2"], ["n3"], ["n4"], ["n5"])
            cluster.tick(3)
            cluster.ingest("b.md", "# B\n\nbeta\n")

    def test_grace_period_suppresses_startup_elections(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"], heartbeat_timeout=3)
        cluster.tick(2)  # within the grace window
        assert cluster.coordinator == "n1"
        assert cluster.stats.failovers == 0
