"""HTTP in a cluster: role gates, Retry-After, structured 503 bodies."""

from repro.cluster import NetmarkCluster
from repro.netmark import Netmark


def clustered_node(node_name="n2"):
    cluster = NetmarkCluster(["n1", "n2", "n3"], heartbeat_timeout=2)
    nm = Netmark("edge")
    nm.attach_cluster(cluster.view(node_name))
    return cluster, nm


class TestWriteGate:
    def test_follower_refuses_dav_writes_with_coordinator_hint(self):
        cluster, nm = clustered_node("n2")
        response = nm.api.request("PUT", "/dav/a.md", "# A\n")
        assert response.status == 503
        assert response.header("Retry-After") is not None
        assert 'code="not-coordinator"' in response.body
        assert 'coordinator="n1"' in response.body

    def test_coordinator_accepts_dav_writes(self):
        cluster, nm = clustered_node("n1")
        response = nm.api.request("PUT", "/dav/a.md", "# A\n")
        assert response.ok

    def test_no_coordinator_is_a_retryable_outage(self):
        cluster, nm = clustered_node("n2")
        cluster.kill("n1")  # no election until the timeout expires
        response = nm.api.request("PUT", "/dav/a.md", "# A\n")
        assert response.status == 503
        assert 'code="no-coordinator"' in response.body
        assert response.header("Retry-After") is not None

    def test_gate_follows_failover(self):
        cluster, nm = clustered_node("n2")
        cluster.kill("n1")
        cluster.tick(4)
        if cluster.coordinator == "n2":
            assert nm.api.request("PUT", "/dav/x", "y").ok
        else:
            response = nm.api.request("PUT", "/dav/x", "y")
            assert f'coordinator="{cluster.coordinator}"' in response.body

    def test_reads_pass_on_followers(self):
        cluster, nm = clustered_node("n2")
        assert nm.http_get("/docs").ok


class TestClusterRoute:
    def test_membership_table_renders(self):
        cluster, nm = clustered_node("n2")
        response = nm.http_get("/cluster")
        assert response.ok
        assert 'self="n2"' in response.body
        assert 'coordinator="n1"' in response.body
        assert response.body.count("<node ") == 3
        assert 'role="coordinator"' in response.body

    def test_unclustered_node_reports_disabled(self):
        nm = Netmark("solo")
        response = nm.http_get("/cluster")
        assert response.ok
        assert 'enabled="false"' in response.body

    def test_quarantine_shows_in_the_table(self):
        cluster, nm = clustered_node("n1")
        cluster._quarantine("n3", "corrupt log (test)")
        response = nm.http_get("/cluster")
        assert 'role="quarantined"' in response.body


class TestRetryAfterEverywhere:
    def test_recovering_gate_carries_retry_after(self):
        nm = Netmark("solo")
        nm.api.recovering = True
        response = nm.http_get("/docs")
        assert response.status == 503
        assert response.header("retry-after") is not None  # any case
        assert 'code="recovering"' in response.body
        assert "retry-after=" in response.body  # mirrored in the body

    def test_non_503_responses_carry_no_retry_after(self):
        nm = Netmark("solo")
        assert nm.http_get("/docs").header("Retry-After") is None
        assert nm.http_get("/nope").status == 404
