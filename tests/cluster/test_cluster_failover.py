"""The headline guarantee: no acknowledged ingest survives unreplicated.

These tests drive the same scenario harness the failover benchmark
publishes numbers from (:mod:`repro.cluster.harness`): whole-node kill
matrices over every WAL append, a minority-coordinator partition, and
read availability through the balancer.
"""

import pytest

from repro.cluster import NetmarkCluster
from repro.cluster.harness import (
    coordinator_kill_matrix,
    follower_kill_matrix,
    partition_drill,
)
from repro.errors import AllSourcesFailedError, NoQuorumError


class TestCoordinatorKillMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return coordinator_kill_matrix()

    def test_matrix_covers_every_append_twice(self, matrix):
        assert matrix.total_appends > 0
        assert len(matrix.points) == 2 * matrix.total_appends

    def test_zero_committed_ingest_loss(self, matrix):
        assert matrix.total_lost == 0

    def test_every_point_converges_fsck_clean(self, matrix):
        assert matrix.all_converged
        assert matrix.all_fsck_clean

    def test_failover_happens_within_the_detection_window(self, matrix):
        survived = [p for p in matrix.points if not p.died_at_boot]
        assert survived, "matrix must include post-boot kill points"
        # Detection + election never exceeds timeout + supervision slack.
        assert matrix.max_failover_ticks <= 3 + 2

    def test_workload_completes_after_every_kill(self, matrix):
        for point in matrix.points:
            if point.died_at_boot:
                continue
            assert point.acked == matrix.baseline_acked
            assert point.winner is not None


class TestFollowerKillMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return follower_kill_matrix()

    def test_follower_death_never_costs_an_ack(self, matrix):
        assert matrix.total_lost == 0
        assert matrix.all_converged
        assert matrix.all_fsck_clean

    def test_no_election_is_needed(self, matrix):
        assert matrix.max_failover_ticks == 0


class TestPartitionDrill:
    def test_minority_coordinator_steps_down_without_loss(self):
        drill = partition_drill()
        assert drill.demoted == "n1"
        assert drill.winner not in (None, drill.demoted)
        assert drill.refused_in_minority >= 1
        assert drill.lost == 0
        assert drill.converged
        assert drill.fsck_clean


class TestReadAvailability:
    def test_reads_survive_follower_death(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n3")
        for _ in range(4):  # full rotation over the survivors
            assert len(cluster.search("content=alpha")) == 1

    def test_reads_survive_coordinator_death_after_failover(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"], heartbeat_timeout=2)
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n1")
        cluster.tick(4)
        assert len(cluster.search("content=alpha")) == 1

    def test_balancer_rotates_across_replicas(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        served = set()
        for _ in range(3):
            cluster.search("content=alpha")
            served.add(cluster.balancer.last_served_by)
        assert served == {"n1", "n2", "n3"}

    def test_no_replicas_is_a_clean_outage(self):
        cluster = NetmarkCluster(["n1", "n2"])
        cluster.kill("n1")
        cluster.kill("n2")
        with pytest.raises(AllSourcesFailedError, match="no source answered"):
            cluster.search("content=anything")


class TestWritePath:
    def test_quorum_is_checked_before_the_write(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.kill("n2")
        cluster.kill("n3")
        with pytest.raises(NoQuorumError):
            cluster.ingest("a.md", "# A\n\nalpha\n")
        # The refused write is nowhere: not on the ledger, not in the store.
        assert cluster.ledger == []
        assert cluster.nodes["n1"].store.lookup_by_name("a.md") is None

    def test_revived_ex_coordinator_needs_full_resync(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"], heartbeat_timeout=2)
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n1")
        cluster.tick(4)
        cluster.ingest("b.md", "# B\n\nbeta\n")
        cluster.revive("n1")
        assert cluster.nodes["n1"].needs_resync
        cluster.catch_up("n1")
        dumps = cluster.dumps()
        assert len(dumps) == 3 and len(set(dumps.values())) == 1

    def test_receipts_name_their_witnesses(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.kill("n3")
        receipt = cluster.ingest("a.md", "# A\n\nalpha\n")
        assert receipt.witnesses == ("n1", "n2")
        assert receipt.coordinator == "n1"
