"""WAL shipping and follower replicas: batches, bundles, idempotence."""

import pytest

from repro.cluster import FollowerReplica, LogShipper, NetmarkCluster
from repro.errors import ClusterError
from repro.ordbms.wal import MemoryLogDevice, parse_log
from repro.sgml.config import DEFAULT_CONFIG
from repro.store.xmlstore import XmlStore


def coordinator_rig():
    """A WAL-backed store plus a shipper over its device."""
    device = MemoryLogDevice()
    store = XmlStore.open(device, DEFAULT_CONFIG)
    return device, store, LogShipper(device)


class TestLogShipper:
    def test_bundle_carries_checkpoint_and_tail(self):
        device, store, shipper = coordinator_rig()
        store.store_text("# A\n\nalpha\n", "a.md")
        bundle = shipper.bundle()
        assert bundle.checkpoint_lsn >= 0
        assert bundle.last_lsn == store.database.wal.last_lsn
        assert len(bundle.tail) > 0

    def test_batch_after_ships_only_the_gap(self):
        device, store, shipper = coordinator_rig()
        store.store_text("# A\n\nalpha\n", "a.md")
        acked = store.database.wal.last_lsn
        store.store_text("# B\n\nbeta\n", "b.md")
        batch = shipper.batch_after(acked)
        assert batch.first_lsn == acked + 1
        assert batch.last_lsn == store.database.wal.last_lsn

    def test_cannot_tail_ship_below_checkpoint(self):
        device, store, shipper = coordinator_rig()
        store.store_text("# A\n\nalpha\n", "a.md")
        store.checkpoint()  # truncates the live log
        assert not shipper.can_ship_from(0)
        with pytest.raises(ClusterError):
            shipper.batch_after(0)


class TestFollowerReplica:
    def build_pair(self):
        device, store, shipper = coordinator_rig()
        follower = FollowerReplica.bootstrap(
            "f1", MemoryLogDevice(), shipper.bundle()
        )
        return store, shipper, follower

    def test_bootstrap_then_apply_converges(self):
        store, shipper, follower = self.build_pair()
        store.store_text("# A\n\nalpha\n", "a.md")
        follower.apply_batch(shipper.batch_after(follower.acked_lsn))
        assert follower.acked_lsn == store.database.wal.last_lsn
        assert follower.dump() == store.dump()
        assert follower.store.lookup_by_name("a.md") is not None

    def test_apply_is_idempotent_and_skips_overlap(self):
        store, shipper, follower = self.build_pair()
        store.store_text("# A\n\nalpha\n", "a.md")
        batch = shipper.batch_after(0)  # overlaps the bundled prefix
        before = follower.acked_lsn
        first = follower.apply_batch(batch)
        again = follower.apply_batch(batch)
        assert first == again == store.database.wal.last_lsn
        assert first > before
        # Re-applying appended nothing the second time.
        records, torn = parse_log(follower.device.read_log())
        assert torn is None
        lsns = [record.lsn for record in records]
        assert lsns == sorted(set(lsns))

    def test_acked_records_are_durable_on_the_follower(self):
        store, shipper, follower = self.build_pair()
        store.store_text("# A\n\nalpha\n", "a.md")
        follower.apply_batch(shipper.batch_after(follower.acked_lsn))
        # A fresh replica over the same device recovers to the same ack.
        reopened = FollowerReplica("f1", follower.device)
        assert reopened.acked_lsn == follower.acked_lsn
        assert reopened.dump() == follower.dump()

    def test_compact_folds_state_and_refuses_open_transactions(self):
        store, shipper, follower = self.build_pair()
        store.store_text("# A\n\nalpha\n", "a.md")
        follower.apply_batch(shipper.batch_after(follower.acked_lsn))
        covered = follower.compact()
        assert covered == follower.acked_lsn
        reopened = FollowerReplica("f1", follower.device)
        assert reopened.dump() == store.dump()

    def test_install_bundle_discards_divergent_history(self):
        store, shipper, follower = self.build_pair()
        store.store_text("# A\n\nalpha\n", "a.md")
        follower.apply_batch(shipper.batch_after(follower.acked_lsn))
        store.store_text("# B\n\nbeta\n", "b.md")
        store.checkpoint()  # follower's ack is now below the checkpoint
        assert not shipper.can_ship_from(follower.acked_lsn)
        follower.install_bundle(shipper.bundle())
        assert follower.dump() == store.dump()


class TestClusterReplication:
    def test_every_ack_is_on_every_in_sync_replica(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        receipt = cluster.ingest("a.md", "# A\n\nalpha\n")
        assert receipt.witnesses == ("n1", "n2", "n3")
        dumps = cluster.dumps()
        assert len(set(dumps.values())) == 1

    def test_replication_lag_is_zero_on_the_fast_path(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        assert cluster.replication_lag() == {"n2": 0, "n3": 0}

    def test_checkpoint_forces_bundle_resync_for_lagging_node(self):
        cluster = NetmarkCluster(["n1", "n2", "n3"])
        cluster.ingest("a.md", "# A\n\nalpha\n")
        cluster.kill("n2")
        cluster.ingest("b.md", "# B\n\nbeta\n")
        cluster.checkpoint()  # n2's gap no longer coverable by the log
        cluster.revive("n2")
        cluster.catch_up("n2")
        resynced = cluster.stats.catchups
        assert resynced == 1
        dumps = cluster.dumps()
        assert len(dumps) == 3 and len(set(dumps.values())) == 1
