"""Tokenizer: tags, attributes, entities, comments, tolerant recovery."""

import pytest

from repro.errors import SgmlSyntaxError
from repro.sgml.tokenizer import (
    CommentToken,
    DeclarationToken,
    EndTag,
    StartTag,
    TextToken,
    decode_entities,
    tokenize_markup,
)


class TestEntities:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("&amp;", "&"),
            ("&lt;tag&gt;", "<tag>"),
            ("&quot;q&quot;", '"q"'),
            ("&#65;", "A"),
            ("&#x41;", "A"),
            ("&nbsp;", " "),
            ("a &amp; b", "a & b"),
        ],
    )
    def test_known(self, raw, expected):
        assert decode_entities(raw) == expected

    def test_unknown_entity_passes_through(self):
        assert decode_entities("&bogus;") == "&bogus;"

    def test_bare_ampersand_untouched(self):
        assert decode_entities("AT&T") == "AT&T"

    def test_huge_codepoint_passes_through(self):
        assert decode_entities("&#99999999999;") == "&#99999999999;"


class TestTags:
    def test_simple_element(self):
        tokens = tokenize_markup("<a>x</a>")
        assert isinstance(tokens[0], StartTag) and tokens[0].name == "a"
        assert isinstance(tokens[1], TextToken) and tokens[1].data == "x"
        assert isinstance(tokens[2], EndTag) and tokens[2].name == "a"

    def test_tag_names_lowercased(self):
        [start] = tokenize_markup("<DIV>")
        assert start.name == "div"

    def test_self_closing(self):
        [tag] = tokenize_markup("<br/>")
        assert tag.self_closing

    def test_attributes_quoted_and_unquoted(self):
        [tag] = tokenize_markup('<a href="x" id=\'y\' width=3>')
        assert tag.attributes == {"href": "x", "id": "y", "width": "3"}

    def test_boolean_attribute(self):
        [tag] = tokenize_markup("<input disabled>")
        assert tag.attributes["disabled"] == "disabled"

    def test_attribute_entities_decoded(self):
        [tag] = tokenize_markup('<a title="a &amp; b">')
        assert tag.attributes["title"] == "a & b"

    def test_attribute_with_self_closing_slash(self):
        [tag] = tokenize_markup('<img src="x.png"/>')
        assert tag.attributes == {"src": "x.png"}
        assert tag.self_closing


class TestNonElements:
    def test_comment(self):
        [token] = tokenize_markup("<!-- hi -->")
        assert isinstance(token, CommentToken)
        assert token.data == " hi "

    def test_cdata_becomes_text(self):
        [token] = tokenize_markup("<![CDATA[<raw> & stuff]]>")
        assert isinstance(token, TextToken)
        assert token.data == "<raw> & stuff"

    def test_doctype_declaration(self):
        [token] = tokenize_markup("<!DOCTYPE html>")
        assert isinstance(token, DeclarationToken)

    def test_processing_instruction(self):
        [token] = tokenize_markup('<?xml version="1.0"?>')
        assert isinstance(token, DeclarationToken)


class TestTolerance:
    def test_bare_less_than_is_text(self):
        tokens = tokenize_markup("a < b")
        assert "".join(
            token.data for token in tokens if isinstance(token, TextToken)
        ) == "a < b"

    def test_unterminated_comment_tolerant(self):
        [token] = tokenize_markup("<!-- never ends")
        assert isinstance(token, CommentToken)

    def test_unterminated_comment_strict_raises(self):
        with pytest.raises(SgmlSyntaxError):
            tokenize_markup("<!-- never ends", strict=True)

    def test_bare_less_than_strict_raises(self):
        with pytest.raises(SgmlSyntaxError):
            tokenize_markup("a < b", strict=True)

    def test_line_numbers(self):
        tokens = tokenize_markup("line1\n<b>\n</b>")
        start = next(token for token in tokens if isinstance(token, StartTag))
        end = next(token for token in tokens if isinstance(token, EndTag))
        assert start.line == 2
        assert end.line == 3
