"""Tree parser: strict XML rules and tolerant HTML recovery."""

import pytest

from repro.errors import SgmlSyntaxError
from repro.sgml.dom import Element, Text
from repro.sgml.parser import parse_html, parse_xml


class TestStrictXml:
    def test_well_formed(self):
        document = parse_xml("<a><b>x</b><c/></a>")
        assert document.root.tag == "a"
        assert [el.tag for el in document.root.child_elements()] == ["b", "c"]

    def test_mismatched_end_raises(self):
        with pytest.raises(SgmlSyntaxError):
            parse_xml("<a><b></a>")

    def test_unclosed_raises(self):
        with pytest.raises(SgmlSyntaxError):
            parse_xml("<a><b>")

    def test_multiple_roots_raise(self):
        with pytest.raises(SgmlSyntaxError):
            parse_xml("<a/><b/>")

    def test_text_outside_root_raises(self):
        with pytest.raises(SgmlSyntaxError):
            parse_xml("hello<a/>")

    def test_whitespace_outside_root_ok(self):
        document = parse_xml("\n  <a/>\n")
        assert document.root.tag == "a"

    def test_xml_declaration_ignored(self):
        document = parse_xml('<?xml version="1.0"?><a/>')
        assert document.root.tag == "a"

    def test_attributes_preserved(self):
        document = parse_xml('<a x="1" y="two"/>')
        assert document.root.attributes == {"x": "1", "y": "two"}

    def test_stray_end_tag_raises(self):
        with pytest.raises(SgmlSyntaxError):
            parse_xml("<a></b></a>")


class TestTolerantHtml:
    def test_unclosed_elements_closed_at_eof(self):
        document = parse_html("<html><body><p>text")
        paragraph = document.find("p")
        assert paragraph is not None
        assert paragraph.text_content() == "text"

    def test_p_auto_closes(self):
        document = parse_html("<body><p>one<p>two</body>")
        paragraphs = document.find_all("p")
        assert [p.text_content() for p in paragraphs] == ["one", "two"]

    def test_li_auto_closes(self):
        document = parse_html("<ul><li>a<li>b</ul>")
        assert [li.text_content() for li in document.find_all("li")] == ["a", "b"]

    def test_void_elements_take_no_children(self):
        document = parse_html("<p>a<br>b</p>")
        paragraph = document.find("p")
        assert paragraph.text_content() == "ab"
        br = document.find("br")
        assert br.children == []

    def test_heading_auto_closes_paragraph(self):
        document = parse_html("<body><p>lead<h2>Head</h2></body>")
        h2 = document.find("h2")
        assert h2.parent.tag == "body"

    def test_mismatched_end_recovers(self):
        document = parse_html("<div><b>x</div>")
        assert document.find("b").text_content() == "x"

    def test_stray_end_tag_ignored(self):
        document = parse_html("<div>x</span></div>")
        assert document.find("div") is not None

    def test_fragment_input_gets_synthetic_root(self):
        document = parse_html("just text <b>and bold</b>")
        assert document.root.tag == "fragment"
        assert document.root.synthetic

    def test_table_cells_auto_close(self):
        document = parse_html(
            "<table><tr><td>a<td>b<tr><td>c</table>"
        )
        assert len(document.find_all("tr")) == 2
        assert len(document.find_all("td")) == 3

    def test_case_insensitive_matching(self):
        document = parse_html("<DIV><SpAn>x</sPaN></div>")
        assert document.find("span").text_content() == "x"

    def test_never_raises_on_junk(self):
        junk = "<<<>>><a <b> </weird--><!--<p>hello"
        parse_html(junk)  # must not raise


class TestDom:
    def test_parent_links(self):
        document = parse_xml("<a><b/></a>")
        b = document.find("b")
        assert b.parent is document.root

    def test_siblings(self):
        document = parse_xml("<a><b/><c/><d/></a>")
        b, c, d = document.root.child_elements()
        assert b.next_sibling() is c
        assert c.previous_sibling() is b
        assert d.next_sibling() is None
        assert b.previous_sibling() is None

    def test_ancestors(self):
        document = parse_xml("<a><b><c/></b></a>")
        c = document.find("c")
        assert [el.tag for el in c.ancestors()] == ["b", "a"]

    def test_walk_document_order(self):
        document = parse_xml("<a><b>x</b><c/></a>")
        tags = [
            node.tag if isinstance(node, Element) else "#text"
            for node in document.walk()
        ]
        assert tags == ["a", "b", "#text", "c"]

    def test_text_content_concatenates(self):
        document = parse_xml("<a>x<b>y</b>z</a>")
        assert document.root.text_content() == "xyz"

    def test_clone_is_deep_and_detached(self):
        document = parse_xml('<a x="1"><b>t</b></a>')
        copy = document.root.clone()
        assert copy.parent is None
        assert copy.attributes == {"x": "1"}
        copy.find("b").append_text("!")
        assert document.root.find("b").text_content() == "t"

    def test_detach(self):
        document = parse_xml("<a><b/></a>")
        b = document.find("b")
        b.detach()
        assert document.root.children == []
        assert b.parent is None

    def test_count(self):
        document = parse_xml("<a><b>x</b></a>")
        assert document.count() == 3
        assert document.count(lambda node: isinstance(node, Text)) == 1


class TestRawText:
    """<script>/<style> content is raw text in tolerant mode."""

    def test_script_markup_is_data(self):
        document = parse_html(
            '<body><script>if (a < b) { x("<p>"); }</script><p>real</p></body>'
        )
        script = document.find("script")
        assert script.text_content() == 'if (a < b) { x("<p>"); }'
        # The fake <p> inside the script did not become an element.
        assert len(document.find_all("p")) == 1

    def test_style_selectors_are_data(self):
        document = parse_html("<style>p > a { color: red }</style>")
        assert document.find("style").text_content() == "p > a { color: red }"

    def test_unclosed_script_runs_to_eof(self):
        document = parse_html("<script>var x = 1;")
        assert document.find("script").text_content() == "var x = 1;"

    def test_end_tag_case_insensitive(self):
        document = parse_html("<script>x</SCRIPT><b>after</b>")
        assert document.find("b").text_content() == "after"

    def test_strict_mode_unaffected(self):
        # XML has no rawtext elements; nested markup parses as markup.
        document = parse_xml("<script><p>element</p></script>")
        assert document.find("p") is not None
