"""Node-type configuration and XML serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SgmlError
from repro.sgml.config import DEFAULT_CONFIG, NodeTypeConfig
from repro.sgml.dom import Element, Text
from repro.sgml.nodetypes import NodeType
from repro.sgml.parser import parse_xml
from repro.sgml.serializer import escape_attribute, escape_text, serialize


class TestClassification:
    def test_headings_are_context(self):
        for tag in ("h1", "h3", "h6", "title", "context"):
            assert DEFAULT_CONFIG.classify(Element(tag)) is NodeType.CONTEXT

    def test_emphasis_is_intense(self):
        for tag in ("b", "strong", "em"):
            assert DEFAULT_CONFIG.classify(Element(tag)) is NodeType.INTENSE

    def test_synthetic_elements_are_simulation(self):
        element = Element("whatever", synthetic=True)
        assert DEFAULT_CONFIG.classify(element) is NodeType.SIMULATION

    def test_section_tag_is_simulation(self):
        assert DEFAULT_CONFIG.classify(Element("section")) is NodeType.SIMULATION

    def test_text_is_text(self):
        assert DEFAULT_CONFIG.classify(Text("x")) is NodeType.TEXT

    def test_plain_element(self):
        assert DEFAULT_CONFIG.classify(Element("p")) is NodeType.ELEMENT

    def test_overlapping_assignment_rejected(self):
        with pytest.raises(SgmlError):
            NodeTypeConfig(
                context_tags=frozenset({"x"}), intense_tags=frozenset({"x"})
            )


class TestConfigFile:
    def test_round_trip(self):
        config = NodeTypeConfig(
            context_tags=frozenset({"h1", "title"}),
            intense_tags=frozenset({"b"}),
            simulation_tags=frozenset({"gen"}),
        )
        assert NodeTypeConfig.from_text(config.to_text()) == config

    def test_comments_and_blanks_ignored(self):
        config = NodeTypeConfig.from_text(
            "# a comment\n\ncontext: h1 h2  # trailing\nintense: b\n"
            "simulation: gen\n"
        )
        assert config.context_tags == frozenset({"h1", "h2"})

    def test_unknown_key_rejected(self):
        with pytest.raises(SgmlError):
            NodeTypeConfig.from_text("bogus: x")

    def test_duplicate_key_rejected(self):
        with pytest.raises(SgmlError):
            NodeTypeConfig.from_text("context: a\ncontext: b")

    def test_missing_colon_rejected(self):
        with pytest.raises(SgmlError):
            NodeTypeConfig.from_text("context h1")

    def test_defaults_fill_missing_sections(self):
        config = NodeTypeConfig.from_text("context: h1")
        assert config.context_tags == frozenset({"h1"})
        assert "b" in config.intense_tags  # default kept


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quotes_too(self):
        assert escape_attribute('say "hi" & go') == "say &quot;hi&quot; &amp; go"


class TestSerialize:
    def test_compact_round_trip(self):
        source = '<a x="1">t<b>u</b><c/></a>'
        document = parse_xml(source)
        assert serialize(document) == source

    def test_special_characters_round_trip(self):
        document = parse_xml("<a>x &amp; y &lt; z</a>")
        again = parse_xml(serialize(document))
        assert again.root.text_content() == "x & y < z"

    def test_pretty_print_indents(self):
        document = parse_xml("<a><b>x</b></a>")
        pretty = serialize(document, indent=2)
        assert "  <b>x</b>" in pretty

    def test_empty_element_self_closes(self):
        assert serialize(parse_xml("<a></a>")) == "<a/>"

    names = st.sampled_from(["a", "b", "c", "item", "x1"])
    texts = st.text(
        alphabet=st.sampled_from("ab &<>\"'\n"), min_size=1, max_size=12
    )

    @st.composite
    @staticmethod
    def trees(draw, depth=0):
        element = Element(draw(TestSerialize.names))
        if draw(st.booleans()):
            element.attributes["k"] = draw(TestSerialize.texts)
        for _ in range(draw(st.integers(0, 3 if depth < 2 else 0))):
            if draw(st.booleans()):
                element.append(Text(draw(TestSerialize.texts)))
            else:
                element.append(draw(TestSerialize.trees(depth=depth + 1)))  # type: ignore[call-arg]
        return element

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_round_trip_property(self, tree):
        serialized = serialize(tree)
        reparsed = parse_xml(serialized).root
        assert _equivalent(tree, reparsed)


def _merged_children(element: Element) -> list:
    """Children with adjacent text nodes merged (XML cannot tell apart)."""
    merged: list = []
    for child in element.children:
        if (
            isinstance(child, Text)
            and merged
            and isinstance(merged[-1], Text)
        ):
            merged[-1] = Text(merged[-1].data + child.data)
        else:
            merged.append(child)
    return merged


def _equivalent(left, right) -> bool:
    if isinstance(left, Text) and isinstance(right, Text):
        return left.data == right.data
    if isinstance(left, Element) and isinstance(right, Element):
        if left.tag != right.tag or left.attributes != right.attributes:
            return False
        left_children = _merged_children(left)
        right_children = _merged_children(right)
        if len(left_children) != len(right_children):
            return False
        return all(
            _equivalent(a, b)
            for a, b in zip(left_children, right_children)
        )
    return False
