"""LogicalClock and RetryPolicy/call_with_retry."""

import random

import pytest

from repro.errors import (
    CircuitOpenError,
    DocumentNotFoundError,
    ResilienceError,
    SourceTimeoutError,
    SourceUnavailableError,
)
from repro.resilience import LogicalClock, RetryPolicy, RetryStats, call_with_retry


class TestLogicalClock:
    def test_starts_at_zero_and_advances(self):
        clock = LogicalClock()
        assert clock.now() == 0
        assert clock.advance() == 1
        assert clock.advance(5) == 6

    def test_rejects_negative_time(self):
        with pytest.raises(ResilienceError):
            LogicalClock(start=-1)
        with pytest.raises(ResilienceError):
            LogicalClock().advance(-1)


class Flaky:
    """Fails ``failures`` times with ``error``, then returns ``value``."""

    def __init__(self, failures, error=SourceUnavailableError, value="ok"):
        self.failures = failures
        self.error = error
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"down (call {self.calls})")
        return self.value


class TestRetryPolicy:
    def test_config_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ResilienceError):
            RetryPolicy(multiplier=0)

    def test_transience_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(SourceUnavailableError("x"))
        assert policy.is_transient(SourceTimeoutError("x"))
        assert not policy.is_transient(DocumentNotFoundError("x"))

    def test_circuit_open_never_transient(self):
        # Even when explicitly listed: retrying an open circuit would
        # defeat the breaker.
        policy = RetryPolicy(retryable=(CircuitOpenError,))
        assert not policy.is_transient(CircuitOpenError("x"))

    def test_backoff_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=2, multiplier=2, max_delay=5)
        delays_a = [policy.backoff(n, random.Random(9)) for n in (1, 2, 3)]
        delays_b = [policy.backoff(n, random.Random(9)) for n in (1, 2, 3)]
        assert delays_a == delays_b  # same seed, same jitter
        assert all(0 <= delay <= 5 for delay in delays_a)


class TestCallWithRetry:
    def run(self, operation, policy, seed=0, clock=None, stats=None):
        return call_with_retry(
            operation,
            policy,
            clock if clock is not None else LogicalClock(),
            random.Random(seed),
            stats,
        )

    def test_success_needs_no_retry(self):
        stats = RetryStats()
        assert self.run(Flaky(0), RetryPolicy(), stats=stats) == "ok"
        assert stats.attempts == 1 and stats.retries == 0

    def test_transient_failures_absorbed(self):
        stats = RetryStats()
        assert self.run(Flaky(2), RetryPolicy(max_attempts=3), stats=stats) == "ok"
        assert stats.attempts == 3 and stats.retries == 2
        assert len(stats.errors) == 2

    def test_budget_exhaustion_reraises_last_error(self):
        flaky = Flaky(99)
        with pytest.raises(SourceUnavailableError, match="call 3"):
            self.run(flaky, RetryPolicy(max_attempts=3))
        assert flaky.calls == 3

    def test_permanent_error_raises_immediately(self):
        flaky = Flaky(99, error=DocumentNotFoundError)
        with pytest.raises(DocumentNotFoundError):
            self.run(flaky, RetryPolicy(max_attempts=5))
        assert flaky.calls == 1

    def test_backoff_burns_logical_ticks(self):
        clock = LogicalClock()
        stats = RetryStats()
        self.run(
            Flaky(2),
            RetryPolicy(max_attempts=3, base_delay=4, max_delay=100),
            clock=clock,
            stats=stats,
        )
        assert clock.now() == stats.backoff_ticks

    def test_same_seed_same_schedule(self):
        def schedule(seed):
            clock = LogicalClock()
            stats = RetryStats()
            self.run(
                Flaky(4),
                RetryPolicy(max_attempts=5, base_delay=3, max_delay=50),
                seed=seed,
                clock=clock,
                stats=stats,
            )
            return clock.now(), stats.backoff_ticks, stats.retries

        assert schedule(42) == schedule(42)
