"""Deterministic fault injection: plans, rules, and proxies."""

import pytest

from repro.errors import (
    ResilienceError,
    SourceTimeoutError,
    SourceUnavailableError,
)
from repro.federation.sources import ContentOnlySource
from repro.query.language import parse_query
from repro.resilience import FaultPlan, LogicalClock
from repro.server.vfs import VirtualFileSystem
from repro.store.xmlstore import XmlStore

NDOC = "{\\ndoc1}\n{\\style Heading1}Budget\n{\\style Normal}Travel funds.\n"


class TestFaultRules:
    def test_fail_n_times_then_recover(self):
        plan = FaultPlan()
        plan.fail("s", "op", times=2)
        for _ in range(2):
            with pytest.raises(SourceUnavailableError):
                plan.apply("s", "op")
        plan.apply("s", "op")  # recovered
        assert plan.injected("s") == 2

    def test_after_skips_leading_calls(self):
        plan = FaultPlan()
        plan.fail("s", "op", times=1, after=2)
        plan.apply("s", "op")
        plan.apply("s", "op")
        with pytest.raises(SourceUnavailableError):
            plan.apply("s", "op")

    def test_wildcard_operation(self):
        plan = FaultPlan()
        plan.fail("s", times=None)
        with pytest.raises(SourceUnavailableError):
            plan.apply("s", "anything")
        with pytest.raises(SourceUnavailableError):
            plan.apply("s", "else")
        plan.apply("other", "anything")  # different component untouched

    def test_timeout_burns_latency_then_raises(self):
        clock = LogicalClock()
        plan = FaultPlan(clock=clock)
        plan.fail("s", "op", kind="timeout", latency=7)
        with pytest.raises(SourceTimeoutError, match="7 ticks"):
            plan.apply("s", "op")
        assert clock.now() == 7

    def test_slow_burns_latency_without_error(self):
        clock = LogicalClock()
        plan = FaultPlan(clock=clock)
        plan.slow("s", "op", latency=3, times=2)
        plan.apply("s", "op")
        plan.apply("s", "op")
        plan.apply("s", "op")  # script exhausted: full speed again
        assert clock.now() == 6
        assert [event.kind for event in plan.events] == ["slow", "slow"]

    def test_probabilistic_faults_replay_by_seed(self):
        def outcomes(seed):
            plan = FaultPlan(seed=seed)
            plan.sometimes("s", "op", probability=0.5)
            fired = []
            for _ in range(20):
                try:
                    plan.apply("s", "op")
                    fired.append(False)
                except SourceUnavailableError:
                    fired.append(True)
            return fired

        assert outcomes(3) == outcomes(3)
        assert any(outcomes(3)) and not all(outcomes(3))

    def test_bad_scripts_rejected(self):
        plan = FaultPlan()
        with pytest.raises(ResilienceError):
            plan.fail("s", kind="explode")
        with pytest.raises(ResilienceError):
            plan.sometimes("s", probability=1.5)
        with pytest.raises(ResilienceError):
            plan.fail("s", times=-1)

    def test_events_record_site_and_tick(self):
        clock = LogicalClock(start=5)
        plan = FaultPlan(clock=clock)
        plan.fail("s", "op")
        with pytest.raises(SourceUnavailableError):
            plan.apply("s", "op")
        [event] = plan.events
        assert (event.tick, event.component, event.operation, event.kind) == (
            5, "s", "op", "unavailable",
        )


class TestProxies:
    def test_source_proxy_gates_search_and_delegates_the_rest(self):
        source = ContentOnlySource("llis", {"a.md": "engine trouble"})
        plan = FaultPlan()
        plan.fail("llis", "native_search", times=1)
        wrapped = plan.wrap_source(source)
        assert wrapped.name == "llis"
        assert wrapped.capabilities == source.capabilities
        query = parse_query("Content=engine")
        with pytest.raises(SourceUnavailableError):
            wrapped.native_search(query)
        assert [m.file_name for m in wrapped.native_search(query)] == ["a.md"]
        # The un-gated counter lives on the real source.
        assert source.queries_served == 1

    def test_store_proxy_gates_store_text(self):
        store = XmlStore()
        plan = FaultPlan()
        plan.fail("store", "store_text", times=1)
        wrapped = plan.wrap_store(store)
        with pytest.raises(SourceUnavailableError):
            wrapped.store_text(NDOC, "r.ndoc")
        assert wrapped.store_text(NDOC, "r.ndoc").doc_id == 1
        assert len(store) == 1

    def test_vfs_proxy_gates_move(self):
        vfs = VirtualFileSystem()
        vfs.mkdir("/a")
        vfs.write("/a/f.txt", "x")
        plan = FaultPlan()
        plan.fail("vfs", "move", times=1)
        wrapped = plan.wrap_vfs(vfs)
        with pytest.raises(SourceUnavailableError):
            wrapped.move("/a/f.txt", "/a/g.txt")
        assert wrapped.read("/a/f.txt") == "x"  # unharmed, still in place
        wrapped.move("/a/f.txt", "/a/g.txt")
        assert vfs.is_file("/a/g.txt")
