"""Determinism contract: one seed, one history — across the whole stack."""

from repro.resilience import (
    BreakerConfig,
    FaultPlan,
    LogicalClock,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.resilience.harness import (
    ChaosReport,
    build_sources,
    healthy_baseline,
    run_chaos,
)


def chaos_run(seed: int) -> ChaosReport:
    clock = LogicalClock()
    plan = FaultPlan(seed=seed, clock=clock)
    plan.fail("src00", "native_search", times=None)
    plan.sometimes("src01", "native_search", probability=0.3)
    plan.slow("src02", "native_search", latency=2, times=3)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, base_delay=2, max_delay=8),
        breaker=BreakerConfig(failure_threshold=2, cooldown=8),
        clock=clock,
        seed=seed,
    )
    sources = build_sources(source_count=3, docs_per_source=6, seed=1400)
    return run_chaos(sources, plan=plan, policy=policy, rounds=3)


class TestReplay:
    def test_same_seed_identical_signature(self):
        # The acceptance contract: retry counts, breaker transitions,
        # injected faults, and per-query outcomes all replay bit-for-bit.
        assert chaos_run(seed=5).signature() == chaos_run(seed=5).signature()

    def test_different_seeds_diverge(self):
        # Not a hard guarantee for every pair, but these two seeds differ
        # on the probabilistic rule — a frozen-RNG bug would equate them.
        assert chaos_run(seed=5).signature() != chaos_run(seed=6).signature()

    def test_no_faults_means_no_resilience_activity(self):
        sources = build_sources()
        policy = ResiliencePolicy()
        report = run_chaos(sources, policy=policy, rounds=2)
        assert report.partial == report.failed == 0
        assert report.retries == report.trips == report.injected == 0
        assert report.transitions == ()
        baseline = healthy_baseline(sources)
        for outcome in report.outcomes:
            assert outcome.matches == baseline[outcome.query]

    def test_partial_answers_meet_completeness_bound(self):
        clock = LogicalClock()
        plan = FaultPlan(clock=clock)
        plan.fail("src00", times=None)
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2),
            breaker=BreakerConfig(failure_threshold=2, cooldown=1000),
            clock=clock,
        )
        sources = build_sources()
        degraded = healthy_baseline(sources, exclude=("src00",))
        report = run_chaos(sources, plan=plan, policy=policy, rounds=2)
        assert report.complete == 0
        for outcome in report.outcomes:
            assert outcome.status == "partial"
            assert outcome.matches == degraded[outcome.query]
            assert set(outcome.failed_sources) | set(
                outcome.skipped_sources
            ) == {"src00"}
