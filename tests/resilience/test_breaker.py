"""The circuit breaker state machine on logical time."""

import pytest

from repro.errors import CircuitOpenError, ResilienceError
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
    LogicalClock,
)


def make(threshold=3, cooldown=10, probes=1, clock=None):
    clock = clock if clock is not None else LogicalClock()
    return clock, CircuitBreaker(
        "src", BreakerConfig(threshold, cooldown, probes), clock
    )


class TestCircuitBreaker:
    def test_config_validation(self):
        with pytest.raises(ResilienceError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ResilienceError):
            BreakerConfig(cooldown=-1)
        with pytest.raises(ResilienceError):
            BreakerConfig(probe_successes=0)

    def test_stays_closed_below_threshold(self):
        _, breaker = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()

    def test_success_resets_the_failure_streak(self):
        _, breaker = make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two *consecutive* failures

    def test_trips_open_at_threshold(self):
        _, breaker = make(threshold=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_half_open_after_cooldown(self):
        clock, breaker = make(threshold=1, cooldown=5)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(4)
        assert not breaker.allow()  # one tick short
        clock.advance(1)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_probe_success_recloses(self):
        clock, breaker = make(threshold=1, cooldown=2)
        breaker.record_failure()
        clock.advance(2)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock, breaker = make(threshold=1, cooldown=3)
        breaker.record_failure()
        clock.advance(3)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and breaker.trips == 2
        clock.advance(2)
        assert not breaker.allow()  # cooldown restarted at re-open
        clock.advance(1)
        assert breaker.allow()

    def test_transitions_are_stamped_with_ticks(self):
        clock, breaker = make(threshold=1, cooldown=2)
        breaker.record_failure()  # tick 0: closed -> open
        clock.advance(2)
        breaker.allow()  # tick 2: open -> half-open
        breaker.record_success()  # tick 2: half-open -> closed
        assert [
            (t.tick, t.old_state, t.new_state) for t in breaker.transitions
        ] == [(0, CLOSED, OPEN), (2, OPEN, HALF_OPEN), (2, HALF_OPEN, CLOSED)]


class TestBreakerBoard:
    def test_one_breaker_per_name(self):
        board = BreakerBoard(BreakerConfig(), LogicalClock())
        assert board.breaker("a") is board.breaker("a")
        assert board.breaker("a") is not board.breaker("b")
        assert board.names() == ["a", "b"]

    def test_trips_and_open_names_aggregate(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1), LogicalClock())
        board.breaker("a").record_failure()
        board.breaker("b").record_success()
        assert board.trips == 1
        assert board.open_names() == ["a"]
        assert [name for name, _ in board.transitions()] == ["a"]
