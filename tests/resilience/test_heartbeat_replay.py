"""Deterministic replay: retry jitter and breaker probes on the clock.

Same seed, same schedule — bit-identical.  These are the guarantees the
cluster harness leans on when it promises a failover trace replays
exactly from its fault-plan seed.
"""

import random

import pytest

from repro.errors import CircuitOpenError, SourceUnavailableError
from repro.resilience import (
    BreakerConfig,
    CircuitBreaker,
    HeartbeatMonitor,
    LogicalClock,
    RetryPolicy,
    RetryStats,
    call_with_retry,
)


def flaky(failures):
    """An operation that fails ``failures`` times, then succeeds."""
    state = {"left": failures}

    def operation():
        if state["left"] > 0:
            state["left"] -= 1
            raise SourceUnavailableError("transient (test)")
        return "ok"

    return operation


class TestRetryJitterReplay:
    def run_schedule(self, seed):
        """One retried call; returns the exact backoff-tick trace."""
        clock = LogicalClock()
        rng = random.Random(seed)
        stats = RetryStats()
        policy = RetryPolicy(
            max_attempts=6, base_delay=2, multiplier=3, max_delay=40
        )
        ticks = [clock.now()]

        def operation():
            ticks.append(clock.now())
            raise SourceUnavailableError("always down (test)")

        with pytest.raises(SourceUnavailableError):
            call_with_retry(operation, policy, clock, rng, stats=stats)
        return tuple(ticks), stats.attempts, stats.backoff_ticks

    def test_same_seed_is_bit_identical(self):
        assert self.run_schedule(1234) == self.run_schedule(1234)

    def test_different_seeds_diverge(self):
        schedules = {self.run_schedule(seed)[0] for seed in range(8)}
        assert len(schedules) > 1  # jitter is real, not a constant

    def test_backoff_is_full_jitter_bounded(self):
        policy = RetryPolicy(base_delay=2, multiplier=3, max_delay=40)
        rng = random.Random(99)
        for attempt in range(1, 7):
            ceiling = min(40, 2 * 3 ** (attempt - 1))
            for _ in range(50):
                assert 0 <= policy.backoff(attempt, rng) <= ceiling

    def test_recovery_mid_schedule_replays_too(self):
        def run(seed):
            clock = LogicalClock()
            stats = RetryStats()
            result = call_with_retry(
                flaky(3),
                RetryPolicy(max_attempts=5, base_delay=4),
                clock,
                random.Random(seed),
                stats=stats,
            )
            return result, clock.now(), stats.retries, stats.backoff_ticks

        assert run(7) == run(7)


class TestBreakerHalfOpenOnHeartbeats:
    def drive(self, seed):
        """Trip a breaker, then let heartbeat ticks carry it through
        cooldown -> half-open -> closed.  Returns the transition trace."""
        clock = LogicalClock()
        monitor = HeartbeatMonitor(clock, timeout=4)
        breaker = CircuitBreaker(
            "peer", BreakerConfig(failure_threshold=2, cooldown=6), clock
        )
        rng = random.Random(seed)
        # Two straight failures trip it.
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        probes = []
        # Heartbeat loop: each tick a beat arrives; the breaker is only
        # probed when the monitor still believes the peer is alive.
        for _ in range(10):
            clock.advance(1)
            monitor.beat("peer")
            if monitor.alive("peer") and breaker.allow():
                probes.append(clock.now())
                if rng.random() < 0.5:
                    breaker.record_success()
                else:
                    breaker.record_failure()
        trace = [
            (t.tick, t.old_state, t.new_state)
            for t in breaker.transitions
        ]
        return tuple(trace), tuple(probes), breaker.state

    def test_half_open_waits_out_the_cooldown(self):
        trace, probes, _state = self.drive(seed=5)
        half_open = [t for t in trace if t[2] == "half-open"]
        assert half_open
        assert half_open[0][0] >= 6  # not a tick before cooldown

    def test_same_seed_same_transition_schedule(self):
        assert self.drive(seed=42) == self.drive(seed=42)

    def test_check_raises_while_cooling_down(self):
        clock = LogicalClock()
        breaker = CircuitBreaker(
            "peer", BreakerConfig(failure_threshold=1, cooldown=8), clock
        )
        breaker.record_failure()
        clock.advance(7)
        with pytest.raises(CircuitOpenError):
            breaker.check()
        clock.advance(1)
        breaker.check()  # cooldown over: half-open lets the probe through
        assert breaker.state == "half-open"

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = LogicalClock()
        breaker = CircuitBreaker(
            "peer", BreakerConfig(failure_threshold=1, cooldown=4), clock
        )
        breaker.record_failure()
        clock.advance(4)
        assert breaker.allow()  # half-open probe
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # cooldown restarted
        clock.advance(4)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
