"""Write-path fault kinds (crash/torn/corrupt) and the crash matrix."""

import pytest

from repro.errors import CrashError, ResilienceError
from repro.ordbms import MemoryLogDevice
from repro.resilience import FaultPlan, crash_matrix
from repro.resilience.faults import _mangle


class TestMangle:
    def test_flips_one_character_preserving_newline(self):
        data = "1 BEGIN 1|0a0b0c0d\n"
        mangled = _mangle(data)
        assert mangled != data
        assert mangled.endswith("\n")
        assert len(mangled) == len(data)
        assert mangled[:-2] == data[:-2]

    def test_empty_payload_untouched(self):
        assert _mangle("\n") == "\n"
        assert _mangle("") == ""


class TestLogDeviceFaultProxy:
    def test_crash_fires_before_the_write(self):
        device = MemoryLogDevice()
        plan = FaultPlan()
        plan.fail("wal", "append", kind="crash")
        proxy = plan.wrap_log_device(device)
        with pytest.raises(CrashError):
            proxy.append("line|00000000\n")
        assert device.read_log() == ""  # nothing landed
        assert plan.injected("wal") == 1

    def test_torn_writes_half_then_dies(self):
        device = MemoryLogDevice()
        plan = FaultPlan()
        plan.fail("wal", "append", kind="torn")
        proxy = plan.wrap_log_device(device)
        payload = "0123456789\n"
        with pytest.raises(CrashError):
            proxy.append(payload)
        assert device.read_log() == payload[: len(payload) // 2]

    def test_corrupt_mangles_silently(self):
        device = MemoryLogDevice()
        plan = FaultPlan()
        plan.fail("wal", "append", kind="corrupt")
        proxy = plan.wrap_log_device(device)
        proxy.append("body|00000000\n")  # no exception: silent bit rot
        assert device.read_log() != "body|00000000\n"
        assert device.read_log().endswith("\n")

    def test_torn_checkpoint_keeps_half(self):
        device = MemoryLogDevice()
        plan = FaultPlan()
        plan.fail("wal", "save_checkpoint", kind="torn")
        proxy = plan.wrap_log_device(device)
        with pytest.raises(CrashError):
            proxy.save_checkpoint("0123456789")
        assert device.load_checkpoint() == "01234"

    def test_reads_always_pass_through(self):
        device = MemoryLogDevice()
        device.append("intact\n")
        plan = FaultPlan()
        plan.fail("wal", "*", kind="crash", times=None)
        proxy = plan.wrap_log_device(device)
        assert proxy.read_log() == "intact\n"
        assert proxy.load_checkpoint() is None

    def test_after_counts_clean_calls(self):
        device = MemoryLogDevice()
        plan = FaultPlan()
        plan.fail("wal", "append", kind="crash", after=2, times=1)
        proxy = plan.wrap_log_device(device)
        proxy.append("one\n")
        proxy.append("two\n")
        with pytest.raises(CrashError):
            proxy.append("three\n")
        proxy.append("four\n")  # rule exhausted: calls pass again
        assert device.read_log() == "one\ntwo\nfour\n"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ResilienceError):
            FaultPlan().fail("wal", "append", kind="meteor")


class TestCrashMatrix:
    def test_enumerates_every_append_times_every_kind(self):
        def run(device):
            device.append("a|1\n")
            device.append("b|2\n")
            device.append("c|3\n")
            device.sync()

        matrix = crash_matrix(MemoryLogDevice, run)
        assert matrix.total_appends == 3
        assert len(matrix.points) == 6  # 3 appends x (crash, torn)
        assert all(point.crashed for point in matrix.points)
        assert matrix.baseline.target.read_log() == "a|1\nb|2\nc|3\n"

    def test_surviving_devices_hold_the_prefix(self):
        def run(device):
            device.append("a|1\n")
            device.append("b|2\n")

        matrix = crash_matrix(MemoryLogDevice, run, kinds=("crash",))
        by_index = {point.index: point for point in matrix.points}
        assert by_index[1].device.read_log() == ""
        assert by_index[2].device.read_log() == "a|1\n"

    def test_workload_without_appends_yields_empty_matrix(self):
        matrix = crash_matrix(MemoryLogDevice, lambda device: None)
        assert matrix.total_appends == 0
        assert matrix.points == ()
