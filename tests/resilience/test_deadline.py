"""Deadlines, budgets and cooperative cancellation primitives."""

import pytest

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ResilienceError,
)
from repro.resilience import (
    Budget,
    CancellationToken,
    Deadline,
    wall_tick_source,
)
from repro.resilience.clock import LogicalClock


class TestDeadline:
    def test_remaining_counts_down_and_clamps_at_zero(self):
        clock = LogicalClock()
        deadline = Deadline(clock, 10)
        assert deadline.remaining() == 10
        assert not deadline.expired()
        clock.advance(7)
        assert deadline.remaining() == 3
        clock.advance(10)
        assert deadline.expired()
        assert deadline.remaining() == 0

    def test_expiry_is_inclusive_at_the_boundary_tick(self):
        clock = LogicalClock()
        deadline = Deadline(clock, 5)
        clock.advance(5)
        assert deadline.expired()

    def test_negative_budget_rejected(self):
        with pytest.raises(ResilienceError):
            Deadline(LogicalClock(), -1)

    def test_at_builds_an_absolute_deadline(self):
        clock = LogicalClock(start=50)
        deadline = Deadline.at(clock, 40)
        assert deadline.expired()  # already in the past

    def test_tightened_takes_the_earlier_expiry(self):
        clock = LogicalClock()
        outer = Deadline(clock, 100)
        inner = outer.tightened(10)
        assert inner.expires_at == 10
        # A looser child cannot extend the parent.
        loose = inner.tightened(500)
        assert loose.expires_at == inner.expires_at


class TestWallTickSource:
    def test_ticks_derive_from_the_injected_wall_clock(self):
        readings = [5.0, 5.25, 6.0]  # first read pins the origin
        source = wall_tick_source(lambda: readings.pop(0), ticks_per_second=4)
        assert source.now() == 1  # (5.25 - 5.0) * 4
        assert source.now() == 4  # (6.0 - 5.0) * 4

    def test_bad_resolution_rejected(self):
        with pytest.raises(ResilienceError):
            wall_tick_source(lambda: 0.0, ticks_per_second=0)

    def test_composes_with_deadline(self):
        readings = [0.0, 0.0, 0.010, 0.030]
        source = wall_tick_source(
            lambda: readings.pop(0), ticks_per_second=1000
        )
        deadline = Deadline(source, 20)  # 20ms
        assert not deadline.expired()  # at 10ms
        assert deadline.expired()  # at 30ms


class TestCancellationToken:
    def test_check_passes_until_cancelled(self):
        token = CancellationToken()
        token.check("anywhere")
        assert not token.cancelled
        token.cancel("client went away")
        assert token.cancelled
        with pytest.raises(QueryCancelledError, match="client went away"):
            token.check("scan")

    def test_first_reason_wins(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"


class TestBudget:
    def test_unlimited_budget_always_admits(self):
        budget = Budget()
        assert budget.admits("anywhere")
        assert budget.remaining() is None
        assert not budget.expired and not budget.cancelled

    def test_cancellation_raises_even_with_partial_ok(self):
        token = CancellationToken()
        budget = Budget(token=token, partial_ok=True)
        token.cancel()
        with pytest.raises(QueryCancelledError):
            budget.admits("scan")

    def test_hard_expiry_raises_with_site(self):
        clock = LogicalClock()
        budget = Budget(deadline=Deadline(clock, 3))
        assert budget.admits("scan")
        clock.advance(4)
        with pytest.raises(QueryTimeoutError, match="at scan"):
            budget.admits("scan")

    def test_partial_ok_expiry_is_sticky_not_raising(self):
        clock = LogicalClock()
        budget = Budget(deadline=Deadline(clock, 3), partial_ok=True)
        clock.advance(4)
        assert not budget.admits("scan")
        assert budget.timed_out
        # Sticky: still refused even if a later check happens to be
        # under a (reset) deadline — a truncated answer stays truncated.
        assert not budget.admits("compose")

    def test_tighten_is_shrink_only(self):
        clock = LogicalClock()
        budget = Budget()
        budget.tighten(clock, 100)
        budget.tighten(clock, 10)
        assert budget.remaining() == 10
        budget.tighten(clock, 1000)
        assert budget.remaining() == 10
