"""The Table 1 NASA applications, verified against workload ground truth."""

import pytest

from repro.apps import (
    AnomalyTrackingApp,
    IbpdAssembler,
    ProposalFinancialManagement,
    RiskAssessmentApp,
)
from repro.workloads import (
    CorpusSpec,
    generate_corpus,
    generate_proposals,
    generate_task_plans,
    generate_tracker_a,
    generate_tracker_b,
)


class TestProposalFinancialManagement:
    @pytest.fixture(scope="class")
    def report_and_facts(self):
        files, facts = generate_proposals(20, seed=6)
        app = ProposalFinancialManagement()
        assert app.load_proposals(files) == 20
        return app.build_report(), facts

    def test_every_proposal_extracted(self, report_and_facts):
        report, facts = report_and_facts
        assert len(report.records) == len(facts)

    def test_total_requested_matches_ground_truth(self, report_and_facts):
        report, facts = report_and_facts
        assert report.total_requested == sum(fact.amount for fact in facts)

    def test_counts_by_division_match(self, report_and_facts):
        report, facts = report_and_facts
        truth: dict[str, int] = {}
        for fact in facts:
            truth[fact.division] = truth.get(fact.division, 0) + 1
        assert report.count_by_division() == dict(sorted(truth.items()))

    def test_amounts_by_division_match(self, report_and_facts):
        report, facts = report_and_facts
        truth: dict[str, int] = {}
        for fact in facts:
            truth[fact.division] = truth.get(fact.division, 0) + fact.amount
        assert report.amount_by_division() == dict(sorted(truth.items()))

    def test_over_threshold_sorted_desc(self, report_and_facts):
        report, _ = report_and_facts
        over = report.over_threshold(1_000_000)
        amounts = [record.amount for record in over]
        assert amounts == sorted(amounts, reverse=True)
        assert all(amount > 1_000_000 for amount in amounts)

    def test_investigators_extracted(self, report_and_facts):
        report, facts = report_and_facts
        by_file = {fact.file_name: fact for fact in facts}
        for record in report.records:
            assert record.principal_investigator == (
                by_file[record.file_name].principal_investigator
            )


class TestIbpd:
    @pytest.fixture(scope="class")
    def result_and_facts(self):
        files, facts = generate_task_plans(25, seed=8)
        assembler = IbpdAssembler()
        assert assembler.load_task_plans(files) == 25
        return assembler.assemble(), facts

    def test_grand_total_matches(self, result_and_facts):
        result, facts = result_and_facts
        assert result.grand_total == sum(fact.total for fact in facts)

    def test_totals_by_center_match(self, result_and_facts):
        result, facts = result_and_facts
        truth: dict[str, int] = {}
        for fact in facts:
            truth[fact.center] = truth.get(fact.center, 0) + fact.total
        assert result.total_by_center() == dict(sorted(truth.items()))

    def test_totals_by_year_match(self, result_and_facts):
        result, facts = result_and_facts
        truth: dict[str, int] = {}
        for fact in facts:
            for year, amount in fact.amounts:
                truth[year] = truth.get(year, 0) + amount
        assert result.total_by_year() == dict(sorted(truth.items()))

    def test_composed_document_has_chapter_per_plan(self, result_and_facts):
        result, facts = result_and_facts
        assert result.chapter_count == len(facts)
        assert result.document.root.tag == "ibpd"

    def test_chapters_sorted_by_plan_name(self, result_and_facts):
        result, _ = result_and_facts
        plans = [
            chapter.get("plan")
            for chapter in result.document.find_all("chapter")
        ]
        assert plans == sorted(plans)

    def test_coverage_element(self, result_and_facts):
        result, facts = result_and_facts
        coverage = result.document.find("coverage")
        assert coverage.text_content() == str(len(facts))


class TestAnomalyTracking:
    @pytest.fixture(scope="class")
    def app(self):
        return AnomalyTrackingApp(
            generate_tracker_a(25, seed=21), generate_tracker_b(25, seed=22)
        )

    def test_searches_both_trackers_at_once(self, app):
        # "Observed" is structural in every tracker-b summary; "anomaly"
        # is structural in every tracker-a description (either may also
        # appear by chance in the other tracker's prose).
        observed_hits = app.search_descriptions("observed")
        assert "tracker-b" in {hit.tracker for hit in observed_hits}
        assert len([h for h in observed_hits if h.tracker == "tracker-b"]) == 25
        anomaly_hits = app.search_descriptions("anomaly")
        assert len([h for h in anomaly_hits if h.tracker == "tracker-a"]) == 25

    def test_subsystem_terms_cross_trackers(self, app):
        hits = app.search_descriptions("avionics")
        trackers = {hit.tracker for hit in hits}
        assert len(trackers) == 2  # both vocabularies matched

    def test_severity_union(self, app):
        hits = app.all_with_severity("High")
        assert hits
        assert all(hit.description for hit in hits)

    def test_raw_search_escape_hatch(self, app):
        results = app.raw_search("Context=Disposition&Content=Open")
        assert all(match.source == "tracker-b" for match in results)

    def test_assembly_steps_counted(self, app):
        # create databank + two add_source lines = 3 declarative steps.
        assert app.netmark.assembly_steps == 3


class TestRiskAssessment:
    @pytest.fixture(scope="class")
    def report(self):
        files = generate_corpus(CorpusSpec(documents=30, seed=31))
        app = RiskAssessmentApp()
        assert app.load_documents(files) == 30
        return app.build_report()

    def test_findings_exist(self, report):
        assert report.findings

    def test_explicit_sections_found(self, report):
        explicit = [finding for finding in report.findings if finding.explicit]
        assert explicit
        assert all(
            finding.context in ("Risk Assessment", "Lessons Learned")
            for finding in explicit
        )

    def test_scores_rank_explicit_higher(self, report):
        scores = report.score_by_document()
        assert list(scores.values()) == sorted(scores.values(), reverse=True)

    def test_no_duplicate_findings(self, report):
        keys = [(finding.file_name, finding.context) for finding in report.findings]
        assert len(keys) == len(set(keys))

    def test_top_documents_subset(self, report):
        top = report.top_documents(3)
        assert len(top) <= 3
        assert set(top) <= set(report.score_by_document())
