"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.netmark import Netmark
from repro.store.xmlstore import XmlStore

#: A small, hand-written corpus exercising several formats; used by store,
#: query, server and integration tests.
SAMPLE_FILES: list[tuple[str, str]] = [
    (
        "report1.ndoc",
        "{\\ndoc1}\n"
        "{\\style Title}Shuttle Program Review\n"
        "{\\style Heading1}Technology Gap\n"
        "{\\style Normal}The gap is shrinking quickly across programs.\n"
        "{\\style Heading1}Budget\n"
        "{\\style Normal}We request funds for shuttle engine work.\n"
        "{\\style Heading2}Travel\n"
        "{\\style Normal}Two conferences per year are planned.\n",
    ),
    (
        "report2.npdf",
        "%NPDF-1.0\n"
        "[F24] Program Assessment\n"
        "[F14] Technology Gap\n"
        "[F10] Nothing here is shrinking; margins hold steady.\n"
        "[F14] Cost Details\n"
        "[F10] Shuttle budget aggregated per center.\n",
    ),
    (
        "notes.md",
        "# Overview\n\nGeneral text about the Shuttle program.\n\n"
        "## Budget\n\nTravel dollars and **equipment** dollars.\n",
    ),
    (
        "page.html",
        "<html><head><title>Ops Page</title></head><body>"
        "<h1>Operations</h1><p>Launch operations summary.</p>"
        "<h2>Budget</h2><p>Ground systems budget holds.</p>"
        "</body></html>",
    ),
    (
        "budget.csv",
        "Item,FY04,FY05\nTravel,\"10,000\",12000\nEquipment,5000,7000\n",
    ),
]


@pytest.fixture
def store() -> XmlStore:
    """An empty XML store."""
    return XmlStore()


@pytest.fixture
def loaded_store() -> XmlStore:
    """A store pre-loaded with the sample corpus."""
    xml_store = XmlStore()
    for name, text in SAMPLE_FILES:
        xml_store.store_text(text, name)
    return xml_store


@pytest.fixture
def netmark() -> Netmark:
    """An empty NETMARK node."""
    return Netmark("test-node")


@pytest.fixture
def loaded_netmark() -> Netmark:
    """A NETMARK node with the sample corpus ingested via the daemon."""
    node = Netmark("test-node")
    node.ingest_many(SAMPLE_FILES)
    return node
