"""The daemon under injected faults: retries, quarantine, no poison loops."""

import pytest

from repro.resilience import FaultPlan, LogicalClock, RetryPolicy
from repro.server.daemon import NetmarkDaemon
from repro.server.vfs import VirtualFileSystem
from repro.store import XmlStore

NDOC = "{\\ndoc1}\n{\\style Heading1}Budget\n{\\style Normal}Travel funds.\n"


def faulty_rig(plan, *, retry=None, clock=None, retry_seed=0):
    store = XmlStore()
    vfs = VirtualFileSystem()
    daemon = NetmarkDaemon(
        plan.wrap_store(store),
        plan.wrap_vfs(vfs),
        "/incoming",
        retry=retry,
        clock=clock if clock is not None else LogicalClock(),
        retry_seed=retry_seed,
    )
    return store, vfs, daemon


class TestDaemonRetry:
    def test_transient_store_fault_retried_then_stored(self):
        clock = LogicalClock()
        plan = FaultPlan(clock=clock)
        plan.fail("store", "replace_text", times=2)
        store, vfs, daemon = faulty_rig(
            plan, retry=RetryPolicy(max_attempts=3), clock=clock
        )
        vfs.write("/incoming/r.ndoc", NDOC)
        [record] = daemon.poll()
        assert record.ok
        assert record.attempts == 3
        assert len(store) == 1
        assert vfs.exists("/incoming/processed/r.ndoc")

    def test_retry_exhaustion_quarantines_with_attempt_count(self):
        # Regression: the daemon must exhaust its retry budget *before*
        # quarantining — never quarantine on the first transient failure.
        plan = FaultPlan()
        plan.fail("store", "replace_text", times=None)
        store, vfs, daemon = faulty_rig(plan, retry=RetryPolicy(max_attempts=3))
        vfs.write("/incoming/r.ndoc", NDOC)
        [record] = daemon.poll()
        assert not record.ok
        assert record.attempts == 3
        assert plan.injected("store") == 3
        assert "unavailable" in record.error
        assert vfs.exists("/incoming/errors/r.ndoc")
        assert len(store) == 0

    def test_without_policy_single_attempt(self):
        plan = FaultPlan()
        plan.fail("store", "replace_text", times=1)
        store, vfs, daemon = faulty_rig(plan)  # retry=None
        vfs.write("/incoming/r.ndoc", NDOC)
        [record] = daemon.poll()
        assert not record.ok and record.attempts == 1


class TestPoisonFiles:
    def test_failed_quarantine_move_does_not_loop(self):
        # The quarantine move itself faults, so the poison file stays in
        # the drop folder — the next poll must skip it, not re-ingest.
        plan = FaultPlan()
        plan.fail("vfs", "move", times=None)
        store, vfs, daemon = faulty_rig(plan)
        vfs.write("/incoming/bad.xml", "<a><b></a>")
        [record] = daemon.poll()
        assert not record.ok
        assert vfs.exists("/incoming/bad.xml")  # stuck in place
        assert daemon.poll() == []
        assert daemon.run_until_idle() == 0
        assert not daemon.budget_exhausted

    def test_redropped_poison_revision_skipped(self):
        store, vfs, daemon = faulty_rig(FaultPlan())
        vfs.write("/incoming/bad.xml", "<a><b></a>")
        daemon.poll()
        assert vfs.exists("/incoming/errors/bad.xml")
        # A fault (or a stubborn user) drops the same bytes again.
        vfs.write("/incoming/bad.xml", "<a><b></a>")
        assert daemon.poll() == []

    def test_changed_revision_of_quarantined_name_is_reingested(self):
        store, vfs, daemon = faulty_rig(FaultPlan())
        vfs.write("/incoming/doc.ndoc", "<a><b></a>")
        [record] = daemon.poll()
        assert not record.ok
        # Same name, fixed content: a genuinely new revision.
        vfs.write("/incoming/doc.ndoc", NDOC)
        [record] = daemon.poll()
        assert record.ok
        assert len(store) == 1

    def test_budget_exhaustion_is_flagged(self):
        store, vfs, daemon = faulty_rig(FaultPlan())
        vfs.write("/incoming/r.ndoc", NDOC)
        assert daemon.run_until_idle(max_polls=0) == 0
        assert daemon.budget_exhausted
        assert daemon.run_until_idle() == 1
        assert not daemon.budget_exhausted


class TestDeterminism:
    def test_same_seed_same_retry_schedule(self):
        def run(seed):
            clock = LogicalClock()
            plan = FaultPlan(seed=seed, clock=clock)
            plan.sometimes("store", "replace_text", probability=0.6)
            store, vfs, daemon = faulty_rig(
                plan,
                retry=RetryPolicy(max_attempts=4, base_delay=2, max_delay=20),
                clock=clock,
                retry_seed=seed,
            )
            for index in range(4):
                extra = f"{{\\style Normal}}Doc {index}\n"
                vfs.write(f"/incoming/d{index}.ndoc", NDOC + extra)
            daemon.run_until_idle()
            return (
                clock.now(),
                plan.injected(),
                [(r.path, r.status, r.attempts) for r in daemon.history],
            )

        assert run(7) == run(7)
