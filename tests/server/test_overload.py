"""Overload protection: shedding, deadlines, cancellation, brownout."""

import threading

import pytest

from repro import obs
from repro.errors import ServerError
from repro.netmark import Netmark
from repro.resilience import Budget, CancellationToken
from repro.server.overload import AdmissionController, degrade_query
from repro.server.workers import WorkerPool
from tests.conftest import SAMPLE_FILES

NDOC = "{\\ndoc1}\n{\\style Heading1}Budget\n{\\style Normal}Travel funds.\n"


class SteppingClock:
    """Advances one tick per read — deterministic mid-request expiry."""

    def __init__(self) -> None:
        self.tick = 0

    def now(self) -> int:
        self.tick += 1
        return self.tick


class CountingApi:
    """API wrapper that counts executed requests (budget-aware)."""

    def __init__(self, api) -> None:
        self.api = api
        self.clock = api.clock
        self.calls = 0

    def request(self, method, target, body="", budget=None):
        self.calls += 1
        return self.api.request(method, target, body, budget=budget)


@pytest.fixture
def node():
    node = Netmark()
    node.drop("r.ndoc", NDOC)
    node.poll()
    return node


class TestAdmissionController:
    def test_hysteresis_enters_high_exits_low(self):
        admission = AdmissionController(
            queue_limit=4, enter_pressure=4, exit_pressure=1, shed_cost=2
        )
        assert not admission.brownout_active
        admission.on_shed()  # pressure 2
        assert not admission.brownout_active  # one burst is not brownout
        admission.on_shed()  # pressure 4 -> enter
        assert admission.brownout_active
        admission.on_accept()  # pressure 3: still above exit
        admission.on_accept()  # pressure 2
        assert admission.brownout_active  # hysteresis band holds
        admission.on_accept()  # pressure 1 -> exit
        assert not admission.brownout_active
        assert admission.sheds == 2
        assert admission.brownout_entries == admission.brownout_exits == 1

    def test_pressure_is_clamped(self):
        admission = AdmissionController(
            queue_limit=1, enter_pressure=2, exit_pressure=0, shed_cost=2
        )
        for _ in range(50):
            admission.on_shed()
        assert admission.pressure <= 4  # enter + shed_cost
        # Bounded pressure means bounded recovery time.
        for _ in range(5):
            admission.on_accept()
        assert not admission.brownout_active

    def test_bad_configuration_rejected(self):
        with pytest.raises(ServerError):
            AdmissionController(queue_limit=0)
        with pytest.raises(ServerError):
            AdmissionController(enter_pressure=2, exit_pressure=2)

    def test_degrade_query_forces_cheapest_plan(self):
        from repro.query.language import parse_query

        query = parse_query("Context=Budget&xslt=report&limit=50")
        degraded = degrade_query(query, 5)
        assert degraded.limit == 5 and degraded.stylesheet is None
        # A client limit tighter than the brownout limit survives.
        tight = parse_query("Context=Budget&limit=2")
        assert degrade_query(tight, 5).limit == 2


class TestShedding:
    def test_full_queue_sheds_with_retry_after(self, node):
        admission = AdmissionController(queue_limit=2, enter_pressure=4)
        pool = WorkerPool(node.api, admission=admission, manual=True)
        kept = [pool.submit("GET", "/docs") for _ in range(2)]
        shed = pool.submit("GET", "/docs")
        # Shed immediately: resolved before any serving happens.
        assert shed.done()
        response = shed.result()
        assert response.status == 503
        assert response.header("Retry-After") == "3"
        assert 'code="overloaded"' in response.body
        assert admission.sheds == 1
        # The admitted requests still complete normally.
        assert pool.serve_pending() == 2
        assert all(f.result().ok for f in kept)

    def test_queue_depth_is_bounded_by_the_limit(self, node):
        admission = AdmissionController(queue_limit=3, enter_pressure=100)
        pool = WorkerPool(node.api, admission=admission, manual=True)
        futures = [pool.submit("GET", "/docs") for _ in range(20)]
        assert pool.queue_depth() == 3
        pool.serve_pending()
        statuses = sorted(f.result().status for f in futures)
        assert statuses == [200] * 3 + [503] * 17


class TestQueueDeadlines:
    def test_deadline_starts_at_enqueue_and_expires_in_queue(self, node):
        api = CountingApi(node.api)
        pool = WorkerPool(api, deadline_ticks=10, manual=True)
        future = pool.submit("GET", "/docs")
        node.api.clock.advance(11)  # the request sits in the queue too long
        pool.serve_pending()
        response = future.result()
        assert response.status == 504
        assert 'code="deadline-exceeded"' in response.body
        assert response.header("Retry-After") == "3"
        # The guarantee: an expired request is never *executed*.
        assert api.calls == 0

    def test_fresh_requests_execute_normally(self, node):
        api = CountingApi(node.api)
        pool = WorkerPool(api, deadline_ticks=10, manual=True)
        future = pool.submit("GET", "/docs")
        pool.serve_pending()
        assert future.result().ok
        assert api.calls == 1


class TestAbandonedRequests:
    def test_expired_result_wait_cancels_the_job(self, node):
        api = CountingApi(node.api)
        pool = WorkerPool(api, manual=True)
        future = pool.submit("GET", "/docs")
        with pytest.raises(ServerError):
            future.result(timeout=0.01)  # nobody is serving yet
        # The worker reaching the abandoned job skips it entirely.
        pool.serve_pending()
        assert future.result().status == 499
        assert api.calls == 0

    def test_explicit_cancel_answers_499(self, node):
        pool = WorkerPool(node.api, manual=True)
        future = pool.submit("GET", "/docs")
        assert future.cancel("changed my mind")
        pool.serve_pending()
        response = future.result()
        assert response.status == 499
        assert "changed my mind" in response.body

    def test_cancel_after_completion_is_a_no_op(self, node):
        pool = WorkerPool(node.api, manual=True)
        future = pool.submit("GET", "/docs")
        pool.serve_pending()
        assert not future.cancel()
        assert future.result().ok


class TestHttpDeadlines:
    def test_hard_deadline_maps_to_504(self):
        node = Netmark()
        node.ingest_many(SAMPLE_FILES)
        node.api.clock = SteppingClock()
        response = node.api.get("/search?Context=Budget&Deadline=2")
        assert response.status == 504
        assert 'code="deadline-exceeded"' in response.body
        assert response.header("Retry-After") == "3"

    def test_partial_deadline_returns_truncated_200(self):
        node = Netmark()
        node.ingest_many(SAMPLE_FILES)
        full = node.api.get("/search?Context=Budget")
        assert full.ok
        node.api.clock = SteppingClock()
        response = node.api.get(
            "/search?Context=Budget&Deadline=2&Partial=1"
        )
        assert response.ok
        assert 'partial="true"' in response.body
        assert "<deadline-expired>" in response.body
        assert response.body.count("<result ") < full.body.count("<result ")

    def test_cancelled_budget_maps_to_499(self, node):
        token = CancellationToken()
        token.cancel("client disconnected")
        response = node.api.request(
            "GET", "/search?Context=Budget", budget=Budget(token=token)
        )
        assert response.status == 499
        assert 'code="cancelled"' in response.body

    def test_deadline_without_pressure_changes_nothing(self, node):
        plain = node.api.get("/search?Context=Budget")
        with_deadline = node.api.get(
            "/search?Context=Budget&Deadline=1000000"
        )
        assert with_deadline.ok
        # Same matches, no partial marking — only the echoed query
        # string in the envelope differs.
        assert with_deadline.body.count("<result ") == plain.body.count(
            "<result "
        )
        assert "partial" not in with_deadline.body


class TestBrownout:
    def brownout_node(self):
        node = Netmark()
        node.ingest_many(SAMPLE_FILES)
        admission = AdmissionController(
            queue_limit=1, enter_pressure=4, exit_pressure=1,
            shed_cost=2, brownout_limit=1,
        )
        pool = WorkerPool(node.api, admission=admission, manual=True)
        return node, admission, pool

    def test_sustained_shedding_degrades_searches(self):
        node, admission, pool = self.brownout_node()
        node.install_stylesheet(
            "brief.xsl",
            "<xsl:stylesheet>"
            '<xsl:template match="/"><brief>'
            '<xsl:value-of select="count(results/result)"/>'
            "</brief></xsl:template></xsl:stylesheet>",
        )
        pool.submit("GET", "/docs")  # fill the queue
        for _ in range(2):  # sustained shedding -> brownout
            pool.submit("GET", "/docs")
        assert admission.brownout_active
        response = node.api.get("/search?Context=Budget&xslt=brief.xsl")
        assert response.ok
        assert 'degraded="brownout"' in response.body
        # Forced result limit and no XSLT composition.
        assert response.body.count("<result ") == 1
        assert "<brief>" not in response.body

    def test_recovery_exits_brownout_with_hysteresis(self):
        node, admission, pool = self.brownout_node()
        pool.submit("GET", "/docs")
        for _ in range(2):
            pool.submit("GET", "/docs")
        assert admission.brownout_active
        pool.serve_pending()
        # Accepted traffic bleeds pressure back under the exit threshold.
        for _ in range(4):
            pool.submit("GET", "/docs")
            pool.serve_pending()
        assert not admission.brownout_active
        response = node.api.get("/search?Context=Budget")
        assert "degraded" not in response.body
        assert response.body.count("<result ") == 3

    def test_explain_is_exempt_from_brownout(self):
        node, admission, pool = self.brownout_node()
        pool.submit("GET", "/docs")
        for _ in range(2):
            pool.submit("GET", "/docs")
        assert admission.brownout_active
        response = node.api.get("/search?Context=Budget&Explain=1")
        assert response.ok
        assert "degraded" not in response.body


class TestStopSemantics:
    def test_stop_rejects_pending_jobs(self, node):
        pool = WorkerPool(node.api, manual=True)
        futures = [pool.submit("GET", "/docs") for _ in range(3)]
        pool.stop()
        for future in futures:
            response = future.result()
            assert response.status == 503
            assert 'code="shutting-down"' in response.body

    def test_stop_reports_unjoined_workers(self, node):
        entered = threading.Event()
        gate = threading.Event()

        class BlockingApi:
            clock = node.api.clock

            def request(self, method, target, body="", budget=None):
                entered.set()
                gate.wait()
                return node.api.request(method, target, body, budget=budget)

        pool = WorkerPool(BlockingApi(), workers=1)
        pool.start()
        stuck = pool.submit("GET", "/docs")
        assert entered.wait(5)  # the worker is now wedged in its handler
        pending = pool.submit("GET", "/docs")
        unjoined = pool.stop(timeout=0.05)
        assert unjoined == 1
        assert pending.result().status == 503
        assert 'code="shutting-down"' in pending.result().body
        # Unwedge; the abandoned daemon worker still answers its client.
        gate.set()
        assert stuck.result(timeout=5).ok

    def test_clean_stop_reports_zero_unjoined(self, node):
        pool = WorkerPool(node.api, workers=2)
        pool.start()
        assert pool.request("GET", "/docs").ok
        assert pool.stop(timeout=5) == 0


class TestOverloadMetrics:
    def test_queue_depth_latency_and_shed_series(self, node):
        previous = obs.push_registry()
        try:
            admission = AdmissionController(queue_limit=1, enter_pressure=9)
            pool = WorkerPool(node.api, admission=admission, manual=True)
            pool.submit("GET", "/docs")
            pool.submit("GET", "/search?Context=Budget")  # shed
            pool.serve_pending()
            node.api.get("/search?Context=Budget")
            registry = obs.get_registry()
            assert registry.get("repro_server_queue_depth") is not None
            shed = registry.get("repro_server_requests_shed_total")
            assert sum(value for _, value in shed.series()) == 1
            latency = registry.get("repro_server_request_latency_ticks")
            assert latency is not None
            rendered = obs.render_text()
            assert 'route="search"' in rendered
            assert 'route="docs"' in rendered
        finally:
            obs.set_registry(previous)

    def test_timeout_and_cancel_counters(self, node):
        previous = obs.push_registry()
        try:
            pool = WorkerPool(node.api, deadline_ticks=1, manual=True)
            expired = pool.submit("GET", "/docs")
            node.api.clock.advance(2)
            cancelled = pool.submit("GET", "/docs")
            cancelled.cancel()
            pool.serve_pending()
            assert expired.result().status == 504
            assert cancelled.result().status == 499
            registry = obs.get_registry()
            timeouts = registry.get("repro_server_requests_timed_out_total")
            cancels = registry.get("repro_server_requests_cancelled_total")
            assert sum(value for _, value in timeouts.series()) == 1
            assert sum(value for _, value in cancels.series()) == 1
        finally:
            obs.set_registry(previous)
