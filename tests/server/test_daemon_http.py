"""Ingestion daemon and the HTTP API endpoint."""

import pytest

from repro.netmark import Netmark
from repro.server.daemon import NetmarkDaemon
from repro.server.vfs import VirtualFileSystem
from repro.store import XmlStore

NDOC = "{\\ndoc1}\n{\\style Heading1}Budget\n{\\style Normal}Travel funds.\n"


@pytest.fixture
def rig():
    store = XmlStore()
    vfs = VirtualFileSystem()
    daemon = NetmarkDaemon(store, vfs, "/incoming")
    return store, vfs, daemon


class TestDaemon:
    def test_poll_ingests_dropped_file(self, rig):
        store, vfs, daemon = rig
        vfs.write("/incoming/r.ndoc", NDOC)
        [record] = daemon.poll()
        assert record.ok and record.doc_id == 1
        assert len(store) == 1

    def test_processed_files_move_aside(self, rig):
        store, vfs, daemon = rig
        vfs.write("/incoming/r.ndoc", NDOC)
        daemon.poll()
        assert not vfs.exists("/incoming/r.ndoc")
        assert vfs.exists("/incoming/processed/r.ndoc")

    def test_second_poll_is_idle(self, rig):
        store, vfs, daemon = rig
        vfs.write("/incoming/r.ndoc", NDOC)
        daemon.poll()
        assert daemon.poll() == []
        assert len(store) == 1

    def test_failure_quarantined(self, rig):
        store, vfs, daemon = rig
        vfs.write("/incoming/bad.xml", "<a><b></a>")
        [record] = daemon.poll()
        assert not record.ok and "mismatched" in record.error
        assert vfs.exists("/incoming/errors/bad.xml")
        assert len(store) == 0

    def test_quarantine_collision_gets_counter_suffix(self, rig):
        # Two quarantined files with the same name and the same logical
        # %H%M%S stamp must not collide: the second gets a counter
        # suffix instead of clobbering (or erroring on) the first.
        store, vfs, daemon = rig
        vfs.write("/incoming/errors/bad.xml", "occupied")
        vfs.write("/incoming/bad.xml", "<a><b></a>")
        stamp = vfs.entry("/incoming/bad.xml").modified.strftime("%H%M%S")
        vfs.write(f"/incoming/errors/{stamp}-bad.xml", "also occupied")
        [record] = daemon.poll()
        assert not record.ok
        assert vfs.read(f"/incoming/errors/{stamp}-1-bad.xml") == "<a><b></a>"
        assert vfs.read("/incoming/errors/bad.xml") == "occupied"
        assert vfs.read(f"/incoming/errors/{stamp}-bad.xml") == "also occupied"

    def test_poison_file_not_retried(self, rig):
        store, vfs, daemon = rig
        vfs.write("/incoming/bad.xml", "<a><b></a>")
        daemon.poll()
        assert daemon.poll() == []

    def test_mixed_batch(self, rig):
        store, vfs, daemon = rig
        vfs.write("/incoming/good.ndoc", NDOC)
        vfs.write("/incoming/bad.xml", "<a><b></a>")
        records = daemon.poll()
        assert sorted(record.status for record in records) == [
            "failed", "stored",
        ]
        assert daemon.stats()["stored"] == 1
        assert daemon.stats()["failed"] == 1

    def test_run_until_idle(self, rig):
        store, vfs, daemon = rig
        for index in range(5):
            vfs.write(f"/incoming/d{index}.ndoc", NDOC)
        assert daemon.run_until_idle() == 5

    def test_discard_originals_mode(self):
        store = XmlStore()
        vfs = VirtualFileSystem()
        daemon = NetmarkDaemon(store, vfs, "/in", keep_originals=False)
        vfs.write("/in/r.ndoc", NDOC)
        daemon.poll()
        assert not vfs.exists("/in/processed/r.ndoc")
        assert len(store) == 1

    def test_file_date_comes_from_vfs(self, rig):
        store, vfs, daemon = rig
        vfs.write("/incoming/r.ndoc", NDOC)
        modified = vfs.entry("/incoming/r.ndoc").modified
        daemon.poll()
        assert store.describe(1).file_date == modified

    def test_redrop_supersedes_document(self, rig):
        store, vfs, daemon = rig
        vfs.write("/incoming/r.ndoc", NDOC)
        daemon.poll()
        edited = NDOC.replace("Travel funds.", "Revised travel funds.")
        vfs.write("/incoming/r.ndoc", edited)
        [record] = daemon.poll()
        assert record.ok
        assert len(store) == 1  # superseded, not duplicated
        entry = store.lookup_by_name("r.ndoc")
        assert entry.metadata["revision"] == "2"
        document = store.document(entry.doc_id)
        assert "Revised travel funds." in document.text_content()

    def test_duplicate_mode_when_replace_disabled(self):
        store = XmlStore()
        vfs = VirtualFileSystem()
        daemon = NetmarkDaemon(store, vfs, "/in", replace_existing=False)
        vfs.write("/in/r.ndoc", NDOC)
        daemon.poll()
        vfs.write("/in/r.ndoc", NDOC)
        [record] = daemon.poll()
        assert record.ok
        assert len(store) == 2

    def test_failed_replacement_keeps_old_revision(self, rig):
        store, vfs, daemon = rig
        vfs.write("/incoming/r.xml", "<doc><a>original</a></doc>")
        daemon.poll()
        vfs.write("/incoming/r.xml", "<doc><broken></doc>")
        [record] = daemon.poll()
        assert not record.ok
        entry = store.lookup_by_name("r.xml")
        assert entry is not None
        assert "original" in store.document(entry.doc_id).text_content()


class TestHttpApi:
    @pytest.fixture
    def node(self):
        netmark = Netmark()
        netmark.ingest("r.ndoc", NDOC)
        return netmark

    def test_search_route(self, node):
        response = node.http_get("/search?Context=Budget")
        assert response.ok
        assert "Travel funds." in response.body
        assert response.body.startswith("<results")

    def test_search_with_stylesheet(self, node):
        node.install_stylesheet(
            "brief.xsl",
            "<xsl:stylesheet>"
            '<xsl:template match="/"><brief>'
            '<xsl:value-of select="count(results/result)"/>'
            "</brief></xsl:template></xsl:stylesheet>",
        )
        response = node.http_get("/search?Context=Budget&xslt=brief.xsl")
        assert response.ok
        assert "<brief>1</brief>" in response.body

    def test_missing_stylesheet_404(self, node):
        response = node.http_get("/search?Context=Budget&xslt=nope.xsl")
        assert response.status == 404

    def test_bad_query_400(self, node):
        assert node.http_get("/search?limit=3").status == 400

    def test_doc_route(self, node):
        response = node.http_get("/doc/1")
        assert response.ok and "<document>" in response.body

    def test_doc_route_errors(self, node):
        assert node.http_get("/doc/99").status == 404
        assert node.http_get("/doc/xyz").status == 400

    def test_docs_catalog(self, node):
        response = node.http_get("/docs")
        assert response.ok
        assert 'name="r.ndoc"' in response.body

    def test_unknown_route_404(self, node):
        assert node.http_get("/nope").status == 404

    def test_dav_routes(self, node):
        assert node.api.request("PUT", "/dav/x/y.txt", "body").status == 409
        node.api.request("MKCOL", "/dav/x")
        assert node.api.request("PUT", "/dav/x/y.txt", "body").status == 201
        assert node.api.request("GET", "/dav/x/y.txt").body == "body"
        assert node.api.request("DELETE", "/dav/x/y.txt").status == 204

    def test_method_not_allowed(self, node):
        assert node.api.request("POST", "/search?Context=X").status == 405
        assert node.api.request("PATCH", "/dav/x").status == 405

    def test_databank_without_router_sources(self, node):
        response = node.http_get("/search?Context=X&databank=nope")
        assert response.status == 500  # unknown databank surfaces as error

    def test_invalid_stylesheet_rejected_at_install(self, node):
        import pytest as _pytest

        from repro.errors import XsltError

        with _pytest.raises(XsltError):
            node.install_stylesheet("bad.xsl", "<not-xsl/>")


class TestExplainHttp:
    @pytest.fixture
    def node(self):
        netmark = Netmark()
        netmark.ingest("r.ndoc", NDOC)
        return netmark

    def test_explain_returns_plan_tree(self, node):
        response = node.http_get("/search?Context=Budget&Explain=1")
        assert response.ok
        assert response.body.startswith("<plan")
        assert 'kind="context"' in response.body
        assert '<operator name="materialize" rows="1"' in response.body
        assert '<operator name="limit"' in response.body

    def test_explain_reflects_limit(self, node):
        response = node.http_get("/search?Content=Travel&limit=1&Explain=1")
        assert response.ok
        assert 'name="limit" rows="1" detail="1"' in response.body

    def test_explain_zero_is_a_normal_search(self, node):
        response = node.http_get("/search?Context=Budget&Explain=0")
        assert response.ok
        assert response.body.startswith("<results")

    def test_explain_ignores_stylesheets(self, node):
        # Stylesheets apply to results, not plans: a missing stylesheet
        # that would 404 a normal search leaves Explain=1 untouched.
        response = node.http_get(
            "/search?Context=Budget&xslt=nope.xsl&Explain=1"
        )
        assert response.ok
        assert response.body.startswith("<plan")

    def test_explain_unknown_databank_errors(self, node):
        response = node.http_get("/search?Context=X&databank=any&Explain=1")
        assert response.status == 500
        assert "no databank" in response.body
