"""Observability through the HTTP surface: /metrics, Explain=profile, Trace=1.

The issue's acceptance bar: ``/metrics`` must expose WAL, query and
federation series after a workload that exercises all three layers, and
``Explain=profile`` must return per-operator timings and row counts for
a combined Context+Content query.
"""

import pytest

from repro import obs
from repro.netmark import Netmark
from repro.obs import Tracer
from repro.ordbms import MemoryLogDevice
from repro.sgml.parser import parse_xml as parse

PLAN = (
    "<ndoc><title>Plan</title>"
    "<section><heading>Budget</heading><p>resource costs rise</p></section>"
    "<section><heading>Schedule</heading><p>milestones and resource</p>"
    "</section></ndoc>"
)
REPORT = (
    "<ndoc><title>Report</title>"
    "<section><heading>Budget</heading><p>resource view</p></section>"
    "</ndoc>"
)


@pytest.fixture(autouse=True)
def sandbox_registry():
    previous = obs.get_registry()
    obs.push_registry()
    yield
    obs.set_registry(previous)


@pytest.fixture()
def node():
    durable = Netmark(device=MemoryLogDevice())
    durable.ingest_many([("plan.xml", PLAN), ("report.xml", REPORT)])
    durable.create_databank("mission")
    durable.add_source("mission", durable.as_source("local"))
    return durable


class TestMetricsEndpoint:
    def test_exposes_wal_query_and_federation_series(self, node):
        node.http_get("/search?Context=Budget")
        response = node.http_get(
            "/search?Context=Budget&databank=mission"
        )
        assert response.ok
        metrics = node.http_get("/metrics")
        assert metrics.ok
        assert metrics.content_type == "text/plain"
        text = metrics.body
        assert "repro_ordbms_wal_appends_total" in text
        assert "repro_ordbms_wal_syncs_total" in text
        assert 'repro_query_queries_total{kind="context"}' in text
        assert 'repro_federation_source_requests_total' in text
        assert "repro_server_requests_total" in text
        assert "repro_server_ingest_total" in text

    def test_exposition_format_shape(self, node):
        node.http_get("/search?Context=Budget")
        text = node.http_get("/metrics").body
        lines = text.strip().split("\n")
        assert text.endswith("\n")
        for line in lines:
            if line.startswith("# TYPE"):
                parts = line.split()
                assert parts[-1] in {"counter", "gauge", "histogram"}
            elif not line.startswith("#"):
                name_part, _, value = line.rpartition(" ")
                assert name_part.startswith("repro_"), line
                float(value)  # every sample value parses as a number
        # TYPE precedes the samples of its family.
        type_index = lines.index(
            "# TYPE repro_query_queries_total counter"
        )
        sample_index = next(
            index
            for index, line in enumerate(lines)
            if line.startswith("repro_query_queries_total{")
        )
        assert type_index < sample_index

    def test_served_while_recovering(self, node):
        node.api.recovering = True
        try:
            metrics = node.http_get("/metrics")
            search = node.http_get("/search?Context=Budget")
        finally:
            node.api.recovering = False
        assert metrics.ok
        assert search.status == 503

    def test_request_counter_labels_routes(self, node):
        node.http_get("/search?Context=Budget")
        node.http_get("/nonsense")
        node.http_get("/metrics")
        snap = obs.snapshot()
        assert (
            snap['repro_server_requests_total{route="search",status="200"}']
            == 1
        )
        assert (
            snap['repro_server_requests_total{route="other",status="404"}']
            == 1
        )


class TestExplainProfile:
    def test_combined_query_profile_over_http(self, node):
        response = node.http_get(
            "/search?Context=Budget&Content=resource&Explain=profile"
        )
        assert response.ok
        document = parse(response.body)
        plan = document.root
        assert plan.tag == "plan"
        assert plan.attributes["profile"] == "work-units"
        assert int(plan.attributes["total-ticks"]) > 0

        operators = []

        def collect(element):
            if getattr(element, "tag", None) == "operator":
                operators.append(element)
            for child in getattr(element, "children", ()):
                collect(child)

        collect(plan)
        names = {operator.attributes["name"] for operator in operators}
        # The combined pipeline: probe, lift, intersect, walk, limit...
        assert {"materialize", "section-walk"} <= names or len(names) >= 4
        for operator in operators:
            assert "rows" in operator.attributes
            assert int(operator.attributes["ticks"]) >= 0

    def test_plain_explain_has_no_profile(self, node):
        response = node.http_get("/search?Context=Budget&Explain=1")
        assert response.ok
        assert "profile=" not in response.body
        assert "ticks=" not in response.body


class TestTraceParameter:
    def test_trace_attaches_span_tree(self, node):
        response = node.http_get("/search?Context=Budget&Trace=1")
        assert response.ok
        document = parse(response.body)
        traces = [
            child
            for child in document.root.children
            if getattr(child, "tag", None) == "trace"
        ]
        assert len(traces) == 1
        (request_span,) = [
            child
            for child in traces[0].children
            if getattr(child, "tag", None) == "span"
        ]
        assert request_span.attributes["name"] == "request"
        assert request_span.attributes["route"] == "/search"
        child_names = [
            child.attributes["name"]
            for child in request_span.children
            if getattr(child, "tag", None) == "span"
        ]
        assert "execute" in child_names
        assert "compose" in child_names
        assert int(request_span.attributes["ticks"]) > 0

    def test_untraced_response_is_clean(self, node):
        response = node.http_get("/search?Context=Budget")
        assert response.ok
        assert "<trace" not in response.body

    def test_trace_wraps_explain_too(self, node):
        response = node.http_get(
            "/search?Context=Budget&Explain=1&Trace=1"
        )
        assert response.ok
        assert "<trace" in response.body
        assert 'name="explain"' in response.body


class TestDaemonSpans:
    def test_facade_tracer_sees_ingest_stages(self):
        tracer = Tracer()
        node = Netmark(tracer=tracer)
        node.drop("plan.xml", PLAN)
        node.poll()
        (poll_root,) = tracer.take_roots()
        assert poll_root.name == "daemon.poll"
        names = [span.name for span in poll_root.walk()]
        for stage in (
            "daemon.ingest", "daemon.read", "daemon.store",
            "daemon.finalize",
        ):
            assert stage in names

    def test_recovery_metrics_surface_after_restart(self):
        device = MemoryLogDevice()
        first = Netmark(device=device)
        first.ingest("plan.xml", PLAN)
        obs.push_registry()  # only observe the second incarnation
        restarted = Netmark(device=device, vfs=first.vfs)
        assert restarted.document_count == 1
        text = restarted.http_get("/metrics").body
        assert "repro_ordbms_recovery_runs_total 1" in text
        assert "repro_ordbms_recovery_records_replayed_total" in text
