"""Daemon ingest under slow and hung converters.

The worker pool and the ingest thread must stay independent even when a
converter misbehaves: a *slow* converter (modelled as injected logical
latency) keeps the heartbeat advancing and readers answering; a *hung*
converter freezes the heartbeat — the watchdog signature — while
readers still answer off their MVCC snapshots.
"""

import threading

import pytest

from repro import obs
from repro.converters import registry
from repro.converters.base import Converter, Section
from repro.netmark import Netmark
from repro.resilience import LogicalClock
from repro.server.workers import IngestThread, WorkerPool


class SlowConverter(Converter):
    """Charges a fixed logical latency per document — slow, not stuck."""

    format_name = "slowdoc"
    extensions = ("slowdoc",)

    def __init__(self, clock: LogicalClock, latency: int) -> None:
        self.clock = clock
        self.latency = latency
        self.converted = 0

    def upmark(self, text: str, name: str) -> list[Section]:
        self.clock.advance(self.latency)
        self.converted += 1
        return [Section(title="Budget", blocks=[text.strip() or name])]


class HungConverter(Converter):
    """Blocks inside ``upmark`` until released — a wedged parser."""

    format_name = "hungdoc"
    extensions = ("hungdoc",)

    def __init__(self) -> None:
        self.entered = threading.Event()
        self.release = threading.Event()

    def upmark(self, text: str, name: str) -> list[Section]:
        self.entered.set()
        self.release.wait()
        return [Section(title="Budget", blocks=[text.strip() or name])]


@pytest.fixture
def slow_converter():
    converter = SlowConverter(LogicalClock(), latency=250)
    registry.register(converter)
    yield converter
    registry.unregister(converter)


@pytest.fixture
def hung_converter():
    converter = HungConverter()
    registry.register(converter)
    yield converter
    converter.release.set()  # never leave the ingest thread wedged
    registry.unregister(converter)


class TestSlowConverter:
    def test_ingest_heartbeats_and_readers_stay_live(self, slow_converter):
        previous = obs.push_registry()
        try:
            node = Netmark()
            for index in range(5):
                node.drop(f"doc{index}.slowdoc", f"slow document {index}")
            ingest = IngestThread(node.daemon)
            ingest.start()
            with WorkerPool(node.api, workers=2) as pool:
                # Readers answer while the slow ingest grinds on.
                for _ in range(8):
                    assert pool.request("GET", "/docs").ok
                assert ingest.stop(timeout=30) == 5
                # Slow is not stuck: the loop kept beating (first poll
                # plus at least the final idle poll that observed stop).
                assert ingest.heartbeats >= 2
                # The latency really was charged, once per document.
                assert slow_converter.clock.now() == 5 * 250
                response = pool.request("GET", "/search?Context=Budget")
                assert response.ok
                assert response.body.count("<result ") == 5
            gauge = obs.get_registry().get("repro_server_ingest_heartbeat")
            assert gauge is not None
        finally:
            obs.set_registry(previous)


class TestHungConverter:
    def test_frozen_heartbeat_but_live_readers(self, hung_converter):
        node = Netmark()
        node.ingest("seed.md", "# Budget\n\nSeed content.\n")
        node.drop("stuck.hungdoc", "this one wedges the parser")
        ingest = IngestThread(node.daemon)
        ingest.start()
        assert hung_converter.entered.wait(5)  # poll is now wedged
        frozen = ingest.heartbeats
        with WorkerPool(node.api, workers=2) as pool:
            # The MVCC readers never wait on the wedged writer.
            for _ in range(4):
                assert pool.request("GET", "/search?Context=Budget").ok
            # The watchdog signature: the heartbeat has stopped moving.
            assert ingest.heartbeats == frozen
            # Unwedge; ingest completes and the heartbeat moves again.
            hung_converter.release.set()
            assert ingest.stop(timeout=30) == 1
            assert ingest.heartbeats > frozen
            response = pool.request("GET", "/search?Context=Budget")
            assert "stuck.hungdoc" in response.body
