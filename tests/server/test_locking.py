"""WebDAV class-2 locking: exclusive write locks."""

import pytest

from repro.server.webdav import WebDavServer


@pytest.fixture
def dav():
    server = WebDavServer()
    server.put("/doc.ndoc", "original")
    return server


class TestLockLifecycle:
    def test_lock_returns_token(self, dav):
        response = dav.lock("/doc.ndoc", owner="maluf")
        assert response.status == 200
        assert response.body.startswith("opaquelocktoken:")
        info = dav.lock_info("/doc.ndoc")
        assert info.owner == "maluf"

    def test_lock_missing_file_404(self, dav):
        assert dav.lock("/nope").status == 404

    def test_double_lock_423(self, dav):
        dav.lock("/doc.ndoc")
        assert dav.lock("/doc.ndoc").status == 423

    def test_unlock_with_token(self, dav):
        token = dav.lock("/doc.ndoc").body
        assert dav.unlock("/doc.ndoc", token).status == 204
        assert dav.lock_info("/doc.ndoc") is None

    def test_unlock_wrong_token_403(self, dav):
        dav.lock("/doc.ndoc")
        assert dav.unlock("/doc.ndoc", "bogus").status == 403

    def test_unlock_unlocked_409(self, dav):
        assert dav.unlock("/doc.ndoc", "whatever").status == 409

    def test_tokens_unique(self, dav):
        dav.put("/other", "x")
        first = dav.lock("/doc.ndoc").body
        second = dav.lock("/other").body
        assert first != second


class TestLockEnforcement:
    def test_put_blocked_without_token(self, dav):
        dav.lock("/doc.ndoc", owner="alice")
        response = dav.put("/doc.ndoc", "edited")
        assert response.status == 423
        assert "alice" in response.body
        assert dav.get("/doc.ndoc").body == "original"

    def test_put_allowed_with_token(self, dav):
        token = dav.lock("/doc.ndoc").body
        assert dav.put("/doc.ndoc", "edited", lock_token=token).status == 204
        assert dav.get("/doc.ndoc").body == "edited"

    def test_delete_blocked_then_allowed(self, dav):
        token = dav.lock("/doc.ndoc").body
        assert dav.delete("/doc.ndoc").status == 423
        assert dav.delete("/doc.ndoc", lock_token=token).status == 204

    def test_move_blocked_then_allowed(self, dav):
        token = dav.lock("/doc.ndoc").body
        assert dav.move("/doc.ndoc", "/moved").status == 423
        assert dav.move("/doc.ndoc", "/moved", lock_token=token).status == 201
        # The lock does not follow the resource.
        assert dav.lock_info("/moved") is None

    def test_delete_releases_lock(self, dav):
        token = dav.lock("/doc.ndoc").body
        dav.delete("/doc.ndoc", lock_token=token)
        dav.put("/doc.ndoc", "recreated")
        assert dav.lock_info("/doc.ndoc") is None

    def test_reads_never_blocked(self, dav):
        dav.lock("/doc.ndoc")
        assert dav.get("/doc.ndoc").ok
        assert dav.propfind("/doc.ndoc").status == 207

    def test_unrelated_files_unaffected(self, dav):
        dav.lock("/doc.ndoc")
        assert dav.put("/free.txt", "x").status == 201
