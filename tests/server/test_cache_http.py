"""The result cache at the HTTP surface: the stamp, the knob, the pool.

The production composition root (:class:`~repro.netmark.Netmark`) runs
with the result cache on, so these tests exercise the full stack: a
replayed answer must differ from the original response *only* by the
``cached="true"`` envelope attribute, ``Cache=0`` must opt a request
out, and writes through the store must be visible on the very next
request.
"""

from repro.netmark import Netmark
from repro.server.workers import WorkerPool

STAMP = ' cached="true"'
SEARCH = "/search?Context=Budget"
NEW_BUDGET_DOC = "# Late Filing\n\n## Budget\n\nEmergency budget line.\n"


def _unstamped(body: str) -> str:
    return body.replace(STAMP, "")


class TestEnvelopeStamp:
    def test_replay_is_stamped_and_otherwise_identical(self, loaded_netmark):
        first = loaded_netmark.http_get(SEARCH)
        second = loaded_netmark.http_get(SEARCH)
        assert first.ok and second.ok
        assert STAMP not in first.body
        assert STAMP in second.body
        assert _unstamped(second.body) == first.body

    def test_stamp_lands_on_the_document_root_only(self, loaded_netmark):
        loaded_netmark.http_get(SEARCH)
        replay = loaded_netmark.http_get(SEARCH)
        assert replay.body.count(STAMP) == 1
        assert replay.body.lstrip().startswith("<results")

    def test_cache_0_knob_disables_the_stamp(self, loaded_netmark):
        loaded_netmark.http_get(SEARCH)  # warm the cache
        opted_out = loaded_netmark.http_get(f"{SEARCH}&Cache=0")
        again = loaded_netmark.http_get(f"{SEARCH}&Cache=0")
        assert STAMP not in opted_out.body
        assert STAMP not in again.body
        assert again.body == opted_out.body


class TestPostCommitVisibility:
    def test_ingest_is_visible_on_the_next_request(self, loaded_netmark):
        loaded_netmark.http_get(SEARCH)
        loaded_netmark.ingest("late.md", NEW_BUDGET_DOC)
        fresh = loaded_netmark.http_get(SEARCH)
        assert STAMP not in fresh.body  # new generation: a real recompute
        assert 'doc="late.md"' in fresh.body
        replay = loaded_netmark.http_get(SEARCH)
        assert STAMP in replay.body
        assert 'doc="late.md"' in replay.body

    def test_replace_is_visible_on_the_next_request(self, loaded_netmark):
        loaded_netmark.http_get(SEARCH)
        loaded_netmark.store.replace_text(
            "# Overview\n\n## Budget\n\nRewritten dollars.\n", "notes.md"
        )
        fresh = loaded_netmark.http_get(SEARCH)
        assert STAMP not in fresh.body
        assert "Rewritten dollars." in fresh.body

    def test_delete_is_visible_on_the_next_request(self, loaded_netmark):
        stale = loaded_netmark.http_get(SEARCH)
        assert 'doc="notes.md"' in stale.body
        doomed = loaded_netmark.store.lookup_by_name("notes.md")
        loaded_netmark.store.delete_document(doomed.doc_id)
        fresh = loaded_netmark.http_get(SEARCH)
        assert STAMP not in fresh.body
        assert 'doc="notes.md"' not in fresh.body


class TestWorkerPool:
    def test_concurrent_replays_are_identical_modulo_stamp(
        self, loaded_netmark
    ):
        with WorkerPool(loaded_netmark.api, workers=4) as pool:
            futures = [
                pool.submit("GET", SEARCH) for _ in range(16)
            ]
            bodies = [future.result(timeout=60).body for future in futures]
        assert len({_unstamped(body) for body in bodies}) == 1
        # The cache actually engaged under the pool.
        assert any(STAMP in body for body in bodies)

    def test_pool_races_a_writer_and_settles_fresh(self, loaded_netmark):
        with WorkerPool(loaded_netmark.api, workers=4) as pool:
            futures = [pool.submit("GET", SEARCH) for _ in range(8)]
            loaded_netmark.ingest("late.md", NEW_BUDGET_DOC)
            futures += [pool.submit("GET", SEARCH) for _ in range(8)]
            responses = [future.result(timeout=60) for future in futures]
        assert all(response.ok for response in responses)
        settled = loaded_netmark.http_get(SEARCH)
        assert 'doc="late.md"' in settled.body
