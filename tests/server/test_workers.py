"""Multi-worker serving: the pool, the ingest thread, and their races."""

import pytest

from repro import obs
from repro.errors import ServerError
from repro.netmark import Netmark
from repro.server.workers import IngestThread, WorkerPool
from repro.workloads import CorpusSpec, generate_corpus

NDOC = "{\\ndoc1}\n{\\style Heading1}Budget\n{\\style Normal}Travel funds.\n"


@pytest.fixture
def node():
    return Netmark()


class TestWorkerPool:
    def test_requests_answered_through_the_pool(self, node):
        node.drop("r.ndoc", NDOC)
        node.poll()
        with WorkerPool(node.api, workers=3) as pool:
            response = pool.request("GET", "/search?Context=Budget")
            assert response.ok
            assert "Budget" in response.body
            catalog = pool.request("GET", "/docs")
            assert catalog.ok and 'name="r.ndoc"' in catalog.body

    def test_futures_resolve_out_of_order_submissions(self, node):
        node.drop("r.ndoc", NDOC)
        node.poll()
        with WorkerPool(node.api, workers=4) as pool:
            futures = [
                pool.submit("GET", "/search?Context=Budget")
                for _ in range(16)
            ]
            bodies = {
                # Replayed answers carry the cached="true" envelope
                # stamp; the answer itself must still be identical.
                future.result(timeout=30).body.replace(' cached="true"', "")
                for future in futures
            }
        assert len(bodies) == 1  # identical query, identical answer

    def test_per_worker_request_metrics(self, node):
        previous = obs.push_registry()
        try:
            with WorkerPool(node.api, workers=2) as pool:
                for _ in range(8):
                    pool.request("GET", "/docs")
            counter = obs.get_registry().get(
                "repro_server_worker_requests_total"
            )
            assert counter is not None
            total = sum(value for _, value in counter.series())
            assert total == 8
        finally:
            obs.set_registry(previous)

    def test_submit_before_start_raises(self, node):
        pool = WorkerPool(node.api, workers=1)
        with pytest.raises(ServerError):
            pool.submit("GET", "/docs")

    def test_stop_is_idempotent_and_restartable(self, node):
        pool = WorkerPool(node.api, workers=2)
        pool.start()
        pool.stop()
        pool.stop()
        pool.start()
        assert pool.request("GET", "/docs").ok
        pool.stop()

    def test_worker_survives_a_failing_request(self, node):
        with WorkerPool(node.api, workers=1) as pool:
            bad = pool.request("GET", "/doc/not-a-number")
            assert bad.status == 400
            # The same (only) worker keeps serving afterwards.
            assert pool.request("GET", "/docs").ok


class TestConcurrentServing:
    def test_readers_consistent_during_concurrent_ingest(self, node):
        """Every response produced while the daemon ingests is internally
        consistent: parseable, complete, and equal to some committed
        catalog state — never a torn document."""
        files = generate_corpus(CorpusSpec(documents=18, seed=31))
        for file in files[:6]:
            node.drop(file.name, file.text)
        node.poll()
        baseline = node.api.get("/search?Context=Budget&limit=5").body
        for file in files[6:]:
            node.drop(file.name, file.text)

        ingest = IngestThread(node.daemon)
        with WorkerPool(node.api, workers=4) as pool:
            ingest.start()
            futures = [
                pool.submit("GET", "/search?Context=Budget&limit=5")
                for _ in range(24)
            ]
            responses = [future.result(timeout=60) for future in futures]
            ingested = ingest.stop(timeout=60)
        assert all(response.ok for response in responses)
        assert ingested == len(files) - 6
        # Reads during ingest reflect *some* committed prefix — at least
        # the pre-ingest corpus, at most the final one.
        final = node.api.get("/search?Context=Budget&limit=5").body
        assert baseline is not None and final is not None

    def test_snapshot_pinned_reads_byte_identical_during_ingest(self, node):
        """The acceptance property: a reader pinned before a bulk ingest
        gets byte-identical results throughout it."""
        files = generate_corpus(CorpusSpec(documents=12, seed=32))
        for file in files[:4]:
            node.drop(file.name, file.text)
        node.poll()
        from repro.sgml.serializer import serialize

        engine = node.api.engine
        query = "Context=Budget"
        quiesced = serialize(engine.execute(query).to_xml(), indent=2)
        for file in files[4:]:
            node.drop(file.name, file.text)

        with node.store.snapshot() as snap:
            ingest = IngestThread(node.daemon)
            ingest.start()
            observed = set()
            for _ in range(10):
                observed.add(
                    serialize(
                        engine.execute(query, snapshot=snap).to_xml(),
                        indent=2,
                    )
                )
            ingest.stop(timeout=60)
            observed.add(
                serialize(
                    engine.execute(query, snapshot=snap).to_xml(), indent=2
                )
            )
        assert observed == {quiesced}

    def test_metrics_scrape_during_load_is_well_formed(self, node):
        node.drop("r.ndoc", NDOC)
        node.poll()
        with WorkerPool(node.api, workers=3) as pool:
            futures = [
                pool.submit("GET", "/search?Context=Budget")
                for _ in range(12)
            ]
            scrape = pool.request("GET", "/metrics")
            for future in futures:
                future.result(timeout=60)
        assert scrape.ok
        assert "repro_server_requests_total" in scrape.body
        assert "repro_mvcc_snapshots_opened_total" in scrape.body
