"""Virtual filesystem and WebDAV verbs."""

import pytest

from repro.errors import WebDavError
from repro.server.vfs import VirtualFileSystem, base_name, normalize_path, parent_path
from repro.server.webdav import WebDavServer


class TestPaths:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/a/b", "/a/b"),
            ("a/b", "/a/b"),
            ("/a//b/", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/x/../b", "/a/b"),
            ("/", "/"),
            ("", "/"),
        ],
    )
    def test_normalize(self, raw, expected):
        assert normalize_path(raw) == expected

    def test_escape_above_root_rejected(self):
        with pytest.raises(WebDavError):
            normalize_path("/../etc")

    def test_parent_and_base(self):
        assert parent_path("/a/b/c") == "/a/b"
        assert parent_path("/a") == "/"
        assert parent_path("/") == "/"
        assert base_name("/a/b/file.txt") == "file.txt"


class TestVfs:
    def test_write_read(self):
        vfs = VirtualFileSystem()
        vfs.write("/f.txt", "hello")
        assert vfs.read("/f.txt") == "hello"

    def test_write_requires_parent(self):
        vfs = VirtualFileSystem()
        with pytest.raises(WebDavError):
            vfs.write("/missing/f.txt", "x")

    def test_mkdir_parents(self):
        vfs = VirtualFileSystem()
        vfs.mkdir("/a/b/c", parents=True)
        assert vfs.is_dir("/a/b")
        vfs.write("/a/b/c/f", "x")

    def test_mkdir_existing_rejected(self):
        vfs = VirtualFileSystem()
        vfs.mkdir("/a")
        with pytest.raises(WebDavError):
            vfs.mkdir("/a")

    def test_overwrite_updates_mtime(self):
        vfs = VirtualFileSystem()
        vfs.write("/f", "one")
        first = vfs.entry("/f").modified
        vfs.write("/f", "two")
        assert vfs.entry("/f").modified > first

    def test_delete_file_and_directory_recursive(self):
        vfs = VirtualFileSystem()
        vfs.mkdir("/d")
        vfs.write("/d/f1", "x")
        vfs.mkdir("/d/sub")
        vfs.write("/d/sub/f2", "y")
        vfs.delete("/d")
        assert not vfs.exists("/d")
        assert not vfs.exists("/d/sub/f2")

    def test_delete_root_rejected(self):
        vfs = VirtualFileSystem()
        with pytest.raises(WebDavError):
            vfs.delete("/")

    def test_move_file(self):
        vfs = VirtualFileSystem()
        vfs.write("/a", "data")
        vfs.move("/a", "/b")
        assert vfs.read("/b") == "data"
        assert not vfs.exists("/a")

    def test_move_directory_subtree(self):
        vfs = VirtualFileSystem()
        vfs.mkdir("/src/sub", parents=True)
        vfs.write("/src/sub/f", "x")
        vfs.move("/src", "/dst")
        assert vfs.read("/dst/sub/f") == "x"

    def test_move_onto_existing_rejected(self):
        vfs = VirtualFileSystem()
        vfs.write("/a", "1")
        vfs.write("/b", "2")
        with pytest.raises(WebDavError):
            vfs.move("/a", "/b")

    def test_copy_file(self):
        vfs = VirtualFileSystem()
        vfs.write("/a", "data")
        vfs.copy("/a", "/b")
        assert vfs.read("/a") == vfs.read("/b") == "data"

    def test_listdir_marks_directories(self):
        vfs = VirtualFileSystem()
        vfs.mkdir("/d")
        vfs.mkdir("/d/sub")
        vfs.write("/d/f", "x")
        assert vfs.listdir("/d") == ["f", "sub/"]

    def test_walk_files_sorted_recursive(self):
        vfs = VirtualFileSystem()
        vfs.mkdir("/a/b", parents=True)
        vfs.write("/a/z", "1")
        vfs.write("/a/b/y", "2")
        assert list(vfs.walk_files("/a")) == ["/a/b/y", "/a/z"]


class TestWebDav:
    @pytest.fixture
    def dav(self):
        return WebDavServer()

    def test_put_created_then_overwrite(self, dav):
        assert dav.put("/f", "one").status == 201
        assert dav.put("/f", "two").status == 204
        assert dav.get("/f").body == "two"

    def test_get_missing_404(self, dav):
        assert dav.get("/nope").status == 404

    def test_delete(self, dav):
        dav.put("/f", "x")
        assert dav.delete("/f").status == 204
        assert dav.delete("/f").status == 404

    def test_mkcol_and_conflict(self, dav):
        assert dav.mkcol("/d").status == 201
        assert dav.mkcol("/d").status == 405
        assert dav.put("/e/f", "x").status == 409  # missing parent

    def test_move_and_copy(self, dav):
        dav.put("/a", "data")
        assert dav.move("/a", "/b").status == 201
        assert dav.get("/b").ok
        assert dav.copy("/b", "/c").status == 201
        assert dav.get("/c").body == "data"

    def test_propfind_depth0_file(self, dav):
        dav.put("/f", "hello")
        response = dav.propfind("/f")
        assert response.status == 207
        [props] = response.properties
        assert props.size == 5 and not props.is_collection

    def test_propfind_depth1_directory(self, dav):
        dav.mkcol("/d")
        dav.put("/d/f", "x")
        dav.mkcol("/d/sub")
        response = dav.propfind("/d", depth=1)
        hrefs = [props.href for props in response.properties]
        assert hrefs == ["/d", "/d/f", "/d/sub"]

    def test_propfind_missing_404(self, dav):
        assert dav.propfind("/nope").status == 404

    def test_propfind_bad_depth(self, dav):
        assert dav.propfind("/", depth=9).status == 400

    def test_proppatch_custom_properties(self, dav):
        dav.put("/f", "x")
        assert dav.proppatch("/f", {"author": "maluf"}).status == 207
        [props] = dav.propfind("/f").properties
        assert ("author", "maluf") in props.custom

    def test_drop_creates_folder_and_file(self, dav):
        response = dav.drop("/incoming", "r.ndoc", "{\\ndoc1}\n")
        assert response.status == 201
        assert dav.get("/incoming/r.ndoc").ok
