"""Server-side durability: daemon journal, crash restarts, HTTP errors."""

import pytest

from repro.errors import CorruptLogError, CrashError, FsckError, RecoveryError
from repro.netmark import Netmark
from repro.ordbms import MemoryLogDevice
from repro.resilience import FaultPlan
from repro.server.daemon import NetmarkDaemon
from repro.server.vfs import VirtualFileSystem
from repro.store import XmlStore, check_store

NDOC = "{\\ndoc1}\n{\\style Heading1}Budget\n{\\style Normal}Travel funds.\n"
NDOC2 = "{\\ndoc1}\n{\\style Heading1}Ops\n{\\style Normal}Launch pad work.\n"


def durable_rig(device=None, vfs=None):
    device = device if device is not None else MemoryLogDevice()
    store = XmlStore.open(device)
    vfs = vfs if vfs is not None else VirtualFileSystem()
    daemon = NetmarkDaemon(store, vfs, "/incoming")
    return device, store, vfs, daemon


class TestWalkFilesDeterminism:
    def test_order_is_sorted_regardless_of_insertion_history(self):
        vfs = VirtualFileSystem()
        vfs.mkdir("/a")
        vfs.write("/zebra.txt", "z")
        vfs.write("/a/nested.txt", "n")
        vfs.write("/apple.txt", "a")
        vfs.delete("/apple.txt")
        vfs.write("/apple.txt", "a2")  # re-created last, still sorts first
        assert list(vfs.walk_files()) == [
            "/a/nested.txt", "/apple.txt", "/zebra.txt"
        ]
        assert list(vfs.walk_files("/a")) == ["/a/nested.txt"]


class TestDaemonJournal:
    def test_journal_folder_not_polled(self):
        _, _, vfs, daemon = durable_rig()
        vfs.write(daemon.journal_path, "stale\tdeadbeef\t1\n")
        assert daemon.pending_files() == []

    def test_journal_cleared_after_success(self):
        _, store, vfs, daemon = durable_rig()
        vfs.write("/incoming/r.ndoc", NDOC)
        [record] = daemon.poll()
        assert record.ok
        assert vfs.read(daemon.journal_path) == ""

    def test_journal_cleared_after_handled_failure(self):
        _, store, vfs, daemon = durable_rig()
        vfs.write("/incoming/bad.xml", "<a><b></a>")
        [record] = daemon.poll()
        assert not record.ok
        assert vfs.read(daemon.journal_path) == ""

    def test_startup_recovery_without_journal_is_noop(self):
        _, _, _, daemon = durable_rig()
        assert daemon.startup_recovery() == []


class TestCrashRestart:
    def crash_mid_ingest(self, sync_index: int):
        """Drive an ingest into a scripted crash at the Nth WAL sync."""
        device = MemoryLogDevice()
        vfs = VirtualFileSystem()
        plan = FaultPlan()
        plan.fail("wal", "append", kind="crash", after=sync_index, times=1)
        wrapped = plan.wrap_log_device(device)
        store = XmlStore.open(wrapped)
        daemon = NetmarkDaemon(store, vfs, "/incoming")
        vfs.write("/incoming/r.ndoc", NDOC)
        with pytest.raises(CrashError):
            daemon.poll()
        return device, vfs

    def restart(self, device, vfs):
        store = XmlStore.open(device)
        daemon = NetmarkDaemon(store, vfs, "/incoming")
        settled = daemon.startup_recovery()
        return store, daemon, settled

    def test_crash_before_commit_quarantines(self):
        device, vfs = self.crash_mid_ingest(sync_index=2)
        store, daemon, settled = self.restart(device, vfs)
        assert len(store) == 0  # the loser was discarded by recovery
        [record] = settled
        assert not record.ok and "crash" in record.error
        assert vfs.exists("/incoming/errors/r.ndoc")
        assert daemon.poll() == []  # nothing left pending, nothing retried
        assert check_store(store.database).ok

    def test_crash_after_commit_completes_bookkeeping(self):
        # A large 'after' index: every append of the ingest succeeds, the
        # crash hits a later poll instead — simulate by crashing on the
        # append *after* the commit record (the daemon's move/clear phase
        # does not touch the WAL, so commit durability decides).
        device = MemoryLogDevice()
        vfs = VirtualFileSystem()
        store = XmlStore.open(device)
        daemon = NetmarkDaemon(store, vfs, "/incoming")
        vfs.write("/incoming/r.ndoc", NDOC)
        content = vfs.read("/incoming/r.ndoc")
        daemon._journal_begin("/incoming/r.ndoc", content)  # noqa: SLF001
        if daemon.replace_existing:
            store.replace_text(content, "r.ndoc")
        # Process "dies" after commit, before the move and journal clear.
        restarted_store, restarted, settled = self.restart(device, vfs)
        assert len(restarted_store) == 1
        [record] = settled
        assert record.ok and record.doc_id == 1 and record.node_count > 0
        assert vfs.exists("/incoming/processed/r.ndoc")
        assert restarted.poll() == []

    def test_other_pending_files_still_ingest_after_restart(self):
        device, vfs = self.crash_mid_ingest(sync_index=2)
        vfs.write("/incoming/second.ndoc", NDOC2)
        store, daemon, _ = self.restart(device, vfs)
        [record] = daemon.poll()
        assert record.ok
        assert len(store) == 1


class TestNetmarkDurableFacade:
    def test_fresh_durable_node(self):
        device = MemoryLogDevice()
        node = Netmark(device=device)
        node.ingest("r.ndoc", NDOC)
        assert node.document_count == 1
        assert node.fsck().ok
        assert node.recovered_ingests == []

    def test_restart_preserves_documents_and_settles_journal(self):
        device = MemoryLogDevice()
        node = Netmark(device=device)
        node.ingest("r.ndoc", NDOC)
        reborn = Netmark(device=device, vfs=node.vfs)
        assert reborn.document_count == 1
        assert reborn.store.last_recovery is not None
        assert reborn.fsck().ok
        results = reborn.search("Context=Budget")
        assert len(results) >= 1

    def test_checkpoint_truncates_log(self):
        device = MemoryLogDevice()
        node = Netmark(device=device)
        node.ingest("r.ndoc", NDOC)
        node.checkpoint()
        assert device.read_log().count("\n") == 1  # just the marker
        reborn = Netmark(device=device, vfs=node.vfs)
        assert reborn.document_count == 1

    def test_fsck_repair_entry_point(self):
        node = Netmark(device=MemoryLogDevice())
        node.ingest("r.ndoc", NDOC)
        report = node.fsck(repair=True)
        assert report.ok and report.repaired >= 2


class TestHttpErrorMapping:
    @pytest.fixture
    def node(self):
        node = Netmark()
        node.ingest("r.ndoc", NDOC)
        return node

    def test_recovering_gate_returns_503(self, node):
        node.api.recovering = True
        response = node.http_get("/docs")
        assert response.status == 503
        assert 'code="recovering"' in response.body
        node.api.recovering = False
        assert node.http_get("/docs").ok

    @pytest.mark.parametrize(
        ("error", "code"),
        [
            (CorruptLogError("log damaged"), "corrupt-log"),
            (RecoveryError("replay diverged"), "recovery-failed"),
            (FsckError("no netmark schema"), "store-inconsistent"),
        ],
    )
    def test_durability_errors_get_structured_bodies(self, node, error, code):
        def explode():
            raise error

        node.api.engine.execute = lambda query, **kwargs: explode()
        response = node.http_get("/search?Context=Budget")
        assert response.status == 500
        assert response.content_type == "text/xml"
        assert f'code="{code}"' in response.body
        assert str(error) in response.body

    def test_other_repro_errors_keep_plain_500(self, node):
        from repro.errors import StoreError

        def explode():
            raise StoreError("something else")

        node.api.engine.execute = lambda query, **kwargs: explode()
        response = node.http_get("/search?Context=Budget")
        assert response.status == 500
        assert "<error" not in response.body
