"""The shared lift pool: admission, invalidation, and accessor sharing.

The :class:`~repro.store.liftcache.LiftCache` is cross-query shared
mutable state under the worker pool, so the tests here are mostly about
what it must *refuse* to do: serve across a write, admit a stale
computation, or let a pinned reader see the future.
"""

import pytest

from repro.errors import StoreError
from repro.ordbms.table import ROWID_PSEUDO
from repro.store.accessor import NodeAccessor
from repro.store.liftcache import MISS, LiftCache
from repro.store.schema import XML_TABLE
from repro.store.xmlstore import XmlStore
from tests.conftest import SAMPLE_FILES


class TestLiftCacheUnit:
    def test_round_trip_with_current_token(self):
        cache = LiftCache(generation=3, lsn=7)
        cache.put(1, "title", 10, "Budget", ("gen", 3))
        assert cache.get(1, "title", 10, ("gen", 3)) == "Budget"
        assert cache.get(1, "title", 10, ("lsn", 7)) == "Budget"

    def test_none_is_a_cacheable_value(self):
        cache = LiftCache(generation=1, lsn=1)
        cache.put(1, "governing", 5, None, ("gen", 1))
        assert cache.get(1, "governing", 5, ("gen", 1)) is None
        assert cache.get(1, "governing", 6, ("gen", 1)) is MISS

    def test_stale_token_reads_miss(self):
        cache = LiftCache(generation=3, lsn=7)
        cache.put(1, "title", 10, "Budget", ("gen", 3))
        assert cache.get(1, "title", 10, ("gen", 2)) is MISS
        assert cache.get(1, "title", 10, ("lsn", 6)) is MISS

    def test_stale_put_is_rejected_not_admitted(self):
        """The TOCTOU race: a lift computed before a write commits must
        not enter the pool after it."""
        cache = LiftCache(generation=3, lsn=7)
        cache.note_write(4, 8, doc_id=99)
        cache.put(1, "title", 10, "Budget", ("gen", 3))
        assert cache.get(1, "title", 10, ("gen", 4)) is MISS
        assert cache.snapshot_counters()["rejected_puts"] == 1

    def test_note_write_drops_only_that_document(self):
        cache = LiftCache(generation=1, lsn=1)
        cache.put(1, "title", 10, "Budget", ("gen", 1))
        cache.put(2, "title", 20, "Travel", ("gen", 1))
        cache.note_write(2, 2, doc_id=1)
        assert cache.get(1, "title", 10, ("gen", 2)) is MISS
        assert cache.get(2, "title", 20, ("gen", 2)) == "Travel"

    def test_observe_matching_generation_is_a_no_op(self):
        cache = LiftCache(generation=5, lsn=9)
        cache.put(1, "title", 10, "Budget", ("gen", 5))
        cache.observe(5, 9)
        assert cache.get(1, "title", 10, ("gen", 5)) == "Budget"

    def test_observe_unannounced_write_clears_everything(self):
        cache = LiftCache(generation=5, lsn=9)
        cache.put(1, "title", 10, "Budget", ("gen", 5))
        cache.put(2, "title", 20, "Travel", ("gen", 5))
        cache.observe(6, 10)
        assert len(cache) == 0
        assert cache.get(2, "title", 20, ("gen", 6)) is MISS

    def test_eviction_is_lru_and_counted(self):
        cache = LiftCache(generation=1, lsn=1, capacity=2)
        cache.put(1, "title", 10, "a", ("gen", 1))
        cache.put(1, "title", 11, "b", ("gen", 1))
        assert cache.get(1, "title", 10, ("gen", 1)) == "a"  # refresh 10
        cache.put(1, "title", 12, "c", ("gen", 1))
        assert cache.get(1, "title", 11, ("gen", 1)) is MISS  # 11 evicted
        assert cache.get(1, "title", 10, ("gen", 1)) == "a"
        assert cache.snapshot_counters()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(StoreError):
            LiftCache(capacity=0)


def _context_rows(store, doc_id):
    return [
        row
        for row in store.xml_table.lookup("DOC_ID", doc_id)
        if NodeAccessor.is_context(row)
    ]


class TestStoreIntegration:
    def test_second_accessor_reuses_first_accessors_walks(self, loaded_store):
        doc_id = loaded_store.documents()[0].doc_id
        contexts = _context_rows(loaded_store, doc_id)
        first = loaded_store.new_accessor(lifts=loaded_store.lift_cache)
        for row in contexts:
            first.context_title(row)
            first.section_text(row)
        second = loaded_store.new_accessor(lifts=loaded_store.lift_cache)
        titles = [second.context_title(row) for row in contexts]
        assert titles == [first.context_title(row) for row in contexts]
        assert second.stats.shared_hits == len(contexts)
        assert second.stats.shared_misses == 0

    def test_shared_scope_replay_returns_equal_rows(self, loaded_store):
        doc_id = loaded_store.documents()[0].doc_id
        contexts = _context_rows(loaded_store, doc_id)
        first = loaded_store.new_accessor(lifts=loaded_store.lift_cache)
        expected = [
            [row[ROWID_PSEUDO] for row in first.section_scope(ctx)]
            for ctx in contexts
        ]
        second = loaded_store.new_accessor(lifts=loaded_store.lift_cache)
        replayed = [
            [row[ROWID_PSEUDO] for row in second.section_scope(ctx)]
            for ctx in contexts
        ]
        assert replayed == expected

    def test_announced_write_keeps_other_documents_warm(self, loaded_store):
        doc_id = loaded_store.documents()[0].doc_id
        contexts = _context_rows(loaded_store, doc_id)
        warm = loaded_store.new_accessor(lifts=loaded_store.lift_cache)
        for row in contexts:
            warm.context_title(row)
        # A store-announced ingest invalidates only the new document.
        loaded_store.store_text("# Fresh\n\nNew doc.\n", "fresh.md")
        after = loaded_store.new_accessor(lifts=loaded_store.lift_cache)
        for row in contexts:
            after.context_title(row)
        assert after.stats.shared_hits == len(contexts)

    def test_delete_drops_the_deleted_documents_entries(self, loaded_store):
        docs = loaded_store.documents()
        first_doc, second_doc = docs[0].doc_id, docs[1].doc_id
        warm = loaded_store.new_accessor(lifts=loaded_store.lift_cache)
        kept = _context_rows(loaded_store, first_doc)
        dropped = _context_rows(loaded_store, second_doc)
        for row in kept + dropped:
            warm.context_title(row)
        loaded_store.delete_document(second_doc)
        after = loaded_store.new_accessor(lifts=loaded_store.lift_cache)
        for row in kept:
            after.context_title(row)
        assert after.stats.shared_hits == len(kept)
        token = ("gen", loaded_store.xml_table.generation)
        for row in dropped:
            assert (
                loaded_store.lift_cache.get(
                    second_doc, "title", row[ROWID_PSEUDO], token
                )
                is MISS
            )

    def test_unannounced_write_trips_the_full_clear(self, loaded_store):
        doc_id = loaded_store.documents()[0].doc_id
        contexts = _context_rows(loaded_store, doc_id)
        accessor = loaded_store.new_accessor(lifts=loaded_store.lift_cache)
        for row in contexts:
            accessor.context_title(row)
        assert len(loaded_store.lift_cache) > 0
        # Delete a node row directly, bypassing the store facade (the
        # shape of a WAL apply on a follower): no note_write fires.
        victim = loaded_store.xml_table.lookup("DOC_ID", doc_id)[-1]
        with loaded_store.database.begin():
            loaded_store.database.delete(XML_TABLE, victim[ROWID_PSEUDO])
        # The long-lived accessor's generation guard notices and makes
        # the pool catch up the safe way: wholesale.
        accessor.node(contexts[0][ROWID_PSEUDO])
        assert len(loaded_store.lift_cache) == 0

    def test_pinned_reader_stops_matching_after_a_commit(self, loaded_store):
        doc_id = loaded_store.documents()[0].doc_id
        contexts = _context_rows(loaded_store, doc_id)
        with loaded_store.snapshot() as snap:
            pinned = loaded_store.new_accessor(
                snapshot=snap, lifts=loaded_store.lift_cache
            )
            for row in contexts:
                pinned.context_title(row)
            assert pinned.stats.shared_misses == len(contexts)
            loaded_store.store_text("# Fresh\n\nNew doc.\n", "fresh.md")
            # The pool's LSN moved past the pin: the pinned reader can
            # neither read newer entries nor publish its own.
            before = loaded_store.lift_cache.snapshot_counters()
            pinned_again = loaded_store.new_accessor(
                snapshot=snap, lifts=loaded_store.lift_cache
            )
            for row in contexts:
                pinned_again.context_title(row)
            after = loaded_store.lift_cache.snapshot_counters()
            assert pinned_again.stats.shared_hits == 0
            assert after["rejected_puts"] >= before["rejected_puts"] + len(
                contexts
            )

    def test_materialize_paths_warms_the_first_query(self):
        store = XmlStore(materialize_paths=True)
        for name, text in SAMPLE_FILES:
            store.store_text(text, name)
        assert len(store.lift_cache) > 0
        doc_id = store.documents()[0].doc_id
        contexts = _context_rows(store, doc_id)
        accessor = store.new_accessor(lifts=store.lift_cache)
        for row in contexts:
            accessor.context_title(row)
            accessor.section_text(row)
        assert accessor.stats.shared_misses == 0
        assert accessor.stats.shared_hits == 2 * len(contexts)

    def test_table_count_stays_two_with_materialized_paths(self):
        """The FIG5 claim survives: materialized context paths live in
        the lift pool, not in a third table."""
        store = XmlStore(materialize_paths=True)
        store.store_text("# A\n\nbody\n", "a.md")
        assert store.table_count == 2
