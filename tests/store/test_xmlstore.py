"""XmlStore facade: storage, catalog, reconstruction, deletion."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DocumentNotFoundError
from repro.sgml.dom import Document, Element, Text
from repro.sgml.parser import parse_xml
from repro.sgml.serializer import serialize
from repro.store import XmlStore


class TestIngestion:
    def test_store_text_routes_by_format(self, store):
        result = store.store_text("# H\n\nbody\n", "n.md")
        assert result.doc_id == 1
        assert store.describe(1).format == "markdown"

    def test_doc_ids_sequential(self, store):
        for index in range(3):
            result = store.store_text(f"# H{index}\nx\n", f"d{index}.md")
            assert result.doc_id == index + 1

    def test_file_date_recorded(self, store):
        moment = dt.datetime(2005, 6, 14, 9, 30)
        store.store_text("# H\nx\n", "d.md", file_date=moment)
        assert store.describe(1).file_date == moment

    def test_metadata_round_trips(self, store):
        store.store_text("{\\ndoc1}\n{\\meta author Bell}\n{\\style Normal}x\n",
                         "d.ndoc")
        assert store.describe(1).metadata["author"] == "Bell"

    def test_failed_conversion_stores_nothing(self, store):
        from repro.errors import SgmlSyntaxError

        with pytest.raises(SgmlSyntaxError):
            store.store_text("<a><b></a>", "bad.xml")
        assert len(store) == 0
        assert store.node_count == 0

    def test_table_count_constant_across_formats(self, loaded_store):
        # The schema-less claim: five formats, still two tables.
        assert loaded_store.table_count == 2


class TestCatalog:
    def test_documents_listing(self, loaded_store):
        names = [entry.file_name for entry in loaded_store.documents()]
        assert names == [
            "report1.ndoc", "report2.npdf", "notes.md", "page.html",
            "budget.csv",
        ]

    def test_describe_unknown_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.describe(99)

    def test_lookup_by_name(self, loaded_store):
        entry = loaded_store.lookup_by_name("notes.md")
        assert entry is not None and entry.format == "markdown"
        assert loaded_store.lookup_by_name("nope.doc") is None


class TestReconstruction:
    def test_document_round_trip(self, store):
        source = (
            "<document><section level=\"2\"><context>T</context>"
            "<content>body <b>bold</b> tail</content></section></document>"
        )
        result = store.store_document(parse_xml(source))
        rebuilt = store.document(result.doc_id)
        assert serialize(rebuilt) == source

    def test_reconstruction_unknown_doc_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.document(5)

    def test_section_reconstruction(self, loaded_store):
        [budget_context] = [
            row
            for row in loaded_store.contexts(1)
            if "Budget" in (loaded_store.section(row).text_content())
        ]
        section = loaded_store.section(budget_context)
        assert section.tag == "section"
        assert section.find("context") is not None

    names = st.sampled_from(["a", "b", "c", "sect", "x"])
    texts = st.text(alphabet=st.sampled_from("abc &<>\n"), min_size=1, max_size=10)

    @st.composite
    @staticmethod
    def trees(draw, depth=0):
        element = Element(draw(TestReconstruction.names))
        if draw(st.booleans()):
            element.attributes["k"] = draw(TestReconstruction.texts)
        # Adjacent text nodes would merge on serialise/parse, so avoid
        # generating them back-to-back.
        previous_was_text = False
        for _ in range(draw(st.integers(0, 3 if depth < 2 else 0))):
            if draw(st.booleans()) and not previous_was_text:
                element.append(Text(draw(TestReconstruction.texts)))
                previous_was_text = True
            else:
                element.append(draw(TestReconstruction.trees(depth=depth + 1)))  # type: ignore[call-arg]
                previous_was_text = False
        return element

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_decompose_compose_round_trip_property(self, tree):
        store = XmlStore()
        result = store.store_document(Document(tree.clone(), name="t"))
        rebuilt = store.document(result.doc_id)
        assert serialize(rebuilt) == serialize(Document(tree))


class TestDeletion:
    def test_delete_removes_all_nodes(self, store):
        result = store.store_text("# H\n\nbody\n", "d.md")
        removed = store.delete_document(result.doc_id)
        assert removed == result.node_count
        assert len(store) == 0
        assert store.node_count == 0

    def test_delete_unknown_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.delete_document(1)

    def test_delete_leaves_other_documents(self, store):
        first = store.store_text("# A\none\n", "a.md")
        second = store.store_text("# B\ntwo\n", "b.md")
        store.delete_document(first.doc_id)
        assert [entry.doc_id for entry in store.documents()] == [second.doc_id]
        assert store.document(second.doc_id).find("context") is not None

    def test_delete_purges_text_index(self, store):
        result = store.store_text("# Target\nuniquemarker here\n", "d.md")
        store.delete_document(result.doc_id)
        index = store.xml_table.text_index_on("NODEDATA")
        assert index.lookup("uniquemarker") == set()
