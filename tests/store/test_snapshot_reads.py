"""Store-level MVCC: pinned reads stay byte-identical under ingest."""

import pytest

from repro.query.engine import QueryEngine
from repro.sgml.serializer import serialize
from repro.store import XmlStore
from repro.workloads import CorpusSpec, generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec(documents=24, seed=77))


@pytest.fixture
def store(corpus):
    loaded = XmlStore()
    for file in corpus[:12]:
        loaded.store_text(file.text, file.name)
    return loaded


class TestPinnedReads:
    def test_pinned_document_is_byte_identical_under_bulk_ingest(
        self, store, corpus
    ):
        doc_id = store.documents()[0].doc_id
        quiesced = serialize(store.document(doc_id), indent=2)
        with store.snapshot() as snap:
            before = serialize(
                store.document(doc_id, snapshot=snap), indent=2
            )
            # Bulk-ingest the rest of the corpus while the pin is open.
            for file in corpus[12:]:
                store.store_text(file.text, file.name)
            after = serialize(
                store.document(doc_id, snapshot=snap), indent=2
            )
        assert before == quiesced
        assert after == quiesced

    def test_pinned_catalog_does_not_grow(self, store, corpus):
        with store.snapshot() as snap:
            pinned_before = [
                entry.doc_id for entry in store.documents(snapshot=snap)
            ]
            for file in corpus[12:16]:
                store.store_text(file.text, file.name)
            pinned_after = [
                entry.doc_id for entry in store.documents(snapshot=snap)
            ]
        assert pinned_before == pinned_after
        assert len(store.documents()) == len(pinned_before) + 4

    def test_post_commit_snapshot_sees_new_documents(self, store, corpus):
        with store.snapshot() as old_snap:
            result = store.store_text(corpus[20].text, corpus[20].name)
            assert all(
                entry.doc_id != result.doc_id
                for entry in store.documents(snapshot=old_snap)
            )
        with store.snapshot() as new_snap:
            assert any(
                entry.doc_id == result.doc_id
                for entry in store.documents(snapshot=new_snap)
            )
            # The new document composes fully through the new pin.
            document = store.document(result.doc_id, snapshot=new_snap)
            assert document.root is not None

    def test_pinned_read_survives_replacement(self, store, corpus):
        entry = store.documents()[3]
        quiesced = serialize(store.document(entry.doc_id), indent=2)
        with store.snapshot() as snap:
            # corpus[15] shares entry 3's format (the formats cycle with
            # period 6), so the converter accepts it under the old name.
            store.replace_text(
                corpus[15].text, entry.file_name
            )  # supersedes: old nodes deleted, new revision stored
            pinned = serialize(
                store.document(entry.doc_id, snapshot=snap), indent=2
            )
        assert pinned == quiesced
        replacement = store.lookup_by_name(entry.file_name)
        assert replacement.metadata.get("revision") == "2"

    def test_vacuum_never_reclaims_a_pinned_generation(self, store, corpus):
        entry = store.documents()[0]
        quiesced = serialize(store.document(entry.doc_id), indent=2)
        with store.snapshot() as snap:
            # corpus[18] shares entry 0's format (period-6 format cycle).
            store.replace_text(corpus[18].text, entry.file_name)
            store.database.vacuum_versions()
            pinned = serialize(
                store.document(entry.doc_id, snapshot=snap), indent=2
            )
            assert pinned == quiesced
        # Pin released: the superseded revision's history may now go.
        reclaimed = store.database.vacuum_versions()
        assert reclaimed > 0


class TestSnapshotQueries:
    @pytest.mark.parametrize(
        "query",
        [
            "Context=Budget",
            "Content=program",
            "Context=Budget&Content=program",
            "Nodename=title",
        ],
    )
    def test_snapshot_query_matches_quiesced_run(self, store, query):
        engine = QueryEngine(store)
        quiesced = serialize(engine.execute(query).to_xml(), indent=2)
        with store.snapshot() as snap:
            pinned = serialize(
                engine.execute(query, snapshot=snap).to_xml(), indent=2
            )
        assert pinned == quiesced

    def test_snapshot_query_ignores_concurrent_ingest(self, store, corpus):
        engine = QueryEngine(store)
        query = "Context=Budget"
        quiesced = serialize(engine.execute(query).to_xml(), indent=2)
        with store.snapshot() as snap:
            for file in corpus[12:20]:
                store.store_text(file.text, file.name)
            pinned = serialize(
                engine.execute(query, snapshot=snap).to_xml(), indent=2
            )
        assert pinned == quiesced
        # Without the pin, the same query reflects the new corpus.
        live = serialize(engine.execute(query).to_xml(), indent=2)
        assert live != quiesced

    def test_scan_fallback_matches_quiesced_run(self, store, corpus):
        engine = QueryEngine(store, use_index=False)
        query = "Content=program"
        quiesced = serialize(engine.execute(query).to_xml(), indent=2)
        with store.snapshot() as snap:
            for file in corpus[12:16]:
                store.store_text(file.text, file.name)
            pinned = serialize(
                engine.execute(query, snapshot=snap).to_xml(), indent=2
            )
        assert pinned == quiesced
