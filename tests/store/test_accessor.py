"""NodeAccessor: batching, memoization, generation invalidation."""

import pytest

from repro.ordbms.table import ROWID_PSEUDO
from repro.sgml.nodetypes import NodeType
from repro.sgml.parser import parse_xml
from repro.store import XmlStore


@pytest.fixture
def store_with_doc():
    store = XmlStore()
    document = parse_xml(
        "<document>"
        "<section><context>Alpha</context>"
        "<content>alpha text one</content>"
        "<content>alpha text two</content></section>"
        "<section><context>Beta</context>"
        "<content>beta text</content></section>"
        "</document>"
    )
    result = store.store_document(document)
    return store, result


def context_rows(store):
    return [
        row
        for row in store.xml_table.scan()
        if row["NODETYPE"] == int(NodeType.CONTEXT)
    ]


class TestBatching:
    def test_nodes_fetches_missing_rows_in_one_batch(self, store_with_doc):
        store, _ = store_with_doc
        rowids = [row[ROWID_PSEUDO] for row in store.xml_table.scan()]
        accessor = store.new_accessor()
        rows = accessor.nodes(rowids)
        assert [row[ROWID_PSEUDO] for row in rows] == rowids
        assert accessor.stats.batch_fetches == 1
        assert accessor.stats.point_fetches == 0
        assert accessor.stats.rows_fetched == len(rowids)

    def test_nodes_second_call_is_all_cache_hits(self, store_with_doc):
        store, _ = store_with_doc
        rowids = [row[ROWID_PSEUDO] for row in store.xml_table.scan()]
        accessor = store.new_accessor()
        accessor.nodes(rowids)
        accessor.stats.reset()
        accessor.nodes(rowids)
        assert accessor.stats.batch_fetches == 0
        assert accessor.stats.rows_fetched == 0
        assert accessor.stats.cache_hits == len(rowids)

    def test_children_batch_and_memoize(self, store_with_doc):
        store, result = store_with_doc
        accessor = store.new_accessor()
        root = accessor.node(result.root_rowid)
        first = accessor.children(root)
        accessor.stats.reset()
        second = accessor.children(root)
        assert [r[ROWID_PSEUDO] for r in first] == [
            r[ROWID_PSEUDO] for r in second
        ]
        assert accessor.stats.child_lookups == 0
        assert accessor.stats.cache_hits >= 1


class TestMemoization:
    def test_point_fetch_memoized(self, store_with_doc):
        store, result = store_with_doc
        accessor = store.new_accessor()
        accessor.node(result.root_rowid)
        accessor.node(result.root_rowid)
        assert accessor.stats.point_fetches == 1
        assert accessor.stats.cache_hits == 1

    def test_section_text_computed_once(self, store_with_doc):
        store, _ = store_with_doc
        accessor = store.new_accessor()
        alpha = next(
            row
            for row in context_rows(store)
            if accessor.context_title(row) == "Alpha"
        )
        text = accessor.section_text(alpha)
        assert "alpha text one" in text and "alpha text two" in text
        accessor.stats.reset()
        assert accessor.section_text(alpha) == text
        assert accessor.stats.point_fetches == 0
        assert accessor.stats.sibling_hops == 0
        assert accessor.stats.cache_hits == 1

    def test_governing_context_memoized_per_row(self, store_with_doc):
        store, _ = store_with_doc
        accessor = store.new_accessor()
        text_row = next(
            row
            for row in store.xml_table.scan()
            if row["NODEDATA"] == "beta text"
        )
        governing = accessor.governing_context(text_row)
        assert accessor.context_title(governing) == "Beta"
        hops_first = accessor.stats.parent_hops
        assert hops_first > 0
        accessor.stats.reset()
        again = accessor.governing_context(text_row)
        assert again[ROWID_PSEUDO] == governing[ROWID_PSEUDO]
        assert accessor.stats.parent_hops == 0


class TestInvalidation:
    def test_write_invalidates_caches(self, store_with_doc):
        store, result = store_with_doc
        accessor = store.new_accessor()
        accessor.node(result.root_rowid)
        generation_before = accessor.generation
        store.store_text("# New\n\nfresh text\n", "extra.md")
        # The next read notices the generation bump and drops the caches.
        accessor.node(result.root_rowid)
        assert accessor.stats.invalidations == 1
        assert accessor.generation != generation_before
        # The row had to be re-fetched, not served stale.
        assert accessor.stats.point_fetches == 2

    def test_delete_then_read_sees_fresh_state(self, store_with_doc):
        store, _ = store_with_doc
        accessor = store.new_accessor()
        alpha = next(
            row
            for row in context_rows(store)
            if accessor.context_title(row) == "Alpha"
        )
        assert "alpha text one" in accessor.section_text(alpha)
        extra = store.store_text("# Extra\n\nmore words\n", "extra.md")
        store.delete_document(extra.doc_id)
        # Two writes happened but the accessor syncs at most once per
        # read boundary: a single invalidation covers both.
        assert "alpha text one" in accessor.section_text(alpha)
        assert accessor.stats.invalidations == 1

    def test_stats_reset_zeroes_every_counter(self, store_with_doc):
        store, result = store_with_doc
        accessor = store.new_accessor()
        accessor.nodes([result.root_rowid])
        accessor.stats.reset()
        assert accessor.stats.batch_fetches == 0
        assert accessor.stats.rows_fetched == 0
        assert accessor.stats.cache_hits == 0
