"""Decomposition rows and ROWID traversal semantics (§2.1.4)."""

import pytest

from repro.ordbms.table import ROWID_PSEUDO
from repro.sgml.nodetypes import NodeType
from repro.sgml.parser import parse_xml
from repro.store import (
    XmlStore,
    children_of,
    classify_counts,
    context_title,
    governing_context,
    next_sibling_of,
    parent_of,
    scope_rowids,
    section_scope,
    section_text,
)


@pytest.fixture
def store_with_doc():
    store = XmlStore()
    document = parse_xml(
        "<document>"
        "<section><context>Alpha</context>"
        "<content>alpha text one</content>"
        "<content>alpha text two</content></section>"
        "<section><context>Beta</context>"
        "<content>beta text</content></section>"
        "</document>"
    )
    result = store.store_document(document)
    return store, result


def text_rows(store, needle):
    return [
        row
        for row in store.xml_table.scan()
        if row["NODETYPE"] == int(NodeType.TEXT)
        and row["NODEDATA"] and needle in row["NODEDATA"]
    ]


class TestDecomposition:
    def test_node_count_matches_tree(self, store_with_doc):
        store, result = store_with_doc
        # document + 2*section + 2*context + 3*content + 5 text = 13
        assert result.node_count == 13
        assert store.node_count == 13

    def test_root_has_no_parent(self, store_with_doc):
        store, result = store_with_doc
        root = store.fetch_node(result.root_rowid)
        assert root["PARENTROWID"] is None
        assert root["NODENAME"] == "document"

    def test_parent_rowids_consistent(self, store_with_doc):
        store, result = store_with_doc
        for row in store.xml_table.scan():
            parent = parent_of(store.database, row)
            if parent is not None:
                assert parent["NODEID"] == row["PARENTNODEID"]

    def test_sibling_chain_terminates_and_orders(self, store_with_doc):
        store, result = store_with_doc
        root = store.fetch_node(result.root_rowid)
        first, second = children_of(store.database, root)
        assert next_sibling_of(store.database, first)["NODEID"] == second["NODEID"]
        assert next_sibling_of(store.database, second) is None

    def test_node_types_recorded(self, store_with_doc):
        store, result = store_with_doc
        counts = classify_counts(store.database, result.doc_id)
        assert counts[NodeType.CONTEXT] == 2
        assert counts[NodeType.TEXT] == 5
        assert counts[NodeType.SIMULATION] == 2  # the <section> wrappers

    def test_children_sorted_by_ordinal(self, store_with_doc):
        store, result = store_with_doc
        root = store.fetch_node(result.root_rowid)
        sections = children_of(store.database, root)
        titles = [
            context_title(store.database, children_of(store.database, s)[0])
            for s in sections
        ]
        assert titles == ["Alpha", "Beta"]


class TestTraversal:
    def test_governing_context_of_content_text(self, store_with_doc):
        store, _ = store_with_doc
        [row] = text_rows(store, "beta text")
        context = governing_context(store.database, row)
        assert context_title(store.database, context) == "Beta"

    def test_governing_context_stops_at_own_section(self, store_with_doc):
        store, _ = store_with_doc
        [row] = text_rows(store, "alpha text one")
        context = governing_context(store.database, row)
        assert context_title(store.database, context) == "Alpha"

    def test_heading_text_has_context_ancestor(self, store_with_doc):
        store, _ = store_with_doc
        [row] = text_rows(store, "Alpha")
        parent = parent_of(store.database, row)
        assert parent["NODETYPE"] == int(NodeType.CONTEXT)

    def test_section_scope_excludes_next_section(self, store_with_doc):
        store, _ = store_with_doc
        [alpha_heading] = text_rows(store, "Alpha")
        context = parent_of(store.database, alpha_heading)
        text = section_text(store.database, context)
        assert "alpha text one" in text and "alpha text two" in text
        assert "beta" not in text

    def test_scope_rowids_are_section_rows(self, store_with_doc):
        store, _ = store_with_doc
        [alpha_heading] = text_rows(store, "Alpha")
        context = parent_of(store.database, alpha_heading)
        rowids = scope_rowids(store.database, context)
        [content_row] = text_rows(store, "alpha text one")
        assert content_row[ROWID_PSEUDO] in rowids

    def test_flat_html_sibling_contexts(self):
        # h2 headings as siblings of paragraphs (no section wrappers).
        store = XmlStore()
        document = parse_xml(
            "<body><h2>First</h2><p>one</p><p>two</p>"
            "<h2>Second</h2><p>three</p></body>"
        )
        store.store_document(document)
        [row] = text_rows(store, "two")
        context = governing_context(store.database, row)
        assert context_title(store.database, context) == "First"
        [row3] = text_rows(store, "three")
        context3 = governing_context(store.database, row3)
        assert context_title(store.database, context3) == "Second"

    def test_flat_html_scope_stops_at_next_heading(self):
        store = XmlStore()
        document = parse_xml(
            "<body><h2>First</h2><p>one</p>"
            "<h2>Second</h2><p>two</p></body>"
        )
        store.store_document(document)
        [heading] = text_rows(store, "First")
        context = parent_of(store.database, heading)
        assert section_text(store.database, context) == "one"

    def test_front_matter_has_no_context(self):
        store = XmlStore()
        document = parse_xml("<body><p>preamble</p><h2>H</h2></body>")
        store.store_document(document)
        [row] = text_rows(store, "preamble")
        assert governing_context(store.database, row) is None

    def test_scope_of_multiple_documents_isolated(self, store_with_doc):
        store, _ = store_with_doc
        second = parse_xml(
            "<document><section><context>Alpha</context>"
            "<content>other document text</content></section></document>"
        )
        store.store_document(second)
        rows = text_rows(store, "alpha text one")
        context = governing_context(store.database, rows[0])
        text = section_text(store.database, context)
        assert "other document" not in text
