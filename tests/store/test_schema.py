"""NETMARK generated schema (Fig 5): tables, indexes, encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordbms import Database
from repro.store.schema import (
    create_netmark_schema,
    decode_attributes,
    decode_metadata,
    encode_attributes,
    encode_metadata,
)


class TestGeneratedSchema:
    def test_exactly_two_tables(self):
        database = Database()
        create_netmark_schema(database)
        assert set(database.catalog.table_names()) == {"DOC", "XML"}

    def test_fig5_columns_present(self):
        database = Database()
        doc_table, xml_table = create_netmark_schema(database)
        for column in ("DOC_ID", "FILE_NAME", "FILE_DATE", "FILE_SIZE"):
            assert doc_table.schema.has_column(column)
        for column in (
            "NODEID", "DOC_ID", "PARENTROWID", "PARENTNODEID",
            "SIBLINGID", "NODETYPE", "NODENAME", "NODEDATA",
        ):
            assert xml_table.schema.has_column(column)

    def test_indexes_created(self):
        database = Database()
        _, xml_table = create_netmark_schema(database)
        for column in ("DOC_ID", "PARENTNODEID", "NODENAME", "NODETYPE"):
            assert xml_table.index_on(column) is not None
        assert xml_table.text_index_on("NODEDATA") is not None

    def test_doc_id_foreign_key_declared(self):
        database = Database()
        _, xml_table = create_netmark_schema(database)
        [foreign_key] = xml_table.schema.foreign_keys
        assert foreign_key.ref_table == "DOC"


class TestMetadataEncoding:
    def test_round_trip(self):
        metadata = {"format": "word", "author": "maluf", "chars": 120}
        decoded = decode_metadata(encode_metadata(metadata))
        assert decoded == {"format": "word", "author": "maluf", "chars": "120"}

    def test_empty(self):
        assert decode_metadata(encode_metadata({})) == {}
        assert decode_metadata(None) == {}

    def test_sorted_deterministic(self):
        assert encode_metadata({"b": 1, "a": 2}) == "a=2;b=1"


class TestAttributeEncoding:
    def test_round_trip_simple(self):
        attrs = {"id": "7", "class": "big"}
        assert decode_attributes(encode_attributes(attrs)) == attrs

    def test_empty_is_none(self):
        assert encode_attributes({}) is None
        assert decode_attributes(None) == {}

    def test_special_characters(self):
        attrs = {"a": "tab\there", "b": "line\nbreak", "c": "back\\slash"}
        assert decode_attributes(encode_attributes(attrs)) == attrs

    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Ll",), max_codepoint=0x7F
                ),
                min_size=1,
                max_size=8,
            ),
            st.text(max_size=20),
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, attrs):
        assert decode_attributes(encode_attributes(attrs)) == attrs
