"""store.fsck: clean stores, every seeded corruption class, and repair."""

import pytest

from repro.errors import FsckError
from repro.ordbms import Database, ROWID_PSEUDO
from repro.store import XmlStore, check_store, repair_store
from repro.store.fsck import REPAIRABLE, main
from repro.store.schema import XML_TABLE


@pytest.fixture
def loaded(loaded_store: XmlStore) -> XmlStore:
    return loaded_store


def xml_rows(store: XmlStore) -> list[dict]:
    return list(store.xml_table.scan())


def node_where(store: XmlStore, **conditions) -> dict:
    for row in xml_rows(store):
        if all(row[key] == value for key, value in conditions.items()):
            return row
    raise AssertionError(f"no node matching {conditions}")


class TestCleanStore:
    def test_sample_corpus_is_clean(self, loaded):
        report = check_store(loaded.database)
        assert report.ok
        assert report.documents_checked == len(loaded)
        assert report.nodes_checked == loaded.node_count
        assert report.indexes_checked == 7  # 1 DOC + 4 XML btrees + 1 text

    def test_empty_store_is_clean(self, store):
        assert check_store(store.database).ok

    def test_non_netmark_database_is_misuse(self):
        with pytest.raises(FsckError):
            check_store(Database("plain"))

    def test_report_serialises(self, loaded):
        report = check_store(loaded.database)
        payload = report.as_dict()
        assert payload["ok"] is True
        assert "clean" in report.render_text()


class TestCorruptionClasses:
    """Each seeded corruption class is detected under its own code."""

    def seed(self, store: XmlStore, code: str) -> None:
        database = store.database
        rows = xml_rows(store)
        root = node_where(store, PARENTROWID=None, DOC_ID=1)
        child = node_where(store, PARENTNODEID=root["NODEID"])
        if code == "bad-node-type":
            database.update(XML_TABLE, child[ROWID_PSEUDO], {"NODETYPE": 99})
        elif code == "orphan-node":
            doc_row = store.doc_table.lookup("DOC_ID", 1)[0]
            database.delete("DOC", doc_row[ROWID_PSEUDO])
        elif code == "empty-document":
            for row in rows:
                if row["DOC_ID"] == 1:
                    database.delete(XML_TABLE, row[ROWID_PSEUDO])
        elif code == "missing-root":
            database.update(
                XML_TABLE, root[ROWID_PSEUDO],
                {"PARENTROWID": child[ROWID_PSEUDO],
                 "PARENTNODEID": child["NODEID"]},
            )
        elif code == "multiple-roots":
            database.update(
                XML_TABLE, child[ROWID_PSEUDO],
                {"PARENTROWID": None, "PARENTNODEID": None},
            )
        elif code == "dangling-parent":
            victim = node_where(store, PARENTNODEID=child["NODEID"])
            database.delete(XML_TABLE, victim[ROWID_PSEUDO])
            orphaned = node_where(store, PARENTROWID=victim[ROWID_PSEUDO])
            assert orphaned is not None  # its children now dangle
        elif code == "foreign-parent":
            other = node_where(store, PARENTROWID=None, DOC_ID=2)
            database.update(
                XML_TABLE, child[ROWID_PSEUDO],
                {"PARENTROWID": other[ROWID_PSEUDO],
                 "PARENTNODEID": other["NODEID"]},
            )
        elif code == "parent-id-mismatch":
            database.update(
                XML_TABLE, child[ROWID_PSEUDO], {"PARENTNODEID": 9999}
            )
        elif code == "parent-cycle":
            grandchild = node_where(store, PARENTNODEID=child["NODEID"])
            database.update(
                XML_TABLE, child[ROWID_PSEUDO],
                {"PARENTROWID": grandchild[ROWID_PSEUDO],
                 "PARENTNODEID": grandchild["NODEID"]},
            )
        elif code == "dangling-sibling":
            from repro.ordbms import RowId

            database.update(
                XML_TABLE, child[ROWID_PSEUDO],
                {"SIBLINGID": RowId(9, 9, 9)},
            )
        elif code == "foreign-sibling":
            other = node_where(store, PARENTROWID=None, DOC_ID=2)
            database.update(
                XML_TABLE, child[ROWID_PSEUDO],
                {"SIBLINGID": other[ROWID_PSEUDO]},
            )
        elif code == "duplicate-ordinal":
            first = next(
                row for row in rows
                if row["PARENTNODEID"] == root["NODEID"]
                and row["SIBLINGID"] is not None
            )
            follower = node_where(store, ROWID_=first["SIBLINGID"])
            database.update(
                XML_TABLE, follower[ROWID_PSEUDO],
                {"ORDINAL": first["ORDINAL"]},
            )
        elif code == "sibling-chain":
            # A live but mis-linked chain: point a child at itself.
            database.update(
                XML_TABLE, child[ROWID_PSEUDO],
                {"SIBLINGID": child[ROWID_PSEUDO]},
            )
        elif code == "btree-drift":
            index = store.xml_table.index_on("NODENAME")
            index.insert("ghost-entry", child[ROWID_PSEUDO])
        elif code == "text-index-drift":
            text_index = store.xml_table.text_index_on("NODEDATA")
            text_index.add(child[ROWID_PSEUDO], "ghostterm never stored")
        else:
            raise AssertionError(f"unknown corruption class {code}")

    @pytest.mark.parametrize(
        "code",
        [
            "bad-node-type",
            "orphan-node",
            "empty-document",
            "missing-root",
            "multiple-roots",
            "dangling-parent",
            "foreign-parent",
            "parent-id-mismatch",
            "parent-cycle",
            "dangling-sibling",
            "foreign-sibling",
            "duplicate-ordinal",
            "sibling-chain",
            "btree-drift",
            "text-index-drift",
        ],
    )
    def test_detected(self, loaded, code):
        assert check_store(loaded.database).ok  # pristine before seeding
        self.seed(loaded, code)
        report = check_store(loaded.database)
        assert code in report.codes(), (
            f"seeded {code}, fsck reported {sorted(report.codes())}"
        )

    @pytest.mark.parametrize("code", sorted(REPAIRABLE))
    def test_repairable_classes_repair_clean(self, loaded, code):
        self.seed(loaded, code)
        report = repair_store(loaded.database)
        assert report.repaired > 0
        assert report.ok, (
            f"after repairing {code}: {sorted(report.codes())}"
        )

    def test_structural_loss_survives_repair(self, loaded):
        """Genuinely lost data is still reported after a repair pass."""
        self.seed(loaded, "orphan-node")
        report = repair_store(loaded.database)
        assert "orphan-node" in report.codes()


class TestCommandLine:
    @pytest.fixture
    def durable_base(self, tmp_path) -> str:
        from repro.ordbms import FileLogDevice

        base = str(tmp_path / "store")
        device = FileLogDevice(base)
        store = XmlStore.open(device)
        store.store_text("# Title\n\nBody text here.\n", "note.md")
        device.close()
        return base

    def test_clean_store_exits_zero(self, durable_base, capsys):
        assert main([durable_base]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, durable_base, capsys):
        import json

        assert main([durable_base, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["documents_checked"] == 1

    def test_repair_flag(self, durable_base, capsys):
        assert main([durable_base, "--repair"]) == 0
        assert "repair actions" in capsys.readouterr().out
