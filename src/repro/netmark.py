"""The NETMARK facade — the library's one-stop public entry point.

Bundles the whole stack of paper Fig 3 into a single object::

    nm = Netmark()
    nm.drop("report.ndoc", open("report.ndoc").read())   # WebDAV folder
    nm.poll()                                            # the daemon
    results = nm.search("Context=Budget")                # XDB Query
    page = nm.http_get("/search?Context=Budget&xslt=report.xsl")

plus federation administration (``create_databank``/``add_source``) and
stylesheet installation.  The facade counts **assembly steps** — each
declarative configuration call is one step — which is how the Table 1
experiment compares how much work each NASA application took to stand up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.errors import ServerError
from repro.federation.databank import Databank, DatabankRegistry  # lint: allow-layering(composition root: the facade wires the federation tier)
from repro.federation.router import Router  # lint: allow-layering(composition root: the facade wires the federation tier)
from repro.federation.sources import InformationSource, NetmarkSource  # lint: allow-layering(composition root: the facade wires the federation tier)
from repro.ordbms import Database, LogDevice
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.query.results import ResultSet
from repro.server.daemon import IngestRecord, NetmarkDaemon
from repro.server.http import HttpResponse, NetmarkHttpApi
from repro.server.vfs import VirtualFileSystem
from repro.server.webdav import WebDavServer
from repro.sgml.config import DEFAULT_CONFIG, NodeTypeConfig
from repro.store.fsck import FsckReport, check_store, repair_store
from repro.store.xmlstore import StoredDocument, XmlStore


@dataclass
class AssemblyLedger:
    """Counts the declarative steps an application's assembly performed."""

    steps: list[str] = field(default_factory=list)

    def record(self, description: str) -> None:
        self.steps.append(description)

    @property
    def count(self) -> int:
        return len(self.steps)


class Netmark:
    """A complete in-process NETMARK node."""

    def __init__(
        self,
        name: str = "netmark",
        config: NodeTypeConfig = DEFAULT_CONFIG,
        drop_folder: str = "/incoming",
        device: LogDevice | None = None,
        vfs: VirtualFileSystem | None = None,
        tracer: obs.Tracer | None = None,
    ) -> None:
        self.name = name
        #: Span sink shared by the node's pipelines.  Default is the
        #: no-op tracer; pass ``obs.Tracer()`` to collect ingest span
        #: trees (``Trace=1`` searches trace per-request regardless).
        self.tracer = tracer if tracer is not None else obs.NULL_TRACER
        if device is not None:
            # Durable node: open (or crash-recover) the store on its WAL
            # device.  Pass the surviving ``vfs`` of the previous
            # incarnation so the daemon can settle its ingest journal.
            self.store = XmlStore.open(device, config)
            self.database = self.store.database
        else:
            self.database = Database(name)
            self.store = XmlStore(self.database, config)
        self.vfs = vfs or VirtualFileSystem()
        self.dav = WebDavServer(self.vfs)
        self.daemon = NetmarkDaemon(
            self.store, self.vfs, drop_folder, tracer=self.tracer
        )
        self.registry = DatabankRegistry()
        self.router = Router(self.registry)
        #: Named sources available to declarative databank specs.
        self.source_catalog: dict[str, InformationSource] = {}
        # The production composition root runs with the result cache on:
        # cached answers are byte-identical, Cache=0 opts a request out.
        self.api = NetmarkHttpApi(
            self.store, self.dav, self.router, cache=QueryCache()
        )
        self.engine = QueryEngine(self.store)
        self.ledger = AssemblyLedger()
        #: Records settled by daemon startup recovery (crash restarts).
        self.recovered_ingests: list[IngestRecord] = []
        if device is not None:
            self.api.recovering = True
            try:
                self.recovered_ingests = self.daemon.startup_recovery()
            finally:
                self.api.recovering = False

    # -- ingestion ------------------------------------------------------------

    def drop(self, file_name: str, content: str) -> None:
        """Drag one document into the NETMARK desktop folder."""
        self.dav.drop(self.daemon.drop_folder, file_name, content)

    def poll(self) -> list[IngestRecord]:
        """Wake the daemon once."""
        return self.daemon.poll()

    def ingest(self, file_name: str, content: str) -> IngestRecord:
        """Drop + poll in one call; returns that file's record."""
        self.drop(file_name, content)
        records = self.poll()
        for record in records:
            if record.path.endswith("/" + file_name):
                return record
        # The poll may have picked up other pending files too; ours must
        # be among them or something is wrong.
        raise ServerError(f"daemon did not report {file_name!r}")

    def ingest_many(self, files: list[tuple[str, str]]) -> list[IngestRecord]:
        """Bulk-load (name, content) pairs through the daemon path."""
        for file_name, content in files:
            self.drop(file_name, content)
        return self.poll()

    # -- query ---------------------------------------------------------------------

    def search(self, query: str) -> ResultSet:
        """Run an XDB query string against the local store.

        Context aliases defined on this node are expanded first, so a
        query for ``Context=Budget`` transparently covers whatever the
        alias maps it to (e.g. ``Cost Details``).
        """
        from repro.query.language import parse_query

        return self.engine.execute(self.router.aliases.rewrite(parse_query(query)))

    def define_context_alias(self, name: str, *phrases: str) -> None:
        """One-line vocabulary bridging: alias -> context alternatives.

        The lean stand-in for GAV virtual views (§4); applies to both
        local and federated searches on this node.
        """
        self.router.aliases.define(name, *phrases)
        self.ledger.record(f"define context alias {name}")

    def federated_search(self, query: str, databank: str | None = None) -> ResultSet:
        """Run an XDB query through the databank router."""
        return self.router.execute(query, databank)

    def http_get(self, target: str) -> HttpResponse:
        """GET against the NETMARK HTTP API (search/doc/docs/dav routes)."""
        return self.api.get(target)

    def attach_cluster(self, view) -> None:
        """Bind this node's HTTP facade to a cluster membership view.

        ``view`` is duck-typed (``role``, ``coordinator``,
        ``is_coordinator``, ``describe()`` — e.g.
        ``repro.cluster.NetmarkCluster.view(name)``): once attached,
        non-coordinator nodes answer DAV writes with a structured 503
        pointing at the coordinator, and ``GET /cluster`` serves the
        membership table.  The facade stays ignorant of the cluster
        package itself — lean middleware all the way down.
        """
        self.api.cluster = view
        self.ledger.record("attach cluster view")

    # -- administration (assembly steps) -----------------------------------------------

    def create_databank(self, name: str, description: str = "") -> Databank:
        self.ledger.record(f"create databank {name}")
        return self.registry.create(name, description)

    def add_source(self, databank: str, source: InformationSource) -> None:
        """One line of integration: declare a source in a databank."""
        self.registry.get(databank).add_source(source)
        self.source_catalog.setdefault(source.name, source)
        self.ledger.record(f"add source {source.name} to {databank}")

    def register_source(self, source: InformationSource) -> None:
        """Make a constructed source available to databank spec files."""
        self.source_catalog[source.name] = source

    def load_databank_spec(self, text: str):
        """Apply a declarative databank spec (see repro.federation.spec).

        Sources named in the spec resolve through :attr:`source_catalog`
        (populate it with :meth:`register_source`).  Every line of the
        spec is one assembly step — the spec *is* the integration.
        """
        from repro.federation.spec import load_spec  # lint: allow-layering(composition root: the facade wires the federation tier)

        report = load_spec(text, self.router, self.source_catalog)
        for name in report.databanks:
            self.ledger.record(f"create databank {name} (spec)")
        for _ in range(report.sources_bound):
            self.ledger.record("bind source (spec)")
        for _ in range(report.aliases_defined):
            self.ledger.record("define alias (spec)")
        return report

    def as_source(self, source_name: str | None = None) -> NetmarkSource:
        """Expose this node's own store as a federation source."""
        return NetmarkSource(source_name or self.name, self.store)

    def install_stylesheet(self, name: str, xml: str) -> None:
        self.api.install_stylesheet(name, xml)
        self.ledger.record(f"install stylesheet {name}")

    # -- durability ---------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Fold the store into a fresh checkpoint and truncate its WAL."""
        return self.store.checkpoint()

    def fsck(self, repair: bool = False) -> FsckReport:
        """Run the store consistency checker (optionally repairing)."""
        if repair:
            return repair_store(self.store.database)
        return check_store(self.store.database)

    # -- catalog ------------------------------------------------------------------------

    def documents(self) -> list[StoredDocument]:
        return self.store.documents()

    @property
    def document_count(self) -> int:
        return len(self.store)

    @property
    def assembly_steps(self) -> int:
        return self.ledger.count
