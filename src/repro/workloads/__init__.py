"""Deterministic synthetic workloads (the NASA-data stand-ins)."""

from repro.workloads.anomalies import (
    generate_lessons,
    generate_tracker_a,
    generate_tracker_b,
)
from repro.workloads.budgets import TaskPlanFacts, generate_task_plans
from repro.workloads.corpus import (
    CorpusSpec,
    GeneratedFile,
    generate_corpus,
    render_csv,
    render_html,
    render_markdown,
    render_ndoc,
    render_npdf,
    render_nppt,
    render_plaintext,
)
from repro.workloads.proposals import (
    ProposalFacts,
    format_dollars,
    generate_proposals,
)
from repro.workloads.text import (
    HEADINGS,
    NASA_CENTERS,
    NASA_DIVISIONS,
    SEVERITIES,
    SUBSYSTEMS,
    WORDS,
    WordStream,
)

__all__ = [
    "CorpusSpec",
    "GeneratedFile",
    "HEADINGS",
    "NASA_CENTERS",
    "NASA_DIVISIONS",
    "ProposalFacts",
    "SEVERITIES",
    "SUBSYSTEMS",
    "TaskPlanFacts",
    "WORDS",
    "WordStream",
    "format_dollars",
    "generate_corpus",
    "generate_lessons",
    "generate_proposals",
    "generate_task_plans",
    "generate_tracker_a",
    "generate_tracker_b",
    "render_csv",
    "render_html",
    "render_markdown",
    "render_ndoc",
    "render_npdf",
    "render_nppt",
    "render_plaintext",
]
