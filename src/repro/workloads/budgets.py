"""Task-plan corpus — workload for the Integrated Budget Performance
Document (IBPD) application.

"While manual assembly of the IBPD can take several weeks, NETMARK was
used to extract and integrate information from thousands of NASA task
plans containing the required budget information and compose an
integrated IBPD document."

Each task plan is one document (mixed Word/PDF/Markdown style) with a
Budget section stating per-fiscal-year amounts and a Center section naming
the owning NASA center.  Ground truth per plan supports verifying the
integrated totals the IBPD app reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.corpus import (
    GeneratedFile,
    render_markdown,
    render_ndoc,
    render_npdf,
)
from repro.workloads.text import WordStream


@dataclass(frozen=True)
class TaskPlanFacts:
    """Ground truth for one task plan."""

    file_name: str
    task_id: str
    center: str
    amounts: tuple[tuple[str, int], ...]  # (fiscal year, dollars)

    @property
    def total(self) -> int:
        return sum(amount for _, amount in self.amounts)


def generate_task_plans(
    count: int = 60, seed: int = 7
) -> tuple[list[GeneratedFile], list[TaskPlanFacts]]:
    stream = WordStream(seed)
    renderers = (render_ndoc, render_npdf, render_markdown)
    extensions = ("ndoc", "npdf", "md")
    files: list[GeneratedFile] = []
    facts: list[TaskPlanFacts] = []
    for index in range(count):
        task_id = f"TP-{index:04d}"
        center = stream.center()
        years = ("FY04", "FY05")
        amounts = tuple((year, stream.dollars(20, 400)) for year in years)
        amount_prose = "; ".join(
            f"{year} funding of ${amount:,}" for year, amount in amounts
        )
        sections = [
            ("Task Summary", [f"Task {task_id}. {stream.paragraph()}"]),
            ("Center", [f"This task is executed at NASA {center}."]),
            ("Budget", [f"The plan requires {amount_prose}."]),
            ("Milestones", [stream.paragraph()]),
        ]
        which = index % len(renderers)
        file_name = f"taskplan-{task_id}.{extensions[which]}"
        files.append(
            GeneratedFile(
                name=file_name,
                text=renderers[which](f"Task Plan {task_id}", sections),
                format=extensions[which],
                headings=tuple(heading for heading, _ in sections),
            )
        )
        facts.append(
            TaskPlanFacts(
                file_name=file_name,
                task_id=task_id,
                center=center,
                amounts=amounts,
            )
        )
    return files, facts
