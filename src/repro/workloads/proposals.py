"""Proposal corpus — workload for the Proposal Financial Management app.

"The Proposal Financial Management application is an information system
for tracking proposal financial information for outgoing (NASA) proposals
... allows querying of aggregated and statistical information about the
proposals such as proposal numbers by NASA division type, dollar amounts
requested etc.  The application takes as input all the proposals
(typically in formats such as Word or PDF) that have been submitted."

Each generated proposal is a Word- or PDF-style document whose **Budget
section embeds the requested amount in prose** ("requests a total of
$1,234,000"), and whose front matter names the submitting division — so
the application must really extract facts from document sections, not
read a table.  Ground truth (:class:`ProposalFacts`) is returned alongside
for verification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.corpus import GeneratedFile, render_ndoc, render_npdf
from repro.workloads.text import WordStream


@dataclass(frozen=True)
class ProposalFacts:
    """Ground truth for one generated proposal."""

    file_name: str
    proposal_id: str
    division: str
    principal_investigator: str
    amount: int  # dollars requested


def format_dollars(amount: int) -> str:
    return f"${amount:,}"


def generate_proposals(
    count: int = 40, seed: int = 42
) -> tuple[list[GeneratedFile], list[ProposalFacts]]:
    """Generate ``count`` proposals; returns (files, ground truth)."""
    stream = WordStream(seed)
    files: list[GeneratedFile] = []
    facts: list[ProposalFacts] = []
    for index in range(count):
        proposal_id = f"NRA-{2004 + index % 2}-{index:03d}"
        division = stream.division()
        investigator = stream.person()
        amount = stream.dollars(100, 3000)
        extension = "ndoc" if index % 2 == 0 else "npdf"
        file_name = f"proposal-{proposal_id}.{extension}"
        title = f"Proposal {proposal_id}: {stream.title(3)}"
        sections = [
            (
                "Administrative Summary",
                [
                    f"Proposal {proposal_id} is submitted by the {division} "
                    f"division. The principal investigator is {investigator}.",
                ],
            ),
            ("Abstract", [stream.paragraph()]),
            ("Technical Approach", [stream.paragraph(), stream.paragraph()]),
            (
                "Budget",
                [
                    f"This proposal requests a total of "
                    f"{format_dollars(amount)} over the period of "
                    f"performance. {stream.sentence()}",
                ],
            ),
            ("Management Plan", [stream.paragraph()]),
        ]
        if extension == "ndoc":
            text = render_ndoc(title, sections)
        else:
            text = render_npdf(title, sections)
        files.append(
            GeneratedFile(
                name=file_name,
                text=text,
                format=extension,
                headings=tuple(heading for heading, _ in sections),
            )
        )
        facts.append(
            ProposalFacts(
                file_name=file_name,
                proposal_id=proposal_id,
                division=division,
                principal_investigator=investigator,
                amount=amount,
            )
        )
    return files, facts
