"""Deterministic synthetic text generation.

All corpora derive from a seeded :class:`WordStream`, so every experiment
is reproducible run-to-run: same seed, same documents, same query answers.
The vocabulary is aerospace/programmatic English so that generated
documents look like the NASA material the paper integrates (proposals,
task plans, anomaly reports) and so that content searches have natural,
controllable selectivity.
"""

from __future__ import annotations

import random
from typing import Sequence

#: General prose vocabulary.
WORDS: tuple[str, ...] = (
    "mission", "vehicle", "system", "analysis", "review", "program",
    "milestone", "integration", "assessment", "baseline", "requirement",
    "design", "test", "flight", "ground", "payload", "orbit", "launch",
    "safety", "margin", "schedule", "risk", "budget", "resource",
    "procedure", "anomaly", "telemetry", "sensor", "thermal", "structure",
    "propulsion", "avionics", "software", "hardware", "interface",
    "verification", "validation", "criteria", "performance", "operations",
    "crew", "station", "module", "shuttle", "engine", "turbine", "nozzle",
    "tank", "valve", "panel", "inspection", "maintenance", "report",
    "document", "section", "appendix", "figure", "table", "summary",
    "finding", "recommendation", "action", "closure", "center", "division",
    "directorate", "proposal", "award", "contract", "grant", "research",
    "technology", "development", "demonstration", "prototype", "facility",
)

#: Section-heading vocabulary shared across corpora so that context
#: searches cross document and format boundaries.
HEADINGS: tuple[str, ...] = (
    "Abstract", "Introduction", "Background", "Objectives",
    "Technical Approach", "Budget", "Cost Details", "Schedule",
    "Milestones", "Management Plan", "Risk Assessment", "Technology Gap",
    "Related Work", "Facilities", "Personnel", "Travel", "Deliverables",
    "Conclusions", "References", "Lessons Learned",
)

NASA_CENTERS: tuple[str, ...] = (
    "Ames", "Johnson", "Kennedy", "Glenn", "Langley", "Marshall",
    "Goddard", "Dryden", "Stennis", "JPL",
)

NASA_DIVISIONS: tuple[str, ...] = (
    "Aeronautics", "Space Science", "Earth Science", "Exploration",
    "Space Operations", "Biological Research",
)

SUBSYSTEMS: tuple[str, ...] = (
    "Main Engine", "Thermal Protection", "Avionics", "Life Support",
    "Guidance", "Landing Gear", "Power", "Communications",
)

SEVERITIES: tuple[str, ...] = ("Low", "Medium", "High", "Critical")

_FIRST_NAMES: tuple[str, ...] = (
    "David", "Naveen", "Grace", "Alan", "Mae", "Sally", "Neil", "Judith",
    "Eileen", "Story", "Kalpana", "Ellison",
)
_LAST_NAMES: tuple[str, ...] = (
    "Maluf", "Ashish", "Hopper", "Shepard", "Jemison", "Ride", "Armstrong",
    "Resnik", "Collins", "Musgrave", "Chawla", "Onizuka",
)


class WordStream:
    """A seeded generator of words, sentences, paragraphs and names."""

    def __init__(self, seed: int = 2005) -> None:
        self._rng = random.Random(seed)

    # -- primitives ---------------------------------------------------------

    def choice(self, options: Sequence[str]) -> str:
        return self._rng.choice(list(options))

    def integer(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def chance(self, probability: float) -> bool:
        return self._rng.random() < probability

    def sample(self, options: Sequence[str], count: int) -> list[str]:
        count = min(count, len(options))
        return self._rng.sample(list(options), count)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    # -- prose -----------------------------------------------------------------

    def word(self) -> str:
        return self.choice(WORDS)

    def words(self, count: int) -> list[str]:
        return [self.word() for _ in range(count)]

    def sentence(self, min_words: int = 6, max_words: int = 14) -> str:
        body = self.words(self.integer(min_words, max_words))
        text = " ".join(body)
        return text[0].upper() + text[1:] + "."

    def paragraph(self, min_sentences: int = 2, max_sentences: int = 5) -> str:
        return " ".join(
            self.sentence()
            for _ in range(self.integer(min_sentences, max_sentences))
        )

    def heading(self) -> str:
        return self.choice(HEADINGS)

    def title(self, word_count: int = 4) -> str:
        return " ".join(word.capitalize() for word in self.words(word_count))

    # -- entities ----------------------------------------------------------------

    def person(self) -> str:
        return f"{self.choice(_FIRST_NAMES)} {self.choice(_LAST_NAMES)}"

    def center(self) -> str:
        return self.choice(NASA_CENTERS)

    def division(self) -> str:
        return self.choice(NASA_DIVISIONS)

    def subsystem(self) -> str:
        return self.choice(SUBSYSTEMS)

    def severity(self) -> str:
        return self.choice(SEVERITIES)

    def dollars(self, low: int = 50, high: int = 5000) -> int:
        """A budget figure in thousands of dollars."""
        return self.integer(low, high) * 1000

    def fiscal_year(self) -> str:
        return f"FY{self.integer(2003, 2006) % 100:02d}"
