"""Generic mixed-format corpus generation.

Builds collections of synthetic enterprise documents spread across the
supported formats — the "documents, spreadsheets, reports and
presentations" the paper's applications ingest.  Headings draw from the
shared :data:`~repro.workloads.text.HEADINGS` vocabulary so one context
query can land in many documents and formats at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CorpusFormatError
from repro.workloads.text import HEADINGS, WordStream


@dataclass(frozen=True)
class GeneratedFile:
    """One generated document: a name, its raw text, and ground truth."""

    name: str
    text: str
    format: str
    headings: tuple[str, ...]


@dataclass
class CorpusSpec:
    """Knobs for corpus generation."""

    documents: int = 50
    sections_min: int = 3
    sections_max: int = 6
    paragraphs_min: int = 1
    paragraphs_max: int = 3
    formats: tuple[str, ...] = ("ndoc", "npdf", "md", "html", "nppt", "txt")
    seed: int = 2005
    #: Optional term planted in ~1/plant_every content paragraphs so
    #: content-query selectivity is known.
    planted_term: str = ""
    plant_every: int = 5
    _counter: int = field(default=0, repr=False)


def generate_corpus(spec: CorpusSpec) -> list[GeneratedFile]:
    """Generate ``spec.documents`` files, cycling through the formats."""
    stream = WordStream(spec.seed)
    files: list[GeneratedFile] = []
    plant_tick = 0
    for index in range(spec.documents):
        fmt = spec.formats[index % len(spec.formats)]
        section_count = stream.integer(spec.sections_min, spec.sections_max)
        headings = tuple(stream.sample(HEADINGS, section_count))
        sections: list[tuple[str, list[str]]] = []
        for heading in headings:
            paragraphs = []
            for _ in range(
                stream.integer(spec.paragraphs_min, spec.paragraphs_max)
            ):
                text = stream.paragraph()
                if spec.planted_term:
                    plant_tick += 1
                    if plant_tick % spec.plant_every == 0:
                        text += f" The {spec.planted_term} marker appears here."
                paragraphs.append(text)
            sections.append((heading, paragraphs))
        name = f"doc-{index:04d}.{fmt}"
        files.append(
            GeneratedFile(
                name=name,
                text=_render(fmt, f"Document {index:04d}", sections),
                format=fmt,
                headings=headings,
            )
        )
    return files


def _render(
    fmt: str, title: str, sections: list[tuple[str, list[str]]]
) -> str:
    if fmt == "ndoc":
        return render_ndoc(title, sections)
    if fmt == "npdf":
        return render_npdf(title, sections)
    if fmt == "md":
        return render_markdown(title, sections)
    if fmt == "html":
        return render_html(title, sections)
    if fmt == "nppt":
        return render_nppt(title, sections)
    if fmt == "txt":
        return render_plaintext(title, sections)
    raise CorpusFormatError(f"unknown corpus format {fmt!r}")


# -- per-format renderers (also used directly by the app workloads) --------


def render_ndoc(title: str, sections: list[tuple[str, list[str]]]) -> str:
    lines = ["{\\ndoc1}", f"{{\\style Title}}{title}"]
    for heading, paragraphs in sections:
        lines.append(f"{{\\style Heading1}}{heading}")
        for paragraph in paragraphs:
            lines.append(f"{{\\style Normal}}{paragraph}")
    return "\n".join(lines) + "\n"


def render_npdf(title: str, sections: list[tuple[str, list[str]]]) -> str:
    lines = ["%NPDF-1.0", f"[F24] {title}"]
    for heading, paragraphs in sections:
        lines.append(f"[F14] {heading}")
        for paragraph in paragraphs:
            lines.append(f"[F10] {paragraph}")
            lines.append("")
    return "\n".join(lines) + "\n"


def render_markdown(title: str, sections: list[tuple[str, list[str]]]) -> str:
    lines = [f"# {title}", ""]
    for heading, paragraphs in sections:
        lines.append(f"## {heading}")
        for paragraph in paragraphs:
            lines.append("")
            lines.append(paragraph)
        lines.append("")
    return "\n".join(lines)


def render_html(title: str, sections: list[tuple[str, list[str]]]) -> str:
    parts = [
        "<html><head><title>", title, "</title></head><body>",
        f"<h1>{title}</h1>",
    ]
    for heading, paragraphs in sections:
        parts.append(f"<h2>{heading}</h2>")
        for paragraph in paragraphs:
            parts.append(f"<p>{paragraph}</p>")
    parts.append("</body></html>")
    return "".join(parts)


def render_nppt(title: str, sections: list[tuple[str, list[str]]]) -> str:
    lines = ["#NPPT", f"== Slide 1: {title} =="]
    for slide_no, (heading, paragraphs) in enumerate(sections, start=2):
        lines.append(f"== Slide {slide_no}: {heading} ==")
        for paragraph in paragraphs:
            lines.append(f"* {paragraph}")
    return "\n".join(lines) + "\n"


def render_plaintext(title: str, sections: list[tuple[str, list[str]]]) -> str:
    lines = [title, "=" * max(3, len(title)), ""]
    for heading, paragraphs in sections:
        lines.append(heading)
        lines.append("-" * max(3, len(heading)))
        for paragraph in paragraphs:
            lines.append(paragraph)
            lines.append("")
    return "\n".join(lines)


def render_csv(header: list[str], rows: list[list[str]]) -> str:
    """Quote-safe CSV rendering for spreadsheet workloads."""

    def fieldtext(value: str) -> str:
        if "," in value or '"' in value or "\n" in value:
            return '"' + value.replace('"', '""') + '"'
        return value

    lines = [",".join(fieldtext(cell) for cell in header)]
    lines.extend(",".join(fieldtext(cell) for cell in row) for row in rows)
    return "\n".join(lines) + "\n"
