"""Anomaly-tracker workloads — two web-accessible record databases.

"Anomaly Tracking is an application that allows integrated querying of
two NASA (web accessible) data sources that are essentially anomaly
tracking databases."

The two trackers use *different field vocabularies* for the same concept
(``Description`` vs ``Summary``, ``Severity`` vs ``Criticality``) — the
vocabulary mismatch the paper discusses in §4: NETMARK spans it with
``Context=Description|Summary`` alternatives rather than a virtual view.
"""

from __future__ import annotations

from repro.federation.sources import Record
from repro.workloads.text import WordStream


def generate_tracker_a(count: int = 30, seed: int = 11) -> list[Record]:
    """Tracker A: fields Description / Severity / Subsystem."""
    stream = WordStream(seed)
    records = []
    for index in range(count):
        subsystem = stream.subsystem()
        records.append(
            Record(
                key=f"A-{index:04d}",
                fields=(
                    (
                        "Description",
                        f"{subsystem} {stream.word()} anomaly: "
                        f"{stream.sentence()}",
                    ),
                    ("Severity", stream.severity()),
                    ("Subsystem", subsystem),
                ),
            )
        )
    return records


def generate_tracker_b(count: int = 30, seed: int = 13) -> list[Record]:
    """Tracker B: fields Summary / Criticality / System / Disposition."""
    stream = WordStream(seed)
    records = []
    for index in range(count):
        system = stream.subsystem()
        records.append(
            Record(
                key=f"B-{index:04d}",
                fields=(
                    (
                        "Summary",
                        f"Observed {stream.word()} issue in {system}. "
                        f"{stream.sentence()}",
                    ),
                    ("Criticality", stream.severity()),
                    ("System", system),
                    ("Disposition", stream.choice(("Open", "Closed", "Deferred"))),
                ),
            )
        )
    return records


def generate_lessons(count: int = 25, seed: int = 17) -> dict[str, str]:
    """Lessons-Learned documents for the content-only source.

    Markdown with Title/Lesson/Recommendation sections, so client-side
    augmentation has real structure to extract.
    """
    stream = WordStream(seed)
    documents: dict[str, str] = {}
    for index in range(count):
        subject = stream.subsystem()
        name = f"lesson-{index:04d}.md"
        documents[name] = (
            f"# Title\n{subject} {stream.word()} lesson\n\n"
            f"# Lesson\n{stream.paragraph()}\n\n"
            f"# Recommendation\n{stream.paragraph()}\n"
        )
    return documents
