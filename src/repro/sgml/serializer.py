"""DOM-to-XML serialization.

The store reconstructs documents and query results by serialising DOM
subtrees back to XML text; the XSLT processor serialises result trees the
same way.  Output is always well-formed XML (even when the input was
sloppy HTML), so anything NETMARK emits can be fed back through the strict
parser — a round-trip property the test suite checks.
"""

from __future__ import annotations

from repro.sgml.dom import Document, Element, Node, Text


def escape_text(data: str) -> str:
    """Escape character data for XML output."""
    return data.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(data: str) -> str:
    """Escape an attribute value for double-quoted XML output."""
    return escape_text(data).replace('"', "&quot;")


def serialize(node: Node | Document, indent: int | None = None) -> str:
    """Serialise a node or document to XML text.

    ``indent=None`` produces compact output that preserves text exactly;
    an integer produces pretty-printed output with that many spaces per
    level (whitespace-only text nodes are dropped, so pretty mode is for
    human display, not round-tripping).
    """
    if isinstance(node, Document):
        node = node.root
    parts: list[str] = []
    _serialize_node(node, parts, indent, 0)
    return "".join(parts)


def _serialize_node(
    node: Node, parts: list[str], indent: int | None, depth: int
) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    newline = "" if indent is None else "\n"
    if isinstance(node, Text):
        if indent is not None:
            stripped = node.data.strip()
            if not stripped:
                return
            parts.append(f"{pad}{escape_text(stripped)}{newline}")
        else:
            parts.append(escape_text(node.data))
        return
    assert isinstance(node, Element)
    attributes = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in node.attributes.items()
    )
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attributes}/>{newline}")
        return
    # Compact form for elements holding a single text child keeps
    # pretty-printed context/content output readable.
    only_text = all(isinstance(child, Text) for child in node.children)
    if indent is not None and only_text:
        text = escape_text(node.text_content().strip())
        parts.append(f"{pad}<{node.tag}{attributes}>{text}</{node.tag}>{newline}")
        return
    parts.append(f"{pad}<{node.tag}{attributes}>{newline}")
    for child in node.children:
        _serialize_node(child, parts, indent, depth + 1)
    parts.append(f"{pad}</{node.tag}>{newline}")
