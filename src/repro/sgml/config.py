"""Node-type configuration.

"The SGML parser is governed by five different node data types, which are
specified in the HTML or XML configuration files passed by the daemon."

A :class:`NodeTypeConfig` says which element names classify as CONTEXT,
INTENSE and SIMULATION; everything else is ELEMENT, and character data is
TEXT.  Configurations can be built in code or loaded from the same simple
``key: value`` text files the daemon passes around::

    # netmark-html.cfg
    context: h1 h2 h3 h4 h5 h6 title caption
    intense: b strong em i u mark
    simulation: section generated implied

Blank lines and ``#`` comments are ignored; unknown keys raise so a typo
in a deployed config file fails loudly at load time, not silently at
classification time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SgmlError
from repro.sgml.dom import Element, Node, Text
from repro.sgml.nodetypes import (
    DEFAULT_CONTEXT_TAGS,
    DEFAULT_INTENSE_TAGS,
    DEFAULT_SIMULATION_TAGS,
    NodeType,
)


@dataclass(frozen=True)
class NodeTypeConfig:
    """Assignment of element names to NETMARK node types."""

    context_tags: frozenset[str] = field(default=DEFAULT_CONTEXT_TAGS)
    intense_tags: frozenset[str] = field(default=DEFAULT_INTENSE_TAGS)
    simulation_tags: frozenset[str] = field(default=DEFAULT_SIMULATION_TAGS)

    def __post_init__(self) -> None:
        overlap = (self.context_tags & self.intense_tags) | (
            self.context_tags & self.simulation_tags
        ) | (self.intense_tags & self.simulation_tags)
        if overlap:
            raise SgmlError(
                "element names assigned to multiple node types: "
                + ", ".join(sorted(overlap))
            )

    def classify(self, node: Node) -> NodeType:
        """Return the NETMARK node type for a DOM node."""
        if isinstance(node, Text):
            return NodeType.TEXT
        if not isinstance(node, Element):
            raise SgmlError(f"cannot classify node {node!r}")
        if node.tag in self.context_tags:
            return NodeType.CONTEXT
        if node.tag in self.intense_tags:
            return NodeType.INTENSE
        if node.synthetic or node.tag in self.simulation_tags:
            return NodeType.SIMULATION
        return NodeType.ELEMENT

    @classmethod
    def from_text(cls, text: str) -> "NodeTypeConfig":
        """Parse a configuration file's text (see module docstring)."""
        sections: dict[str, frozenset[str]] = {}
        for line_no, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            if ":" not in line:
                raise SgmlError(
                    f"config line {line_no}: expected 'key: tags...', "
                    f"got {raw_line!r}"
                )
            key, _, value = line.partition(":")
            key = key.strip().lower()
            if key not in {"context", "intense", "simulation"}:
                raise SgmlError(f"config line {line_no}: unknown key {key!r}")
            if key in sections:
                raise SgmlError(f"config line {line_no}: duplicate key {key!r}")
            sections[key] = frozenset(tag.lower() for tag in value.split())
        return cls(
            context_tags=sections.get("context", DEFAULT_CONTEXT_TAGS),
            intense_tags=sections.get("intense", DEFAULT_INTENSE_TAGS),
            simulation_tags=sections.get("simulation", DEFAULT_SIMULATION_TAGS),
        )

    def to_text(self) -> str:
        """Render back to the config-file format (round-trips from_text)."""
        return "\n".join(
            f"{key}: {' '.join(sorted(tags))}"
            for key, tags in (
                ("context", self.context_tags),
                ("intense", self.intense_tags),
                ("simulation", self.simulation_tags),
            )
        )


#: The configuration the daemon uses when none is supplied.
DEFAULT_CONFIG = NodeTypeConfig()
