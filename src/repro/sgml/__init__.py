"""The NETMARK SGML parser layer.

Tolerant HTML/SGML and strict XML parsing into a small DOM, node-type
classification (ELEMENT / TEXT / CONTEXT / INTENSE / SIMULATION) driven by
configuration files, and XML serialization.
"""

from repro.sgml.config import DEFAULT_CONFIG, NodeTypeConfig
from repro.sgml.dom import Document, Element, Node, Text
from repro.sgml.nodetypes import (
    DEFAULT_CONTEXT_TAGS,
    DEFAULT_INTENSE_TAGS,
    DEFAULT_SIMULATION_TAGS,
    NodeType,
)
from repro.sgml.parser import VOID_ELEMENTS, parse_html, parse_xml
from repro.sgml.serializer import escape_attribute, escape_text, serialize
from repro.sgml.tokenizer import decode_entities, tokenize_markup

__all__ = [
    "DEFAULT_CONFIG",
    "DEFAULT_CONTEXT_TAGS",
    "DEFAULT_INTENSE_TAGS",
    "DEFAULT_SIMULATION_TAGS",
    "Document",
    "Element",
    "Node",
    "NodeType",
    "NodeTypeConfig",
    "Text",
    "VOID_ELEMENTS",
    "decode_entities",
    "escape_attribute",
    "escape_text",
    "parse_html",
    "parse_xml",
    "serialize",
    "tokenize_markup",
]
