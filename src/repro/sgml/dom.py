"""A small DOM for parsed SGML/XML documents.

The paper's SGML parser "models the document itself (similar to the DOM)",
so this tree is the in-memory form every document passes through between a
converter and the XML store.  It is intentionally lighter than W3C DOM:
two node kinds (:class:`Element`, :class:`Text`) plus a :class:`Document`
root wrapper, parent links, ordered children, and string attributes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator


class Node:
    """Base class for DOM nodes."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Element | None = None

    # Subtree iteration in document order.
    def walk(self) -> Iterator["Node"]:
        yield self

    def text_content(self) -> str:
        """All descendant text, concatenated in document order."""
        return ""

    def detach(self) -> "Node":
        """Remove this node from its parent (no-op when already root)."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    def clone(self) -> "Node":
        """Deep-copy this node (the copy has no parent)."""
        raise NotImplementedError


class Text(Node):
    """A run of character data."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"Text({preview!r})"

    def text_content(self) -> str:
        return self.data

    def clone(self) -> "Text":
        return Text(self.data)


class Element(Node):
    """A markup element with a tag name, attributes and children."""

    __slots__ = ("tag", "attributes", "children", "synthetic")

    def __init__(
        self,
        tag: str,
        attributes: dict[str, str] | None = None,
        synthetic: bool = False,
    ) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Node] = []
        #: True when the parser/converter invented this node (it was not in
        #: the source document); such elements get NODETYPE SIMULATION.
        self.synthetic = synthetic

    def __repr__(self) -> str:
        return f"Element(<{self.tag}> children={len(self.children)})"

    # -- construction -------------------------------------------------------

    def append(self, node: Node) -> Node:
        node.detach()
        node.parent = self
        self.children.append(node)
        return node

    def append_text(self, data: str) -> Text:
        text = Text(data)
        self.append(text)
        return text

    def make_child(self, tag: str, **attributes: str) -> "Element":
        child = Element(tag, attributes)
        self.append(child)
        return child

    # -- queries -------------------------------------------------------------

    def walk(self) -> Iterator[Node]:
        yield self
        for child in self.children:
            yield from child.walk()

    def elements(self) -> Iterator["Element"]:
        """Descendant-or-self elements in document order."""
        for node in self.walk():
            if isinstance(node, Element):
                yield node

    def find(self, tag: str) -> "Element | None":
        """First descendant element with ``tag`` (case-insensitive)."""
        tag = tag.lower()
        for element in self.elements():
            if element is not self and element.tag == tag:
                return element
        return None

    def find_all(self, tag: str) -> list["Element"]:
        tag = tag.lower()
        return [
            element
            for element in self.elements()
            if element is not self and element.tag == tag
        ]

    def child_elements(self) -> list["Element"]:
        return [child for child in self.children if isinstance(child, Element)]

    def text_content(self) -> str:
        return "".join(child.text_content() for child in self.children)

    def get(self, attribute: str, default: Any = None) -> Any:
        return self.attributes.get(attribute, default)

    def clone(self) -> "Element":
        copy = Element(self.tag, dict(self.attributes), synthetic=self.synthetic)
        for child in self.children:
            copy.append(child.clone())
        return copy

    # -- navigation ------------------------------------------------------------

    def next_sibling(self) -> Node | None:
        if self.parent is None:
            return None
        siblings = self.parent.children
        index = siblings.index(self)
        return siblings[index + 1] if index + 1 < len(siblings) else None

    def previous_sibling(self) -> Node | None:
        if self.parent is None:
            return None
        siblings = self.parent.children
        index = siblings.index(self)
        return siblings[index - 1] if index > 0 else None

    def ancestors(self) -> Iterator["Element"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent


class Document:
    """The root of a parsed document tree.

    ``root`` is the single top element; ``name`` is the source file name
    (stored in ``DOC.FILE_NAME``); ``metadata`` carries converter-specific
    facts (author, format, sizes) that land in the ``DOC`` table.
    """

    def __init__(
        self,
        root: Element,
        name: str = "",
        metadata: dict[str, Any] | None = None,
    ) -> None:
        self.root = root
        self.name = name
        self.metadata: dict[str, Any] = dict(metadata or {})

    def __repr__(self) -> str:
        return f"Document({self.name!r}, root=<{self.root.tag}>)"

    def walk(self) -> Iterator[Node]:
        return self.root.walk()

    def find(self, tag: str) -> Element | None:
        if self.root.tag == tag.lower():
            return self.root
        return self.root.find(tag)

    def find_all(self, tag: str) -> list[Element]:
        result = self.root.find_all(tag)
        if self.root.tag == tag.lower():
            result.insert(0, self.root)
        return result

    def text_content(self) -> str:
        return self.root.text_content()

    def count(self, predicate: Callable[[Node], bool] | None = None) -> int:
        """Number of nodes in the tree (optionally filtered)."""
        if predicate is None:
            return sum(1 for _ in self.walk())
        return sum(1 for node in self.walk() if predicate(node))
