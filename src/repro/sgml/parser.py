"""Tolerant SGML/HTML tree parser and strict XML parser.

This is the paper's "SGML parser" — the component that "decomposes the XML
(or even HTML) documents into its constituent nodes".  Two entry points:

* :func:`parse_html` — tolerant: case-insensitive tags, HTML void
  elements, auto-closing of ``<p>``/``<li>``/table tags, unclosed elements
  closed at end of input, mismatched end tags recovered by popping to the
  nearest open match (or dropped if none is open).
* :func:`parse_xml` — strict: raises :class:`~repro.errors.SgmlSyntaxError`
  on mismatched or unclosed tags, and requires a single root element.

Both return a :class:`~repro.sgml.dom.Document`.
"""

from __future__ import annotations

from repro.errors import SgmlSyntaxError
from repro.sgml.dom import Document, Element, Text
from repro.sgml.tokenizer import (
    CommentToken,
    DeclarationToken,
    EndTag,
    StartTag,
    TextToken,
    Tokenizer,
)

#: HTML elements that never have content.
VOID_ELEMENTS = frozenset(
    {"br", "hr", "img", "input", "meta", "link", "area", "base", "col",
     "embed", "source", "track", "wbr"}
)

#: HTML elements whose content is raw text: markup inside them is data,
#: not structure (``if (a < b) { ... }`` must not open tags).  The
#: behaviour lives in the tokenizer; this re-export documents it here.
RAWTEXT_ELEMENTS = Tokenizer.RAWTEXT

#: When a start tag in the key set is seen while an element in the value
#: set is open, the open element is implicitly closed first (HTML optional
#: end tags).
_AUTO_CLOSE: dict[str, frozenset[str]] = {
    "p": frozenset({"p"}),
    "li": frozenset({"li"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "option": frozenset({"option"}),
    "h1": frozenset({"p"}),
    "h2": frozenset({"p"}),
    "h3": frozenset({"p"}),
    "h4": frozenset({"p"}),
    "h5": frozenset({"p"}),
    "h6": frozenset({"p"}),
}


def parse_html(markup: str, name: str = "") -> Document:
    """Parse possibly-sloppy HTML/SGML into a Document; never raises."""
    return _parse(markup, name=name, strict=False)


def parse_xml(markup: str, name: str = "") -> Document:
    """Parse well-formed XML; raises SgmlSyntaxError on structure errors."""
    return _parse(markup, name=name, strict=True)


def _parse(markup: str, name: str, strict: bool) -> Document:
    # A virtual root collects everything; we unwrap it at the end.
    virtual_root = Element("#root")
    stack: list[Element] = [virtual_root]
    saw_root_element = False

    for token in Tokenizer(markup, strict=strict).tokens():
        top = stack[-1]
        if isinstance(token, TextToken):
            if token.data:
                if strict and top is virtual_root and token.data.strip():
                    raise SgmlSyntaxError(
                        "character data outside the root element", token.line
                    )
                if token.data.strip() or top is not virtual_root:
                    top.append(Text(token.data))
        elif isinstance(token, StartTag):
            if strict and top is virtual_root and saw_root_element:
                raise SgmlSyntaxError(
                    f"multiple root elements (<{token.name}>)", token.line
                )
            if not strict:
                _auto_close(stack, token.name)
                top = stack[-1]
            element = Element(token.name, token.attributes)
            top.append(element)
            if top is virtual_root:
                saw_root_element = True
            is_void = not strict and token.name in VOID_ELEMENTS
            if not token.self_closing and not is_void:
                stack.append(element)
        elif isinstance(token, EndTag):
            _close(stack, token, strict)
        elif isinstance(token, (CommentToken, DeclarationToken)):
            continue

    if len(stack) > 1:
        if strict:
            raise SgmlSyntaxError(
                f"unclosed element <{stack[-1].tag}> at end of input"
            )
        # Tolerant mode: everything still open is closed at EOF.
        del stack[1:]

    children = virtual_root.child_elements()
    if strict and len(children) != 1:
        raise SgmlSyntaxError(
            f"expected exactly one root element, found {len(children)}"
        )
    if len(children) == 1 and all(
        not isinstance(child, Text) or not child.data.strip()
        for child in virtual_root.children
    ):
        root = children[0]
        root.detach()
    else:
        # Fragment input: wrap in a synthetic root so callers always get
        # a single tree.
        virtual_root.tag = "fragment"
        virtual_root.synthetic = True
        root = virtual_root
    return Document(root, name=name)


def _auto_close(stack: list[Element], incoming: str) -> None:
    closes = _AUTO_CLOSE.get(incoming)
    if closes is None:
        return
    # Only close the innermost matching element; HTML recovery is local.
    if len(stack) > 1 and stack[-1].tag in closes:
        stack.pop()


def _close(stack: list[Element], token: EndTag, strict: bool) -> None:
    if strict:
        if len(stack) < 2 or stack[-1].tag != token.name:
            open_tag = stack[-1].tag if len(stack) > 1 else None
            raise SgmlSyntaxError(
                f"mismatched end tag </{token.name}>"
                + (f" (open element is <{open_tag}>)" if open_tag else ""),
                token.line,
            )
        stack.pop()
        return
    # Tolerant: pop to the nearest matching open element; ignore if none.
    for depth in range(len(stack) - 1, 0, -1):
        if stack[depth].tag == token.name:
            del stack[depth:]
            return
