"""The five NETMARK node data types.

The paper (§2.1.1): "The SGML parser is governed by five different node
data types ... (1) ELEMENT, (2) TEXT, (3) CONTEXT, (4) INTENSE, and (5)
SIMULATION", assigned from an HTML/XML configuration file, and recorded in
the ``NODETYPE`` column of the ``XML`` table.

The paper skips the definitions ("We skip the details on what the
different node types are"), so this reproduction fixes an interpretation
consistent with every behaviour the paper *does* describe:

* **ELEMENT** — an ordinary markup element (tree structure).
* **TEXT** — parsed character data (the *content* the queries return).
* **CONTEXT** — a heading element ("similar to the <H1> and <H2> header
  tags commonly found within HTML pages"); the unit context search
  resolves to.
* **INTENSE** — inline emphasis markup (``<b>``, ``<strong>``, ``<em>``…);
  text inside it is still content but carries extra search weight.
* **SIMULATION** — a node *synthesised by the parser* rather than present
  in the source, e.g. the implied section wrapper generated when a
  converter upmarks a plain document, or a generated title for an untitled
  fragment.

The numeric ids below are the NODETYPE column values (matching the paper's
enumeration order).
"""

from __future__ import annotations

import enum


class NodeType(enum.IntEnum):
    """NETMARK node data type, stored in ``XML.NODETYPE``."""

    ELEMENT = 1
    TEXT = 2
    CONTEXT = 3
    INTENSE = 4
    SIMULATION = 5


#: Element names treated as CONTEXT by the default HTML configuration.
DEFAULT_CONTEXT_TAGS = frozenset(
    {"h1", "h2", "h3", "h4", "h5", "h6", "context", "title", "caption"}
)

#: Element names treated as INTENSE by the default HTML configuration.
DEFAULT_INTENSE_TAGS = frozenset(
    {"b", "strong", "em", "i", "u", "mark", "intense"}
)

#: Element names the parser synthesises; they are tagged SIMULATION.
DEFAULT_SIMULATION_TAGS = frozenset(
    {"section", "generated", "simulation", "implied"}
)
