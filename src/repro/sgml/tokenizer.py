"""SGML/HTML/XML tokenizer.

Splits raw markup into a flat stream of tokens: start tags (with parsed
attributes), end tags, text runs, comments, CDATA sections, and
declarations/processing instructions.  The tokenizer is *tolerant*: it
never raises on sloppy real-world HTML — a stray ``<`` that cannot start a
tag is emitted as text, unquoted attribute values are accepted, and an
unterminated comment runs to end of input.  Hard failures are reserved for
the strict-XML mode used by :func:`repro.sgml.parser.parse_xml`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SgmlSyntaxError

_NAME_RE = re.compile(r"[A-Za-z_][-A-Za-z0-9_.:]*")
_ATTR_RE = re.compile(
    r"""\s*([-A-Za-z0-9_.:]+)(?:\s*=\s*("[^"]*"|'[^']*'|[^\s>]+))?"""
)

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": "\u0020",  # NBSP folded to plain space for search friendliness
}

_ENTITY_RE = re.compile(r"&(#x?[0-9A-Fa-f]+|[A-Za-z]+);")


def decode_entities(text: str) -> str:
    """Replace character/entity references with their characters.

    Unknown named entities are left verbatim (tolerant behaviour — NASA
    documents are full of them).
    """

    def _replace(match: re.Match[str]) -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except (ValueError, OverflowError):
                return match.group(0)
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except (ValueError, OverflowError):
                return match.group(0)
        return _ENTITIES.get(body.lower(), match.group(0))

    return _ENTITY_RE.sub(_replace, text)


@dataclass(frozen=True)
class Token:
    """Base token; ``line`` is 1-based for error reporting."""

    line: int


@dataclass(frozen=True)
class StartTag(Token):
    name: str
    attributes: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass(frozen=True)
class EndTag(Token):
    name: str


@dataclass(frozen=True)
class TextToken(Token):
    data: str


@dataclass(frozen=True)
class CommentToken(Token):
    data: str


@dataclass(frozen=True)
class DeclarationToken(Token):
    """``<!DOCTYPE ...>`` or ``<?xml ...?>`` — structure-irrelevant."""

    data: str


class Tokenizer:
    """Streaming tokenizer over one markup string."""

    def __init__(self, markup: str, strict: bool = False) -> None:
        self._markup = markup
        self._strict = strict
        self._pos = 0
        self._line = 1

    #: Elements whose content is raw text in tolerant mode (markup inside
    #: is character data): scripts and styles.
    RAWTEXT = frozenset({"script", "style"})

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until the input is exhausted."""
        markup = self._markup
        length = len(markup)
        while self._pos < length:
            if markup[self._pos] == "<":
                token = self._read_markup()
                if token is not None:
                    yield token
                    if (
                        not self._strict
                        and isinstance(token, StartTag)
                        and token.name in self.RAWTEXT
                        and not token.self_closing
                    ):
                        yield from self._read_rawtext(token.name)
            else:
                yield self._read_text()

    def _read_rawtext(self, name: str) -> Iterator[Token]:
        """Consume everything up to ``</name>`` as one text token."""
        line = self._line
        lowered = self._markup.lower()
        close = f"</{name}"
        end = lowered.find(close, self._pos)
        if end == -1:
            data = self._markup[self._pos:]
            self._advance(len(self._markup))
            if data:
                yield TextToken(line, data)
            return
        data = self._markup[self._pos:end]
        self._advance(end)
        if data:
            yield TextToken(line, data)
        # The end tag itself parses normally on the next iteration.

    # -- internals -----------------------------------------------------------

    def _advance(self, new_pos: int) -> None:
        self._line += self._markup.count("\n", self._pos, new_pos)
        self._pos = new_pos

    def _read_text(self) -> TextToken:
        start = self._pos
        end = self._markup.find("<", start)
        if end == -1:
            end = len(self._markup)
        line = self._line
        raw = self._markup[start:end]
        self._advance(end)
        return TextToken(line, decode_entities(raw))

    def _read_markup(self) -> Token | None:
        markup = self._markup
        pos = self._pos
        line = self._line
        if markup.startswith("<!--", pos):
            return self._read_comment()
        if markup.startswith("<![CDATA[", pos):
            return self._read_cdata()
        if markup.startswith("<!", pos) or markup.startswith("<?", pos):
            return self._read_declaration()
        if markup.startswith("</", pos):
            return self._read_end_tag()
        name_match = _NAME_RE.match(markup, pos + 1)
        if name_match is None:
            # A bare '<' that starts no tag: tolerant mode emits it as text.
            if self._strict:
                raise SgmlSyntaxError("invalid character after '<'", line)
            self._advance(pos + 1)
            return TextToken(line, "<")
        return self._read_start_tag(name_match)

    def _read_comment(self) -> CommentToken:
        line = self._line
        end = self._markup.find("-->", self._pos + 4)
        if end == -1:
            if self._strict:
                raise SgmlSyntaxError("unterminated comment", line)
            data = self._markup[self._pos + 4:]
            self._advance(len(self._markup))
            return CommentToken(line, data)
        data = self._markup[self._pos + 4:end]
        self._advance(end + 3)
        return CommentToken(line, data)

    def _read_cdata(self) -> TextToken:
        line = self._line
        start = self._pos + len("<![CDATA[")
        end = self._markup.find("]]>", start)
        if end == -1:
            if self._strict:
                raise SgmlSyntaxError("unterminated CDATA section", line)
            data = self._markup[start:]
            self._advance(len(self._markup))
            return TextToken(line, data)
        data = self._markup[start:end]
        self._advance(end + 3)
        return TextToken(line, data)

    def _read_declaration(self) -> DeclarationToken:
        line = self._line
        end = self._markup.find(">", self._pos)
        if end == -1:
            if self._strict:
                raise SgmlSyntaxError("unterminated declaration", line)
            end = len(self._markup) - 1
        data = self._markup[self._pos:end + 1]
        self._advance(end + 1)
        return DeclarationToken(line, data)

    def _read_end_tag(self) -> Token:
        line = self._line
        name_match = _NAME_RE.match(self._markup, self._pos + 2)
        end = self._markup.find(">", self._pos)
        if name_match is None or end == -1:
            if self._strict:
                raise SgmlSyntaxError("malformed end tag", line)
            # Skip the junk through '>' (or all remaining input).
            self._advance(end + 1 if end != -1 else len(self._markup))
            return TextToken(line, "")
        self._advance(end + 1)
        return EndTag(line, name_match.group(0).lower())

    def _read_start_tag(self, name_match: re.Match[str]) -> StartTag:
        line = self._line
        name = name_match.group(0).lower()
        pos = name_match.end()
        end = self._markup.find(">", pos)
        if end == -1:
            if self._strict:
                raise SgmlSyntaxError(f"unterminated <{name}> tag", line)
            end = len(self._markup)
            body = self._markup[pos:end]
            self._advance(end)
        else:
            body = self._markup[pos:end]
            self._advance(end + 1)
        self_closing = body.rstrip().endswith("/")
        if self_closing:
            body = body.rstrip()[:-1]
        attributes: dict[str, str] = {}
        for attr_match in _ATTR_RE.finditer(body):
            attr_name = attr_match.group(1).lower()
            raw_value = attr_match.group(2)
            if raw_value is None:
                value = attr_name  # HTML boolean attribute
            elif raw_value[:1] in {'"', "'"}:
                value = raw_value[1:-1]
            else:
                value = raw_value
            attributes[attr_name] = decode_entities(value)
        return StartTag(line, name, attributes, self_closing)


def tokenize_markup(markup: str, strict: bool = False) -> list[Token]:
    """Tokenize ``markup`` fully and return the token list."""
    return list(Tokenizer(markup, strict=strict).tokens())
