"""Lean Middleware — a reproduction of the NETMARK data integration system.

Maluf, Bell & Ashish, *Lean Middleware*, ACM SIGMOD 2005.

The package implements the paper's complete stack, bottom to top:

* :mod:`repro.ordbms` — the object-relational substrate (heap tables with
  physical ROWIDs, B+tree and inverted-text indexes, executor, WAL-style
  transactions);
* :mod:`repro.sgml` — the tolerant SGML/HTML/XML parser, DOM and the five
  NETMARK node types;
* :mod:`repro.converters` — format "upmark" parsers (Word/PDF/PowerPoint
  stand-ins, HTML, Markdown, CSV, plain text, XML);
* :mod:`repro.store` — the schema-less XML Store (the two-table generated
  schema of Fig 5);
* :mod:`repro.query` — the XDB Query language and context/content engine;
* :mod:`repro.xslt` — the XSLT-lite result-composition processor;
* :mod:`repro.server` — WebDAV folders, the ingestion daemon, the HTTP API;
* :mod:`repro.federation` — databanks, capability-based query
  augmentation, and the thin router;
* :mod:`repro.baselines` — the comparison systems (GAV mediator,
  relational shredding storage);
* :mod:`repro.costmodel`, :mod:`repro.workloads`, :mod:`repro.apps` —
  experiment support and the Table 1 NASA applications.

Quick start::

    from repro import Netmark

    nm = Netmark()
    nm.ingest("report.ndoc", open("report.ndoc").read())
    briefs = [match.brief() for match in nm.search("Context=Budget&Content=travel")]

Library code never writes to stdout (the ``print-call`` rule in
:mod:`repro.analysis` enforces it) — results are returned, as above.
"""

from repro.errors import ReproError
from repro.netmark import AssemblyLedger, Netmark
from repro.query.results import ResultSet, SectionMatch
from repro.store.xmlstore import StoredDocument, XmlStore

__version__ = "1.0.0"

__all__ = [
    "AssemblyLedger",
    "Netmark",
    "ReproError",
    "ResultSet",
    "SectionMatch",
    "StoredDocument",
    "XmlStore",
    "__version__",
]
