"""Multi-worker serving: a thread pool over the in-process HTTP API.

The paper's NETMARK serves many WebDAV/HTTP clients at once while the
daemon ingests in the background.  This module is that front end for the
in-process API: :class:`WorkerPool` runs N worker threads pulling
requests off one shared queue, and :class:`IngestThread` runs the daemon
poll loop beside them.  The two sides never block each other:

* every read request executes against its own MVCC snapshot (pinned
  inside :class:`~repro.server.http.NetmarkHttpApi`), so workers read
  lock-free via the seqlock/version-history protocol of
  :mod:`repro.ordbms.mvcc`;
* the daemon is the database's single writer — :class:`IngestThread` is
  just that writer moved off the caller's thread.

Thread-safety map (every shared location, with its guard):

* the request queue — ``queue.Queue``, internally locked;
* pending responses — per-request :class:`threading.Event` handoff;
* metric counters — the registry lock (:mod:`repro.obs.metrics`);
* snapshot pins — ``MvccState._pin_lock``;
* table data — the seqlock protocol (single writer, optimistic readers).

Typical use::

    pool = WorkerPool(api, workers=4)
    pool.start()
    futures = [pool.submit("GET", "/search?Context=Budget") for _ in range(32)]
    responses = [future.result() for future in futures]
    pool.stop()
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import ServerError
from repro.server.http import HttpResponse

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.daemon import IngestRecord, NetmarkDaemon
    from repro.server.http import NetmarkHttpApi

__all__ = ["IngestThread", "ResponseFuture", "WorkerPool"]


class ResponseFuture:
    """Handoff slot for one submitted request (a minimal future).

    ``result()`` blocks until a worker has produced the response.  A
    request that raised instead of responding re-raises the exception in
    the waiting thread — errors surface where the caller is, never die
    silently inside a worker.
    """

    __slots__ = ("_done", "_response", "_error")

    def __init__(self) -> None:
        self._done = threading.Event()
        # repro: guarded-by(_done) written by exactly one worker before
        # the event is set; readers wait on the event first.
        self._response: HttpResponse | None = None
        # repro: guarded-by(_done) same single-writer-then-publish scheme.
        self._error: BaseException | None = None

    def _fulfill(self, response: HttpResponse) -> None:
        self._response = response
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> HttpResponse:
        if not self._done.wait(timeout):
            raise ServerError("request not answered within timeout")
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class _Job:
    """One queued request: what to run plus where to publish the answer."""

    __slots__ = ("method", "target", "body", "future")

    def __init__(
        self, method: str, target: str, body: str, future: ResponseFuture
    ) -> None:
        self.method = method
        self.target = target
        self.body = body
        self.future = future


#: Queue sentinel telling one worker to exit its loop.
_POISON = None


class WorkerPool:
    """N worker threads answering API requests from one shared queue.

    The pool owns only the dispatch: all request semantics (routing,
    snapshots, error envelopes) live in the API object, which must be
    thread-safe for reads — that is exactly what the MVCC snapshot work
    makes true.  Per-worker request counts are published as
    ``repro_server_worker_requests_total{worker=N}`` so a stuck or slow
    worker shows up in ``/metrics``.
    """

    def __init__(self, api: "NetmarkHttpApi", workers: int = 4) -> None:
        if workers < 1:
            raise ServerError("a worker pool needs at least one worker")
        self.api = api
        self.workers = workers
        #: Internally locked; the only channel between callers and workers.
        self._queue: queue.Queue[_Job | None] = queue.Queue()
        # repro: guarded-by(gil) list append/iterate only from the
        # controlling thread (start/stop are not concurrent with each other).
        self._threads: list[threading.Thread] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for number in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(number,),
                name=f"netmark-worker-{number}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def stop(self) -> None:
        """Drain the queue, stop every worker, join them (idempotent)."""
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(_POISON)
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        self._started = False

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- request submission ------------------------------------------------

    def submit(
        self, method: str, target: str, body: str = ""
    ) -> ResponseFuture:
        """Enqueue one request; returns immediately with its future."""
        if not self._started:
            raise ServerError("worker pool is not running (call start())")
        future = ResponseFuture()
        self._queue.put(_Job(method, target, body, future))
        return future

    def request(
        self, method: str, target: str, body: str = ""
    ) -> HttpResponse:
        """Submit and wait — the drop-in equivalent of ``api.request``."""
        return self.submit(method, target, body).result()

    # -- the worker loop ---------------------------------------------------

    def _worker_loop(self, number: int) -> None:
        label = str(number)
        while True:
            job = self._queue.get()
            try:
                if job is _POISON:
                    return
                try:
                    response = self.api.request(
                        job.method, job.target, job.body
                    )
                except BaseException as error:  # lint: allow-broad-except(workers survive any request failure; the exception is republished to the submitter via the future)
                    job.future._fail(error)
                else:
                    job.future._fulfill(response)
                obs.inc(
                    "repro_server_worker_requests_total", worker=label
                )
            finally:
                self._queue.task_done()


class IngestThread:
    """The daemon's poll loop on its own thread — the single MVCC writer.

    Started beside a :class:`WorkerPool`, it keeps polling the drop
    folder until :meth:`stop` is called *and* the folder is drained (or
    ``drain=False`` stops it at the next poll boundary).  Readers never
    wait on it; it never waits on readers.
    """

    def __init__(self, daemon: "NetmarkDaemon") -> None:
        self.daemon = daemon
        self._stop = threading.Event()
        # repro: guarded-by(gil) int increments on the ingest thread only;
        # other threads read a possibly slightly-stale count, which is fine.
        self.ingested = 0
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="netmark-ingest", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = None) -> int:
        """Signal the loop to finish, join it, return documents ingested."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        return self.ingested

    def _run(self) -> None:
        while True:
            records = self.daemon.poll()
            self.ingested += sum(1 for record in records if record.ok)
            if not records and self._stop.is_set():
                return
            if not records:
                # Idle poll: yield briefly instead of spinning the GIL
                # away from the workers.
                self._stop.wait(0.001)

    def records(self) -> "list[IngestRecord]":
        """The daemon's full ingest history (stable once stopped)."""
        return list(self.daemon.history)
