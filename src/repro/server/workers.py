"""Multi-worker serving: a thread pool over the in-process HTTP API.

The paper's NETMARK serves many WebDAV/HTTP clients at once while the
daemon ingests in the background.  This module is that front end for the
in-process API: :class:`WorkerPool` runs N worker threads pulling
requests off one shared queue, and :class:`IngestThread` runs the daemon
poll loop beside them.  The two sides never block each other:

* every read request executes against its own MVCC snapshot (pinned
  inside :class:`~repro.server.http.NetmarkHttpApi`), so workers read
  lock-free via the seqlock/version-history protocol of
  :mod:`repro.ordbms.mvcc`;
* the daemon is the database's single writer — :class:`IngestThread` is
  just that writer moved off the caller's thread.

Overload protection (attach an
:class:`~repro.server.overload.AdmissionController`):

* the queue becomes **bounded**; a submit against a full queue is shed
  *immediately* — its future resolves to 503 + ``Retry-After``, no
  worker ever sees it;
* every request gets a :class:`~repro.resilience.deadline.Budget`
  started at **enqueue** time (``deadline_ticks``), so queue wait counts
  against the deadline and a worker refuses (504) any job that expired
  while queued — no request ever *executes* after its deadline;
* a submitter whose ``result(timeout)`` expires cancels the job's
  token, so an abandoned request is skipped at dequeue (or stops at the
  plan's next batch boundary) instead of burning a worker for nobody.

Thread-safety map (every shared location, with its guard):

* the request queue — ``queue.Queue``, internally locked;
* pending responses — per-request :class:`threading.Event` handoff;
* cancellation — per-request token (:class:`threading.Event` latch);
* admission pressure — ``AdmissionController._lock``;
* metric counters — the registry lock (:mod:`repro.obs.metrics`);
* snapshot pins — ``MvccState._pin_lock``;
* table data — the seqlock protocol (single writer, optimistic readers).

Typical use::

    pool = WorkerPool(api, workers=4)
    pool.start()
    futures = [pool.submit("GET", "/search?Context=Budget") for _ in range(32)]
    responses = [future.result() for future in futures]
    pool.stop()

Deterministic use (benchmarks, overload drills): ``manual=True`` runs no
threads — ``submit`` enqueues and :meth:`WorkerPool.serve_pending`
processes on the calling thread, so an overload scenario on the logical
clock replays tick-for-tick.
"""

from __future__ import annotations

import inspect
import queue
import threading
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import ServerError
from repro.resilience.clock import LogicalClock
from repro.resilience.deadline import Budget, CancellationToken, TickSource
from repro.server.http import (
    RETRY_AFTER_SECONDS,
    HttpResponse,
    error_response,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.daemon import IngestRecord, NetmarkDaemon
    from repro.server.http import NetmarkHttpApi
    from repro.server.overload import AdmissionController

__all__ = ["IngestThread", "ResponseFuture", "WorkerPool"]


class ResponseFuture:
    """Handoff slot for one submitted request (a minimal future).

    ``result()`` blocks until a worker has produced the response.  A
    request that raised instead of responding re-raises the exception in
    the waiting thread — errors surface where the caller is, never die
    silently inside a worker.

    A future carries its request's cancellation token: ``cancel()``
    withdraws the request cooperatively, and a ``result(timeout)`` that
    expires cancels automatically — a submitter that stopped waiting
    must not leave its job consuming a worker (or a queue slot) for an
    answer nobody will read.
    """

    __slots__ = ("_done", "_response", "_error", "token")

    def __init__(self, token: CancellationToken | None = None) -> None:
        self._done = threading.Event()
        # repro: guarded-by(_done) written by exactly one worker before
        # the event is set; readers wait on the event first.
        self._response: HttpResponse | None = None
        # repro: guarded-by(_done) same single-writer-then-publish scheme.
        self._error: BaseException | None = None
        #: The request's cancel latch (None for token-less futures).
        self.token = token

    def _fulfill(self, response: HttpResponse) -> None:
        self._response = response
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def cancel(self, reason: str = "cancelled by submitter") -> bool:
        """Withdraw the request cooperatively (False if already done).

        Cancellation is advisory: a worker observes it at dequeue or at
        the plan's next batch boundary, answering 499 either way.
        """
        if self.token is None or self._done.is_set():
            return False
        self.token.cancel(reason)
        return True

    def result(self, timeout: float | None = None) -> HttpResponse:
        if not self._done.wait(timeout):
            # The abandoned-request fix: an expired wait marks the job
            # cancelled so a worker that reaches it skips the work.
            if self.token is not None and not self.token.cancelled:
                self.token.cancel("submitter stopped waiting for the response")
                obs.inc("repro_server_requests_abandoned_total")
            raise ServerError("request not answered within timeout")
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class _Job:
    """One queued request: what to run plus where to publish the answer."""

    __slots__ = ("method", "target", "body", "future", "budget")

    def __init__(
        self,
        method: str,
        target: str,
        body: str,
        future: ResponseFuture,
        budget: Budget,
    ) -> None:
        self.method = method
        self.target = target
        self.body = body
        self.future = future
        self.budget = budget


#: Queue sentinel telling one worker to exit its loop.
_POISON = None


class WorkerPool:
    """N worker threads answering API requests from one shared queue.

    The pool owns only the dispatch: all request semantics (routing,
    snapshots, error envelopes) live in the API object, which must be
    thread-safe for reads — that is exactly what the MVCC snapshot work
    makes true.  Per-worker request counts are published as
    ``repro_server_worker_requests_total{worker=N}`` so a stuck or slow
    worker shows up in ``/metrics``.

    ``admission`` bounds the queue at ``admission.queue_limit`` and
    feeds the shed/brownout pressure signal; ``deadline_ticks`` starts
    every request's deadline at enqueue time on ``clock`` (defaulting to
    the API's clock, so queue wait and execution share one timeline).
    ``manual=True`` runs no threads; drive with :meth:`serve_pending`.
    """

    def __init__(
        self,
        api: "NetmarkHttpApi",
        workers: int = 4,
        admission: "AdmissionController | None" = None,
        deadline_ticks: int | None = None,
        clock: TickSource | None = None,
        manual: bool = False,
    ) -> None:
        if workers < 1:
            raise ServerError("a worker pool needs at least one worker")
        if deadline_ticks is not None and deadline_ticks <= 0:
            raise ServerError("deadline_ticks must be positive")
        self.api = api
        self.workers = workers
        self.admission = admission
        self.deadline_ticks = deadline_ticks
        self.manual = manual
        api_clock = getattr(api, "clock", None)
        self.clock: TickSource = (
            clock
            if clock is not None
            else api_clock if api_clock is not None else LogicalClock()
        )
        # One controller drives both halves of overload protection: the
        # pool sheds at the queue, the API browns searches out.  Wire the
        # API side up unless the caller configured it differently.
        if admission is not None and getattr(api, "admission", None) is None:
            api.admission = admission
        maxsize = admission.queue_limit if admission is not None else 0
        #: Internally locked; the only channel between callers and workers.
        self._queue: queue.Queue[_Job | None] = queue.Queue(maxsize=maxsize)
        # repro: guarded-by(gil) list append/iterate only from the
        # controlling thread (start/stop are not concurrent with each other).
        self._threads: list[threading.Thread] = []
        self._started = False
        self._forward_budget = self._api_accepts_budget(api)

    @staticmethod
    def _api_accepts_budget(api: "NetmarkHttpApi") -> bool:
        """Does ``api.request`` take a ``budget=`` keyword?

        The API boundary is duck-typed (benchmarks wrap it); a wrapper
        written before deadlines existed keeps working — its requests
        simply run without in-flight budget checks, while queue-level
        shedding and dequeue-time expiry still apply.
        """
        try:
            parameters = inspect.signature(api.request).parameters
        except (TypeError, ValueError):  # builtins / odd callables
            return False
        if "budget" in parameters:
            return True
        return any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self.manual:
            raise ServerError(
                "a manual pool has no worker threads; drive it with "
                "serve_pending()"
            )
        if self._started:
            return
        self._started = True
        for number in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(number,),
                name=f"netmark-worker-{number}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, timeout: float | None = None) -> int:
        """Stop the pool; returns the number of workers left unjoined.

        Pending (unstarted) jobs are *rejected* — each future resolves
        to 503 ``shutting-down`` rather than hanging its submitter
        forever.  With a ``timeout``, each worker gets that many seconds
        to finish its in-flight request; workers still alive afterwards
        are abandoned (they are daemon threads), counted, and published
        as ``repro_server_workers_unjoined_total`` so a hung handler is
        an observable event instead of a silent wedge.
        """
        if self.manual:
            self._drain_rejecting()
            return 0
        if not self._started:
            return 0
        self._drain_rejecting()
        for _ in self._threads:
            self._inject_poison()
        unjoined = 0
        for thread in self._threads:
            thread.join(timeout)
            if thread.is_alive():
                unjoined += 1
        if unjoined:
            obs.inc("repro_server_workers_unjoined_total", unjoined)
        # Jobs that slipped in during shutdown (and poisons meant for
        # workers that never came back) must not strand their submitters.
        self._drain_rejecting()
        self._threads.clear()
        self._started = False
        return unjoined

    def _inject_poison(self) -> None:
        """Queue one poison pill, evicting a pending job if full."""
        while True:
            try:
                self._queue.put_nowait(_POISON)
                return
            except queue.Full:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    continue  # a worker freed the slot meanwhile
                self._queue.task_done()
                if item is _POISON:
                    return  # the full queue already holds a pill
                self._reject(item)

    def _drain_rejecting(self) -> int:
        rejected = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                obs.set_gauge("repro_server_queue_depth", self._queue.qsize())
                return rejected
            self._queue.task_done()
            if item is not _POISON:
                self._reject(item)
                rejected += 1

    @staticmethod
    def _reject(job: _Job) -> None:
        if job.future.done():
            return
        obs.inc("repro_server_requests_rejected_total", reason="shutdown")
        job.future._fulfill(error_response(
            503, "shutting-down",
            "server is shutting down; request not executed",
            retry_after=RETRY_AFTER_SECONDS,
        ))

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- request submission ------------------------------------------------

    def submit(
        self, method: str, target: str, body: str = ""
    ) -> ResponseFuture:
        """Enqueue one request; returns immediately with its future.

        The returned future is *always* resolved eventually: by a
        worker, by shedding (503, queue full), by deadline expiry (504)
        or by shutdown rejection (503) — a submitter that waits without
        a timeout cannot hang on a request the pool dropped.
        """
        if not self._started and not self.manual:
            raise ServerError("worker pool is not running (call start())")
        token = CancellationToken()
        budget = Budget(token=token)
        if self.deadline_ticks is not None:
            # Started here, at admission — queue wait spends the budget.
            budget.tighten(self.clock, self.deadline_ticks)
        future = ResponseFuture(token=token)
        job = _Job(method, target, body, future, budget)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            # Shed at the front door: reply now, cheaply, with back-off
            # advice — never queue beyond the configured bound.
            if self.admission is not None:
                self.admission.on_shed()
            future._fulfill(error_response(
                503, "overloaded",
                "request queue is full; retry shortly",
                retry_after=RETRY_AFTER_SECONDS,
            ))
            return future
        if self.admission is not None:
            self.admission.on_accept()
        obs.set_gauge("repro_server_queue_depth", self._queue.qsize())
        return future

    def request(
        self, method: str, target: str, body: str = ""
    ) -> HttpResponse:
        """Submit and wait — the drop-in equivalent of ``api.request``."""
        return self.submit(method, target, body).result()

    # -- the worker loop ---------------------------------------------------

    def _worker_loop(self, number: int) -> None:
        label = str(number)
        while True:
            job = self._queue.get()
            try:
                if job is _POISON:
                    return
                obs.set_gauge("repro_server_queue_depth", self._queue.qsize())
                self._process(job, label)
            finally:
                self._queue.task_done()

    def _process(self, job: _Job, label: str) -> None:
        """Answer one dequeued job (worker thread or manual drive)."""
        budget = job.budget
        if budget.cancelled:
            # Dequeue-time check: never run work nobody is waiting for.
            obs.inc("repro_server_requests_cancelled_total", stage="queued")
            if not job.future.done():
                job.future._fulfill(error_response(
                    499, "cancelled",
                    "request cancelled before execution: "
                    + (budget.token.reason if budget.token else ""),
                ))
        elif budget.expired:
            # The deadline ran out while the job sat in the queue; the
            # guarantee "no request executes after its deadline" is
            # enforced right here, before any API work happens.
            obs.inc("repro_server_requests_timed_out_total", stage="queued")
            job.future._fulfill(error_response(
                504, "deadline-exceeded",
                "deadline expired while queued; request not executed",
                retry_after=RETRY_AFTER_SECONDS,
            ))
        else:
            try:
                response = self._call_api(job)
            except BaseException as error:  # lint: allow-broad-except(workers survive any request failure; the exception is republished to the submitter via the future)
                job.future._fail(error)
            else:
                job.future._fulfill(response)
                if budget.deadline is not None:
                    # How close did we cut it?  Slack near zero across
                    # the fleet means deadlines are about to start firing.
                    obs.observe(
                        "repro_server_deadline_slack_ticks",
                        budget.deadline.remaining(),
                    )
        obs.inc("repro_server_worker_requests_total", worker=label)

    def _call_api(self, job: _Job) -> HttpResponse:
        if self._forward_budget:
            return self.api.request(
                job.method, job.target, job.body, budget=job.budget
            )
        return self.api.request(job.method, job.target, job.body)

    # -- manual (deterministic) drive --------------------------------------

    def serve_one(self) -> bool:
        """Process one queued job on the calling thread (manual mode)."""
        if not self.manual:
            raise ServerError(
                "serve_one()/serve_pending() require a manual pool"
            )
        try:
            job = self._queue.get_nowait()
        except queue.Empty:
            return False
        try:
            if job is not _POISON:
                self._process(job, "manual")
        finally:
            self._queue.task_done()
        obs.set_gauge("repro_server_queue_depth", self._queue.qsize())
        return True

    def serve_pending(self, max_jobs: int | None = None) -> int:
        """Drain up to ``max_jobs`` queued jobs; returns the count served.

        The deterministic scheduler for overload drills: interleave
        ``submit`` bursts, ``clock.advance`` and ``serve_pending`` slots
        and the whole scenario replays exactly.
        """
        served = 0
        while (max_jobs is None or served < max_jobs) and self.serve_one():
            served += 1
        return served

    def queue_depth(self) -> int:
        """Jobs currently waiting (approximate under concurrency)."""
        return self._queue.qsize()


class IngestThread:
    """The daemon's poll loop on its own thread — the single MVCC writer.

    Started beside a :class:`WorkerPool`, it keeps polling the drop
    folder until :meth:`stop` is called *and* the folder is drained (or
    ``drain=False`` stops it at the next poll boundary).  Readers never
    wait on it; it never waits on readers.

    ``heartbeats`` ticks up once per poll iteration and is mirrored to
    the ``repro_server_ingest_heartbeat`` gauge: a *slow* converter
    keeps the heartbeat advancing (ingest is alive, just busy), while a
    heartbeat frozen across observations is the signature of a *hung*
    converter — the one condition a watchdog must distinguish.
    """

    def __init__(self, daemon: "NetmarkDaemon") -> None:
        self.daemon = daemon
        self._stop = threading.Event()
        # repro: guarded-by(gil) int increments on the ingest thread only;
        # other threads read a possibly slightly-stale count, which is fine.
        self.ingested = 0
        # repro: guarded-by(gil) same scheme: single-writer liveness
        # counter, racy-but-monotonic for watchdog readers.
        self.heartbeats = 0
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="netmark-ingest", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = None) -> int:
        """Signal the loop to finish, join it, return documents ingested."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        return self.ingested

    def _run(self) -> None:
        while True:
            self.heartbeats += 1
            obs.set_gauge("repro_server_ingest_heartbeat", self.heartbeats)
            records = self.daemon.poll()
            self.ingested += sum(1 for record in records if record.ok)
            if not records and self._stop.is_set():
                return
            if not records:
                # Idle poll: yield briefly instead of spinning the GIL
                # away from the workers.
                self._stop.wait(0.001)

    def records(self) -> "list[IngestRecord]":
        """The daemon's full ingest history (stable once stopped)."""
        return list(self.daemon.history)
