"""The NETMARK server layer: WebDAV folders, ingestion daemon, HTTP API."""

from repro.server.daemon import IngestRecord, NetmarkDaemon
from repro.server.http import STYLESHEET_FOLDER, HttpResponse, NetmarkHttpApi
from repro.server.vfs import (
    FileEntry,
    VirtualFileSystem,
    base_name,
    normalize_path,
    parent_path,
)
from repro.server.webdav import DavResponse, LockInfo, ResourceProps, WebDavServer

__all__ = [
    "DavResponse",
    "FileEntry",
    "HttpResponse",
    "IngestRecord",
    "LockInfo",
    "NetmarkDaemon",
    "NetmarkHttpApi",
    "ResourceProps",
    "STYLESHEET_FOLDER",
    "VirtualFileSystem",
    "WebDavServer",
    "base_name",
    "normalize_path",
    "parent_path",
]
