"""The NETMARK server layer: WebDAV folders, ingestion daemon, HTTP API."""

from repro.server.daemon import IngestRecord, NetmarkDaemon
from repro.server.http import (
    STYLESHEET_FOLDER,
    HttpResponse,
    NetmarkHttpApi,
    error_response,
)
from repro.server.overload import AdmissionController, degrade_query
from repro.server.vfs import (
    FileEntry,
    VirtualFileSystem,
    base_name,
    normalize_path,
    parent_path,
)
from repro.server.webdav import DavResponse, LockInfo, ResourceProps, WebDavServer
from repro.server.workers import IngestThread, ResponseFuture, WorkerPool

__all__ = [
    "AdmissionController",
    "DavResponse",
    "FileEntry",
    "HttpResponse",
    "IngestRecord",
    "IngestThread",
    "LockInfo",
    "NetmarkDaemon",
    "NetmarkHttpApi",
    "ResourceProps",
    "ResponseFuture",
    "STYLESHEET_FOLDER",
    "VirtualFileSystem",
    "WebDavServer",
    "WorkerPool",
    "base_name",
    "degrade_query",
    "error_response",
    "normalize_path",
    "parent_path",
]
