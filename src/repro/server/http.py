"""The HTTP-style query endpoint ("NETMARK Extensible APIs").

"Users can access NETMARK documents by simple HTTP requests, in fact HTTP
provides an extremely simple yet powerful mechanism for users and clients
to access NETMARK."

:class:`NetmarkHttpApi` routes in-process requests:

* ``GET /search?Context=...&Content=...[&xslt=name][&databank=name]`` —
  run an XDB query; with ``xslt`` the result XML is transformed by a named
  stylesheet before returning (Fig 7); with ``databank`` the query fans
  out through the federation router instead of the local store; with
  ``Explain=1`` the response is the executed query plan annotated with
  per-operator row counts instead of the results.
* ``GET /doc/<id>`` — the reconstructed stored document.
* ``GET /docs`` — the document catalog as XML.
* ``GET /metrics`` — the process metrics in text exposition format
  (served even while startup recovery is running: observability must
  not go dark exactly when an operator needs it).
* ``PUT /dav/<path>`` / ``GET /dav/<path>`` / ``DELETE /dav/<path>`` /
  ``MKCOL /dav/<path>`` — pass-through to the WebDAV layer.

``Trace=1`` on ``/search`` traces the request through a per-request
:class:`~repro.obs.Tracer` and appends the span tree as a ``<trace>``
element to the response envelope (results and plans alike).

``Deadline=N`` bounds a search to ``N`` ticks of the API's clock; past
the deadline the request answers 504 ``<error code="deadline-exceeded">``
— or, with ``Partial=1``, 200 with a ``<partial><deadline-expired>``
envelope around the prefix computed in time.  When an
:class:`~repro.server.overload.AdmissionController` is attached and in
brownout, searches are degraded to their cheapest plan (forced result
limit, no XSLT) and stamped ``degraded="brownout"``.

Stylesheets are themselves WebDAV resources under ``/stylesheets`` —
NETMARK really is "nothing more than intelligent storage" plus this thin
routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    AllSourcesFailedError,
    CorruptLogError,
    FsckError,
    QueryCancelledError,
    QueryError,
    QuerySyntaxError,
    QueryTimeoutError,
    RecoveryError,
    ReproError,
    XsltError,
)
from repro import obs
from repro.obs import NULL_TRACER, Span, Tracer
from repro.query.ast import XdbQuery
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.query.language import format_query, parse_query
from repro.resilience.clock import LogicalClock
from repro.resilience.deadline import Budget, TickSource
from repro.server.overload import AdmissionController, degrade_query
from repro.server.webdav import WebDavServer
from repro.sgml.dom import Document, Element
from repro.sgml.serializer import serialize
from repro.store.xmlstore import XmlStore
from repro.xslt.processor import transform
from repro.xslt.stylesheet import compile_stylesheet

if TYPE_CHECKING:  # pragma: no cover
    from repro.federation.router import Router

STYLESHEET_FOLDER = "/stylesheets"

#: Seconds of back-off advertised on every 503 (``Retry-After``).  One
#: heartbeat-timeout's worth of logical time is how long recovery gates
#: and failovers usually take in this codebase's simulations.
RETRY_AFTER_SECONDS = 3

#: Fixed route vocabulary for the request counter — labels must stay
#: low-cardinality, so unknown paths collapse into ``other``.
_ROUTES = ("search", "docs", "doc", "dav", "databanks", "metrics", "cluster")


def _route_label(path: str) -> str:
    head = path.lstrip("/").split("/", 1)[0]
    return head if head in _ROUTES else "other"


def error_response(
    status: int,
    code: str,
    message: str,
    retry_after: int | None = None,
    attributes: dict[str, str] | None = None,
) -> HttpResponse:
    """A machine-readable XML error envelope.

    ``retry_after`` (seconds) emits the ``Retry-After`` header *and*
    mirrors it as an attribute on the envelope, so both header-aware
    clients and body-parsing scripts see the same advice.  Module-level
    because the worker pool builds shed/timeout envelopes for requests
    that never reach the API object.
    """
    attrs = {"code": code, "status": str(status)}
    if retry_after is not None:
        attrs["retry-after"] = str(retry_after)
    if attributes:
        attrs.update(attributes)
    root = Element("error", attrs)
    root.append_text(message)
    headers: tuple[tuple[str, str], ...] = ()
    if retry_after is not None:
        headers = (("Retry-After", str(retry_after)),)
    return HttpResponse(
        status, serialize(Document(root), indent=2), headers=headers
    )


def _trace_element(span: Span) -> Element:
    """Render one span tree as the ``<trace>`` envelope element."""
    element = Element("trace")
    element.append(_span_element(span))
    return element


def _span_element(span: Span) -> Element:
    attributes = {
        "name": span.name,
        "start": str(span.start_tick),
        "ticks": str(span.ticks),
    }
    for key in sorted(span.attrs):
        attributes[key] = str(span.attrs[key])
    element = Element("span", attributes)
    for child in span.children:
        element.append(_span_element(child))
    return element


@dataclass(frozen=True)
class HttpResponse:
    status: int
    body: str
    content_type: str = "text/xml"
    #: Response headers beyond Content-Type, as (name, value) pairs.
    #: Every 503 carries ``Retry-After`` — clients should back off, not
    #: hammer a recovering or coordinator-less node.
    headers: tuple[tuple[str, str], ...] = ()

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def header(self, name: str) -> str | None:
        """Case-insensitive header lookup (None when absent)."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None


class NetmarkHttpApi:
    """In-process HTTP facade over store, query engine, DAV and router."""

    def __init__(
        self,
        store: XmlStore,
        dav: WebDavServer,
        router: "Router | None" = None,
        clock: TickSource | None = None,
        admission: AdmissionController | None = None,
        cache: QueryCache | None = None,
    ) -> None:
        self.store = store
        self.dav = dav
        self.router = router
        #: With ``cache`` set, local searches are served through the
        #: generation-keyed result cache (byte-identical, ``Cache=0``
        #: opts a request out, hits are stamped ``cached="true"`` on the
        #: envelope).  The cache object is shared by every worker-pool
        #: thread; it locks internally.
        self.engine = QueryEngine(store, cache=cache)
        #: The clock ``Deadline=`` budgets and the latency histogram run
        #: on.  Defaults to an idle logical clock (deadlines never fire
        #: unless a test advances it); a real deployment passes
        #: ``wall_tick_source(time.monotonic)`` at its composition root.
        self.clock: TickSource = (
            clock if clock is not None else LogicalClock()
        )
        #: Shared with the worker pool; when set and in brownout,
        #: searches are degraded to their cheapest plan.
        self.admission = admission
        #: While True every request answers 503 with a structured
        #: ``<error code="recovering">`` body — set it around startup
        #: recovery (``XmlStore.open`` + ``NetmarkDaemon.startup_recovery``)
        #: so clients see "try again shortly", never a half-recovered store.
        # repro: guarded-by(gil) a bool flipped by the controlling thread;
        # workers re-read it per request, so a flip is seen at the next
        # dispatch at the latest.
        self.recovering = False
        #: Optional cluster membership view (duck-typed: ``role``,
        #: ``coordinator``, ``is_coordinator``, ``describe()``).  When
        #: set, writes are gated to the coordinator and ``GET /cluster``
        #: serves the membership table.
        self.cluster = None
        if not self.dav.vfs.is_dir(STYLESHEET_FOLDER):
            self.dav.vfs.mkdir(STYLESHEET_FOLDER, parents=True)

    # -- request routing ---------------------------------------------------

    def request(
        self,
        method: str,
        target: str,
        body: str = "",
        budget: Budget | None = None,
    ) -> HttpResponse:
        method = method.upper()
        path, _, query_string = target.partition("?")
        route = _route_label(path)
        started = self.clock.now()
        response = self._dispatch(method, path, query_string, body, budget)
        obs.observe(
            "repro_server_request_latency_ticks",
            self.clock.now() - started,
            route=route,
        )
        obs.inc(
            "repro_server_requests_total",
            route=route, status=str(response.status),
        )
        return response

    def _dispatch(
        self,
        method: str,
        path: str,
        query_string: str,
        body: str,
        budget: Budget | None = None,
    ) -> HttpResponse:
        if path == "/metrics" and method == "GET":
            # Served even while recovering: the one endpoint an operator
            # needs most during a rough startup.
            return HttpResponse(200, obs.render_text(), "text/plain")
        if self.recovering:
            return self._error(
                503, "recovering",
                "startup recovery is running; retry shortly",
                retry_after=RETRY_AFTER_SECONDS,
            )
        if path == "/cluster" and method == "GET":
            return self._cluster_view()
        try:
            if path.startswith("/dav/") or path == "/dav":
                if method != "GET":
                    gate = self._cluster_write_gate()
                    if gate is not None:
                        return gate
                return self._dav(method, path[len("/dav"):] or "/", body)
            if method != "GET":
                return HttpResponse(405, f"method {method} not allowed on {path}")
            if path == "/search":
                return self._search(query_string, budget)
            if path == "/docs":
                return self._catalog()
            if path == "/databanks":
                return self._databanks()
            if path.startswith("/doc/"):
                return self._document(path[len("/doc/"):])
            return HttpResponse(404, f"no route for {path}")
        except QuerySyntaxError as error:
            return HttpResponse(400, str(error))
        except QueryCancelledError as error:
            # The submitter walked away (or cancelled explicitly): 499 in
            # the nginx tradition.  Nobody reads the body, but a
            # structured one keeps logs greppable.  Must precede the
            # QueryError clause — it is a QueryError subclass.
            obs.inc(
                "repro_server_requests_cancelled_total", stage="executing"
            )
            return self._error(499, "cancelled", str(error))
        except QueryTimeoutError as error:
            # A hard deadline (no Partial=1) expired mid-execution.
            obs.inc(
                "repro_server_requests_timed_out_total", stage="executing"
            )
            return self._error(
                504, "deadline-exceeded", str(error),
                retry_after=RETRY_AFTER_SECONDS,
            )
        except (QueryError, XsltError) as error:
            return HttpResponse(422, str(error))
        except AllSourcesFailedError as error:
            # A federated query with *every* source down is a temporary
            # outage, not a server bug: 503, never 500.  Partial losses
            # never reach here — they return 200 with a <partial>
            # envelope (see ResultSet.to_xml).
            return self._error(
                503, "all-sources-failed", str(error),
                retry_after=RETRY_AFTER_SECONDS,
            )
        except CorruptLogError as error:
            # Durability-layer failures get structured bodies: a client
            # (or operator script) can dispatch on the machine-readable
            # code instead of parsing a free-text 500.
            return self._error(500, "corrupt-log", str(error))
        except RecoveryError as error:
            return self._error(500, "recovery-failed", str(error))
        except FsckError as error:
            return self._error(500, "store-inconsistent", str(error))
        except ReproError as error:
            return HttpResponse(500, str(error))

    def get(self, target: str) -> HttpResponse:
        """Convenience for the common ``GET`` case."""
        return self.request("GET", target)

    # -- handlers --------------------------------------------------------------

    def _search(
        self, query_string: str, budget: Budget | None = None
    ) -> HttpResponse:
        query = parse_query(query_string)
        budget = self._request_budget(query, budget)
        degraded = False
        if (
            self.admission is not None
            and self.admission.brownout_active
            and not query.explain
        ):
            # Brownout: answer from the cheapest plan.  Explain requests
            # are exempt — diagnosing the overload must show the real plan.
            query = degrade_query(query, self.admission.brownout_limit)
            degraded = True
            obs.inc("repro_server_brownout_requests_total")
        # A per-request tracer: Trace=1 is self-service, so one slow
        # request can be dissected without flipping any server state.
        tracer = Tracer() if query.trace else NULL_TRACER
        with tracer.span(
            "request", route="/search", query=format_query(query)
        ):
            outcome = self._run_search(query, tracer, budget)
        if isinstance(outcome, HttpResponse):
            return outcome
        if degraded:
            outcome.root.attributes["degraded"] = "brownout"
        for root_span in tracer.take_roots():
            outcome.root.append(_trace_element(root_span))
        return HttpResponse(200, serialize(outcome, indent=2))

    def _request_budget(
        self, query: XdbQuery, budget: Budget | None
    ) -> Budget | None:
        """Fold query-level ``Deadline=``/``Partial=1`` into the budget.

        The worker pool starts a request's budget at *enqueue* time; a
        query-supplied deadline can only tighten it (shrink-only
        composition), so queue wait always counts against the client's
        deadline.
        """
        if query.deadline_ticks is not None:
            if budget is None:
                budget = Budget()
            budget.tighten(self.clock, query.deadline_ticks)
        if budget is not None and query.partial_ok:
            budget.partial_ok = True
        return budget

    def _run_search(
        self, query: XdbQuery, tracer: Tracer, budget: Budget | None = None
    ) -> HttpResponse | Document:
        """Answer one search; a Document result still needs the envelope."""
        if query.explain:
            # Explain=1: run the plan and return the annotated operator
            # tree instead of results (stylesheets do not apply to plans).
            if query.databank:
                if self.router is None:
                    return HttpResponse(422, "no databanks configured")
                with tracer.span("explain", tier="federated"):
                    return self.router.explain(query)
            with self.store.snapshot() as snapshot:
                with tracer.span("explain", tier="local"):
                    return self.engine.explain(query, snapshot=snapshot)
        if query.databank:
            # Federated queries aggregate *remote* answers; the local
            # MVCC snapshot has no authority over other sources.
            if self.router is None:
                return HttpResponse(422, "no databanks configured")
            with tracer.span(
                "execute", tier="federated", databank=query.databank
            ) as span:
                results = self.router.execute(query, budget=budget)
                span.annotate(matches=len(results))
            with tracer.span("compose"):
                document = results.to_xml()
        else:
            # Pin one MVCC snapshot per request: plan execution AND the
            # lazy match materialization inside ``to_xml`` read the same
            # commit LSN, so a response is internally consistent even
            # while the daemon ingests concurrently.
            with self.store.snapshot() as snapshot:
                with tracer.span("execute", tier="local") as span:
                    results = self.engine.execute(
                        query, snapshot=snapshot, budget=budget
                    )
                    span.annotate(matches=len(results))
                with tracer.span("compose"):
                    document = results.to_xml()
        if results.cached:
            # Transport-level stamp only: ResultSet.to_xml never renders
            # the flag, so the body below this attribute stays
            # byte-identical to an uncached answer.
            document.root.attributes["cached"] = "true"
        if query.stylesheet:
            stylesheet_path = f"{STYLESHEET_FOLDER}/{query.stylesheet}"
            response = self.dav.get(stylesheet_path)
            if not response.ok:
                return HttpResponse(
                    404, f"stylesheet not found: {query.stylesheet}"
                )
            with tracer.span("xslt", stylesheet=query.stylesheet):
                document = transform(
                    compile_stylesheet(response.body), document
                )
        return document

    def _document(self, raw_id: str) -> HttpResponse:
        try:
            doc_id = int(raw_id)
        except ValueError:
            return HttpResponse(400, f"bad document id {raw_id!r}")
        from repro.errors import DocumentNotFoundError

        try:
            # Snapshot-pinned so a reconstruction racing the daemon never
            # interleaves nodes of two revisions (and shares no caches
            # with other worker threads).
            with self.store.snapshot() as snapshot:
                document = self.store.document(doc_id, snapshot=snapshot)
        except DocumentNotFoundError as error:
            return HttpResponse(404, str(error))
        return HttpResponse(200, serialize(document, indent=2))

    def _catalog(self) -> HttpResponse:
        from repro.sgml.dom import Document, Element

        root = Element("documents")
        with self.store.snapshot() as snapshot:
            entries = self.store.documents(snapshot=snapshot)
        for entry in entries:
            item = root.make_child(
                "document",
                id=str(entry.doc_id),
                name=entry.file_name,
                format=entry.format,
            )
            if entry.file_size is not None:
                item.attributes["size"] = str(entry.file_size)
        return HttpResponse(200, serialize(Document(root), indent=2))

    def _databanks(self) -> HttpResponse:
        from repro.sgml.dom import Document, Element

        root = Element("databanks")
        if self.router is not None:
            for name in self.router.registry.names():
                databank = self.router.registry.get(name)
                item = root.make_child("databank", name=name)
                if databank.description:
                    item.attributes["description"] = databank.description
                for source_name in databank.source_names():
                    item.make_child("source", name=source_name)
        return HttpResponse(200, serialize(Document(root), indent=2))

    def _cluster_write_gate(self) -> HttpResponse | None:
        """Refuse writes on a node that is not the cluster coordinator.

        Followers answer reads; writes must land on the one node holding
        the WAL-attached store.  With a known coordinator the client is
        told exactly where to go (``coordinator`` attribute, 503 +
        Retry-After rather than a silent 500); with no coordinator the
        cluster is mid-failover and the client should simply wait.
        """
        view = self.cluster
        if view is None or view.is_coordinator:
            return None
        coordinator = view.coordinator
        if coordinator is None:
            return self._error(
                503, "no-coordinator",
                "cluster has no coordinator (election in progress); "
                "retry shortly",
                retry_after=RETRY_AFTER_SECONDS,
            )
        return self._error(
            503, "not-coordinator",
            f"this node is a {view.role}; write to {coordinator}",
            retry_after=RETRY_AFTER_SECONDS,
            attributes={"coordinator": coordinator},
        )

    def _cluster_view(self) -> HttpResponse:
        from repro.sgml.dom import Document, Element

        root = Element("cluster")
        view = self.cluster
        if view is None:
            root.attributes["enabled"] = "false"
            return HttpResponse(200, serialize(Document(root), indent=2))
        root.attributes["enabled"] = "true"
        root.attributes["self"] = getattr(view, "name", "")
        if view.coordinator is not None:
            root.attributes["coordinator"] = view.coordinator
        for row in view.describe():
            root.append(Element("node", dict(row)))
        return HttpResponse(200, serialize(Document(root), indent=2))

    def _dav(self, method: str, dav_path: str, body: str) -> HttpResponse:
        if method == "PUT":
            response = self.dav.put(dav_path, body)
        elif method == "GET":
            response = self.dav.get(dav_path)
        elif method == "DELETE":
            response = self.dav.delete(dav_path)
        elif method == "MKCOL":
            response = self.dav.mkcol(dav_path)
        else:
            return HttpResponse(405, f"method {method} not allowed on /dav")
        return HttpResponse(response.status, response.body, "text/plain")

    # -- structured errors ---------------------------------------------------------

    #: The envelope builder, shared with the worker pool (which must
    #: answer shed/expired requests without an API object in hand).
    _error = staticmethod(error_response)

    # -- stylesheet management ----------------------------------------------------

    def install_stylesheet(self, name: str, xml: str) -> None:
        """Store (and pre-validate) a named composition stylesheet."""
        compile_stylesheet(xml)  # raises XsltError on a bad sheet
        self.dav.put(f"{STYLESHEET_FOLDER}/{name}", xml)
