"""An in-process virtual filesystem.

The paper's users "insert new documents ... by simply dragging the
documents into a (NETMARK) desktop folder"; folders live on a WebDAV
server.  This virtual filesystem is that server's storage: a tree of
directories and text files with modification stamps, shared by the WebDAV
layer (client-facing verbs) and the daemon (folder watching).

Paths are POSIX-style (``/incoming/report.ndoc``), always absolute, and
normalised; the root directory always exists.
"""

from __future__ import annotations

import datetime as _dt
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import WebDavError

#: Fixed epoch for deterministic logical timestamps.
_EPOCH = _dt.datetime(2005, 6, 14, 0, 0, 0)  # SIGMOD'05, day one


def normalize_path(path: str) -> str:
    """Normalise to ``/a/b`` form; raises on escapes above the root."""
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if not parts:
                raise WebDavError(400, f"path escapes root: {path!r}")
            parts.pop()
        else:
            parts.append(part)
    return "/" + "/".join(parts)


def parent_path(path: str) -> str:
    path = normalize_path(path)
    if path == "/":
        return "/"
    return normalize_path(path.rsplit("/", 1)[0] or "/")


def base_name(path: str) -> str:
    return normalize_path(path).rsplit("/", 1)[-1]


@dataclass
class FileEntry:
    """A stored file: text content plus DAV-visible properties."""

    content: str
    modified: _dt.datetime
    properties: dict[str, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.content)


class VirtualFileSystem:
    """Tree of directories and text files with a logical clock."""

    def __init__(self) -> None:
        self._directories: set[str] = {"/"}
        self._files: dict[str, FileEntry] = {}
        self._ticks = itertools.count()

    def _now(self) -> _dt.datetime:
        return _EPOCH + _dt.timedelta(seconds=next(self._ticks))

    # -- directories --------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> str:
        path = normalize_path(path)
        if path in self._directories:
            raise WebDavError(405, f"directory exists: {path}")
        if path in self._files:
            raise WebDavError(409, f"a file exists at {path}")
        parent = parent_path(path)
        if parent not in self._directories:
            if not parents:
                raise WebDavError(409, f"missing parent directory: {parent}")
            self.mkdir(parent, parents=True)
        self._directories.add(path)
        return path

    def is_dir(self, path: str) -> bool:
        return normalize_path(path) in self._directories

    def is_file(self, path: str) -> bool:
        return normalize_path(path) in self._files

    def exists(self, path: str) -> bool:
        return self.is_dir(path) or self.is_file(path)

    # -- files ------------------------------------------------------------------

    def write(self, path: str, content: str) -> FileEntry:
        """Create or overwrite a file; parent directory must exist."""
        path = normalize_path(path)
        if path in self._directories:
            raise WebDavError(409, f"a directory exists at {path}")
        parent = parent_path(path)
        if parent not in self._directories:
            raise WebDavError(409, f"missing parent directory: {parent}")
        existing = self._files.get(path)
        properties = existing.properties if existing else {}
        entry = FileEntry(content, self._now(), properties)
        self._files[path] = entry
        return entry

    def read(self, path: str) -> str:
        return self._entry(path).content

    def entry(self, path: str) -> FileEntry:
        return self._entry(path)

    def delete(self, path: str) -> None:
        """Delete a file or (recursively) a directory."""
        path = normalize_path(path)
        if path == "/":
            raise WebDavError(403, "cannot delete the root")
        if path in self._files:
            del self._files[path]
            return
        if path in self._directories:
            prefix = path + "/"
            for file_path in [p for p in self._files if p.startswith(prefix)]:
                del self._files[file_path]
            for dir_path in [
                d for d in self._directories if d == path or d.startswith(prefix)
            ]:
                self._directories.discard(dir_path)
            return
        raise WebDavError(404, f"not found: {path}")

    def move(self, source: str, destination: str) -> None:
        """Move/rename a file or directory subtree."""
        source = normalize_path(source)
        destination = normalize_path(destination)
        if not self.exists(source):
            raise WebDavError(404, f"not found: {source}")
        if self.exists(destination):
            raise WebDavError(412, f"destination exists: {destination}")
        if parent_path(destination) not in self._directories:
            raise WebDavError(409, "missing parent of destination")
        if source in self._files:
            self._files[destination] = self._files.pop(source)
            return
        prefix = source + "/"
        self._directories.discard(source)
        self._directories.add(destination)
        for dir_path in [d for d in list(self._directories) if d.startswith(prefix)]:
            self._directories.discard(dir_path)
            self._directories.add(destination + dir_path[len(source):])
        for file_path in [p for p in list(self._files) if p.startswith(prefix)]:
            self._files[destination + file_path[len(source):]] = self._files.pop(
                file_path
            )

    def copy(self, source: str, destination: str) -> None:
        """Copy a file (directories copy shallowly per entry)."""
        source = normalize_path(source)
        destination = normalize_path(destination)
        if source in self._files:
            entry = self._files[source]
            if parent_path(destination) not in self._directories:
                raise WebDavError(409, "missing parent of destination")
            if destination in self._directories:
                raise WebDavError(409, f"a directory exists at {destination}")
            self._files[destination] = FileEntry(
                entry.content, self._now(), dict(entry.properties)
            )
            return
        if source in self._directories:
            self.mkdir(destination, parents=True)
            prefix = source + "/"
            for file_path, entry in list(self._files.items()):
                if file_path.startswith(prefix):
                    target = destination + file_path[len(source):]
                    if not self.is_dir(parent_path(target)):
                        self.mkdir(parent_path(target), parents=True)
                    self._files[target] = FileEntry(
                        entry.content, self._now(), dict(entry.properties)
                    )
            return
        raise WebDavError(404, f"not found: {source}")

    # -- listing ------------------------------------------------------------------

    def listdir(self, path: str) -> list[str]:
        """Immediate children (names, directories suffixed '/')."""
        path = normalize_path(path)
        if path not in self._directories:
            raise WebDavError(404, f"not a directory: {path}")
        prefix = path if path.endswith("/") else path + "/"
        names: list[str] = []
        for dir_path in self._directories:
            if dir_path != path and dir_path.startswith(prefix):
                rest = dir_path[len(prefix):]
                if "/" not in rest:
                    names.append(rest + "/")
        for file_path in self._files:
            if file_path.startswith(prefix):
                rest = file_path[len(prefix):]
                if "/" not in rest:
                    names.append(rest)
        return sorted(names)

    def walk_files(self, path: str = "/") -> Iterator[str]:
        """Every file path under ``path``, recursively.

        Ordering is part of the contract: paths come back in sorted
        (lexicographic) order regardless of creation, move or overwrite
        history.  The daemon's ingest order — and therefore DOC_ID
        assignment, WAL contents and crash-recovery replay — all derive
        from this ordering, so it must be deterministic.
        """
        path = normalize_path(path)
        prefix = path if path.endswith("/") else path + "/"
        for file_path in sorted(self._files):
            if path == "/" or file_path.startswith(prefix):
                yield file_path

    def file_count(self) -> int:
        return len(self._files)

    # -- internals --------------------------------------------------------------------

    def _entry(self, path: str) -> FileEntry:
        path = normalize_path(path)
        try:
            return self._files[path]
        except KeyError:
            raise WebDavError(404, f"not found: {path}") from None
