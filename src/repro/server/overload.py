"""Admission control and brownout degradation for the serving front end.

"Lean middleware" is an economics claim: the stack must stay cheap and
predictable when offered load exceeds capacity.  Two mechanisms keep it
so, both owned by :class:`AdmissionController`:

**Load shedding.**  The :class:`~repro.server.workers.WorkerPool` queue
is bounded; a request arriving at a full queue is refused *immediately*
with 503 + ``Retry-After`` instead of being buried in an ever-growing
backlog.  Shedding at the front door is what keeps goodput flat past
saturation — every admitted request still completes within its deadline
instead of all requests timing out together.

**Brownout.**  Sustained shedding flips the server into a degraded mode
where every search is answered from its cheapest plan: a forced result
limit (limit pushdown makes a small limit genuinely cheap) and no XSLT
composition.  Entry/exit use hysteresis on an integer *pressure* signal
— each shed pumps pressure up, each accepted request bleeds it off — so
the server neither browns out on one burst nor flaps at the boundary.

The controller is shared by every submitter thread; its counters are the
"shared shed state" the dataflow guarded-by check watches.
"""

from __future__ import annotations

import threading
from dataclasses import replace

from repro import obs
from repro.errors import ServerError
from repro.query.ast import XdbQuery

__all__ = ["AdmissionController", "degrade_query"]


def degrade_query(query: XdbQuery, brownout_limit: int) -> XdbQuery:
    """The brownout rewrite: cheapest plan for the same question.

    Forces ``limit`` down to ``brownout_limit`` (never up — a tighter
    client limit survives) and drops the stylesheet, so the answer is a
    small, composition-free result the plan's limit pushdown computes
    almost for free.
    """
    limit = query.limit
    if limit is None or limit > brownout_limit:
        limit = brownout_limit
    return replace(query, limit=limit, stylesheet=None)


class AdmissionController:
    """Bounded-queue shed accounting plus brownout hysteresis.

    ``queue_limit`` bounds the worker-pool queue (the pool reads it at
    construction).  Pressure mechanics: a shed adds ``shed_cost``, an
    accepted request subtracts one, and the value is clamped to
    ``[0, enter_pressure + shed_cost]``.  Brownout begins when pressure
    reaches ``enter_pressure`` and ends only when it falls back to
    ``exit_pressure`` — the gap between the two is the hysteresis band.
    """

    def __init__(
        self,
        queue_limit: int = 64,
        enter_pressure: int = 8,
        exit_pressure: int = 0,
        shed_cost: int = 4,
        brownout_limit: int = 5,
    ) -> None:
        if queue_limit < 1:
            raise ServerError("admission control needs queue_limit >= 1")
        if not 0 <= exit_pressure < enter_pressure:
            raise ServerError(
                "brownout hysteresis needs 0 <= exit_pressure < "
                f"enter_pressure, got {exit_pressure}/{enter_pressure}"
            )
        if shed_cost < 1 or brownout_limit < 1:
            raise ServerError(
                "shed_cost and brownout_limit must be positive"
            )
        self.queue_limit = queue_limit
        self.enter_pressure = enter_pressure
        self.exit_pressure = exit_pressure
        self.shed_cost = shed_cost
        self.brownout_limit = brownout_limit
        self._pressure_cap = enter_pressure + shed_cost
        self._lock = threading.Lock()
        # repro: guarded-by(_lock) pressure and the brownout flag are
        # read-modify-written by every submitter thread at once.
        self._pressure = 0
        # repro: guarded-by(_lock) flips only inside the pressure update.
        self._brownout = False
        # repro: guarded-by(_lock) shed/transition tallies, bumped under
        # the same critical section that decided them.
        self.sheds = 0
        # repro: guarded-by(_lock) see ``sheds``.
        self.brownout_entries = 0
        # repro: guarded-by(_lock) see ``sheds``.
        self.brownout_exits = 0

    # -- signals from the worker pool ---------------------------------------

    def on_shed(self) -> None:
        """One request was refused at a full queue."""
        with self._lock:
            self.sheds += 1
            self._pressure = min(
                self._pressure_cap, self._pressure + self.shed_cost
            )
            entered = (
                not self._brownout
                and self._pressure >= self.enter_pressure
            )
            if entered:
                self._brownout = True
                self.brownout_entries += 1
        # Metric publication happens outside the lock: the registry has
        # its own lock and nothing here depends on atomicity with the
        # pressure update.
        obs.inc("repro_server_requests_shed_total")
        if entered:
            obs.inc(
                "repro_server_brownout_transitions_total", direction="enter"
            )
            obs.set_gauge("repro_server_brownout", 1)

    def on_accept(self) -> None:
        """One request was admitted to the queue."""
        with self._lock:
            if self._pressure > 0:
                self._pressure -= 1
            exited = (
                self._brownout and self._pressure <= self.exit_pressure
            )
            if exited:
                self._brownout = False
                self.brownout_exits += 1
        if exited:
            obs.inc(
                "repro_server_brownout_transitions_total", direction="exit"
            )
            obs.set_gauge("repro_server_brownout", 0)

    # -- state queries ------------------------------------------------------

    @property
    def brownout_active(self) -> bool:
        with self._lock:
            return self._brownout

    @property
    def pressure(self) -> int:
        with self._lock:
            return self._pressure
