"""The NETMARK daemon: folder watching and ingestion.

"The 'NETMARK DAEMON' periodically picks up these documents, passes them
onto the 'SGML Parser', which converts the documents into XML.  The XML
documents are then stored in the 'NETMARK XML Store' in a schema-less
manner."

:class:`NetmarkDaemon` watches one drop folder on the virtual filesystem.
Each :meth:`poll` is one daemon wake-up: it finds files that are new or
modified since their last successful ingestion, runs them through the
converter registry and the store, and records an :class:`IngestRecord`
per attempt.  Failures are quarantined (the record carries the error; the
file moves to the ``errors/`` subfolder so the next poll does not retry a
poison document forever), successes move to ``processed/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.server.vfs import VirtualFileSystem, base_name, normalize_path
from repro.store.xmlstore import XmlStore


@dataclass(frozen=True)
class IngestRecord:
    """Outcome of one ingestion attempt."""

    path: str
    status: str  # "stored" | "failed"
    doc_id: int | None = None
    node_count: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "stored"


@dataclass
class NetmarkDaemon:
    """Watches ``drop_folder`` and loads documents into ``store``."""

    store: XmlStore
    vfs: VirtualFileSystem
    drop_folder: str = "/incoming"
    keep_originals: bool = True
    #: When True (default), re-dropping a file whose name is already in
    #: the store supersedes the stored document (new revision) instead of
    #: adding a duplicate — the WebDAV collaborative-editing behaviour.
    replace_existing: bool = True
    history: list[IngestRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.drop_folder = normalize_path(self.drop_folder)
        for folder in (self.drop_folder, self.processed_folder, self.error_folder):
            if not self.vfs.is_dir(folder):
                self.vfs.mkdir(folder, parents=True)

    @property
    def processed_folder(self) -> str:
        return self.drop_folder + "/processed"

    @property
    def error_folder(self) -> str:
        return self.drop_folder + "/errors"

    # -- the daemon loop body ---------------------------------------------------

    def pending_files(self) -> list[str]:
        """Files sitting directly in the drop folder, oldest-name first."""
        prefix = self.drop_folder + "/"
        return [
            path
            for path in self.vfs.walk_files(self.drop_folder)
            if "/" not in path[len(prefix):]  # not in processed/ or errors/
        ]

    def poll(self) -> list[IngestRecord]:
        """One wake-up: ingest everything pending; returns the records."""
        records: list[IngestRecord] = []
        for path in self.pending_files():
            records.append(self._ingest(path))
        self.history.extend(records)
        return records

    def run_until_idle(self, max_polls: int = 100) -> int:
        """Poll until the drop folder is empty; returns ingested count."""
        total = 0
        for _ in range(max_polls):
            records = self.poll()
            if not records:
                break
            total += sum(1 for record in records if record.ok)
        return total

    # -- internals ------------------------------------------------------------------

    def _ingest(self, path: str) -> IngestRecord:
        name = base_name(path)
        content = self.vfs.read(path)
        modified = self.vfs.entry(path).modified
        try:
            if self.replace_existing:
                result = self.store.replace_text(
                    text=content, name=name, file_date=modified
                )
            else:
                result = self.store.store_text(
                    text=content, name=name, file_date=modified
                )
        except ReproError as error:
            self._move(path, self.error_folder)
            return IngestRecord(path=path, status="failed", error=str(error))
        if self.keep_originals:
            self._move(path, self.processed_folder)
        else:
            self.vfs.delete(path)
        return IngestRecord(
            path=path,
            status="stored",
            doc_id=result.doc_id,
            node_count=result.node_count,
        )

    def _move(self, path: str, folder: str) -> None:
        name = base_name(path)
        target = folder + "/" + name
        if self.vfs.exists(target):
            # Disambiguate repeats with the logical timestamp; the stamp
            # alone can collide (same name, same %H%M%S second — or a day
            # apart on the logical clock), so fall back to a counter.
            stamp = self.vfs.entry(path).modified.strftime("%H%M%S")
            target = f"{folder}/{stamp}-{name}"
            counter = 1
            while self.vfs.exists(target):
                target = f"{folder}/{stamp}-{counter}-{name}"
                counter += 1
        self.vfs.move(path, target)

    # -- reporting --------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        stored = sum(1 for record in self.history if record.ok)
        failed = len(self.history) - stored
        return {
            "stored": stored,
            "failed": failed,
            "nodes": sum(record.node_count for record in self.history),
        }
