"""The NETMARK daemon: folder watching and ingestion.

"The 'NETMARK DAEMON' periodically picks up these documents, passes them
onto the 'SGML Parser', which converts the documents into XML.  The XML
documents are then stored in the 'NETMARK XML Store' in a schema-less
manner."

:class:`NetmarkDaemon` watches one drop folder on the virtual filesystem.
Each :meth:`poll` is one daemon wake-up: it finds files that are new or
modified since their last successful ingestion, runs them through the
converter registry and the store, and records an :class:`IngestRecord`
per attempt.  Failures are quarantined (the record carries the error; the
file moves to the ``errors/`` subfolder so the next poll does not retry a
poison document forever), successes move to ``processed/``.

Resilience: with a :class:`~repro.resilience.retry.RetryPolicy` the
daemon retries transient failures (deterministic backoff on its
:class:`~repro.resilience.clock.LogicalClock`) *before* quarantining,
and it remembers quarantined revisions by content — if a fault re-drops
a poison file, or the quarantine move itself fails and the file is left
behind, the next poll skips that exact revision instead of looping.

Durability: every ingest is journalled to ``<drop>/.journal/inflight``
before the store is touched and cleared once the outcome (success *or*
handled failure) has been recorded.  After a crash,
:meth:`NetmarkDaemon.startup_recovery` reads the journal and settles the
interrupted ingest: if its transaction committed before the crash the
file is moved on to ``processed/`` (the bookkeeping the crash cut off);
if it did not, the file is quarantined to ``errors/`` rather than
retried blindly — a document that was mid-ingest when the process died
is a prime poison suspect.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ReproError
from repro.obs import NULL_TRACER, Tracer
from repro.resilience.clock import LogicalClock
from repro.resilience.retry import RetryPolicy, RetryStats, call_with_retry
from repro.server.vfs import VirtualFileSystem, base_name, normalize_path
from repro.store.xmlstore import XmlStore


def _digest(content: str) -> str:
    """Stable fingerprint of one file revision."""
    return hashlib.sha1(content.encode("utf-8", "replace")).hexdigest()


@dataclass(frozen=True)
class IngestRecord:
    """Outcome of one ingestion attempt."""

    path: str
    status: str  # "stored" | "failed"
    doc_id: int | None = None
    node_count: int = 0
    error: str = ""
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "stored"


@dataclass
class NetmarkDaemon:
    """Watches ``drop_folder`` and loads documents into ``store``."""

    store: XmlStore
    vfs: VirtualFileSystem
    drop_folder: str = "/incoming"
    keep_originals: bool = True
    #: When True (default), re-dropping a file whose name is already in
    #: the store supersedes the stored document (new revision) instead of
    #: adding a duplicate — the WebDAV collaborative-editing behaviour.
    replace_existing: bool = True
    # repro: guarded-by(gil) appended only by the ingest thread (the MVCC
    # single writer); other threads read via IngestThread.records() and
    # may observe a slightly stale prefix, never a torn record.
    history: list[IngestRecord] = field(default_factory=list)
    #: Retry transient failures this many times before quarantining
    #: (None: a single attempt, the pre-resilience behaviour).
    retry: RetryPolicy | None = None
    clock: LogicalClock = field(default_factory=LogicalClock)
    retry_seed: int = 0
    #: Span sink for the ingest pipeline; the no-op default costs one
    #: attribute check per stage.  Composition roots (``Netmark``) swap
    #: in a real :class:`~repro.obs.Tracer` to see poll/ingest stage
    #: trees.
    tracer: Tracer = NULL_TRACER
    #: Set by :meth:`run_until_idle` when ``max_polls`` ran out with work
    #: still pending — the budget was hit, not the folder drained.
    budget_exhausted: bool = False

    def __post_init__(self) -> None:
        self.drop_folder = normalize_path(self.drop_folder)
        self._retry_rng = random.Random(self.retry_seed)
        #: ``(name, digest)`` of revisions that must not be re-ingested:
        #: quarantined poison and files stuck in place by a failed move.
        #: ``digest=None`` wildcards every revision of that name (used
        #: when the content itself is unreadable).
        self._skip_revisions: set[tuple[str, str | None]] = set()
        folders = (
            self.drop_folder,
            self.processed_folder,
            self.error_folder,
            self.journal_folder,
        )
        for folder in folders:
            if not self.vfs.is_dir(folder):
                self.vfs.mkdir(folder, parents=True)

    @property
    def processed_folder(self) -> str:
        return self.drop_folder + "/processed"

    @property
    def error_folder(self) -> str:
        return self.drop_folder + "/errors"

    @property
    def journal_folder(self) -> str:
        return self.drop_folder + "/.journal"

    @property
    def journal_path(self) -> str:
        """The in-flight ingest journal (a subfolder, so polls skip it)."""
        return self.journal_folder + "/inflight"

    # -- the daemon loop body ---------------------------------------------------

    def pending_files(self) -> list[str]:
        """Files sitting directly in the drop folder, oldest-name first."""
        prefix = self.drop_folder + "/"
        return [
            path
            for path in self.vfs.walk_files(self.drop_folder)
            if "/" not in path[len(prefix):]  # not in processed/ or errors/
            and not self._is_skipped(path)
        ]

    def poll(self) -> list[IngestRecord]:
        """One wake-up: ingest everything pending; returns the records."""
        records: list[IngestRecord] = []
        pending = self.pending_files()
        with self.tracer.span("daemon.poll", pending=len(pending)):
            for path in pending:
                records.append(self._ingest(path))
        self.history.extend(records)
        return records

    def run_until_idle(self, max_polls: int = 100) -> int:
        """Poll until the drop folder is empty; returns ingested count.

        If ``max_polls`` wake-ups were not enough to drain the folder,
        :attr:`budget_exhausted` is set so callers can tell "done" from
        "gave up" — previously the budget ran out silently.
        """
        self.budget_exhausted = False
        total = 0
        for _ in range(max_polls):
            records = self.poll()
            if not records:
                return total
            total += sum(1 for record in records if record.ok)
        self.budget_exhausted = bool(self.pending_files())
        return total

    # -- crash recovery -----------------------------------------------------------

    def startup_recovery(self) -> list[IngestRecord]:
        """Settle any ingest the journal says was in flight at a crash.

        Call once after reopening the store (``XmlStore.open``) and before
        the first :meth:`poll`.  For each journalled entry: if the store
        already holds the journalled revision, the ingest's transaction
        committed before the crash and only the file bookkeeping is
        missing — the original is moved to ``processed/`` and a ``stored``
        record is emitted.  Otherwise the transaction was discarded by
        recovery; the file is quarantined to ``errors/`` (``failed``
        record) instead of being retried, since a document that took the
        process down once should not get a second unsupervised try.
        """
        records: list[IngestRecord] = []
        if not self.vfs.is_file(self.journal_path):
            return records
        for line in self.vfs.read(self.journal_path).splitlines():
            if not line.strip():
                continue
            path, _, rest = line.partition("\t")
            _digest_text, _, marker_text = rest.partition("\t")
            try:
                marker = int(marker_text)
            except ValueError:
                marker = 1
            record = self._settle_journalled(path, marker)
            obs.inc(
                "repro_server_startup_settled_total", status=record.status
            )
            records.append(record)
        self._journal_clear()
        self.history.extend(records)
        return records

    def _settle_journalled(self, path: str, marker: int) -> IngestRecord:
        name = base_name(path)
        if self._journalled_committed(name, marker):
            if self.vfs.is_file(path):
                if self.keep_originals:
                    self._move(path, self.processed_folder)
                else:
                    try:
                        self.vfs.delete(path)
                    except ReproError:
                        self._remember_skip(path)
            entry = self.store.lookup_by_name(name)
            doc_id = entry.doc_id if entry is not None else None
            node_count = (
                len(self.store.xml_table.lookup("DOC_ID", doc_id))
                if doc_id is not None
                else 0
            )
            return IngestRecord(
                path=path, status="stored", doc_id=doc_id, node_count=node_count
            )
        if self.vfs.is_file(path):
            self._remember_skip(path)
            self._move(path, self.error_folder)
        return IngestRecord(
            path=path,
            status="failed",
            error="interrupted by a crash; quarantined on restart",
        )

    def _journal_begin(self, path: str, content: str) -> None:
        """Record the ingest about to run, durably, before the store sees it."""
        name = base_name(path)
        line = f"{path}\t{_digest(content)}\t{self._journal_marker(name)}\n"
        self.vfs.write(self.journal_path, line)

    def _journal_clear(self) -> None:
        try:
            self.vfs.write(self.journal_path, "")
        except ReproError:
            pass  # a stale journal is settled (idempotently) on next startup

    def _journal_marker(self, name: str) -> int:
        """The evidence an ingest of ``name`` will leave if it commits.

        Replace mode: the revision number the new document will carry.
        Append mode: the number of stored documents with that file name
        once the new one lands.  Either is checkable after recovery
        without trusting any in-memory state.
        """
        if self.replace_existing:
            existing = self.store.lookup_by_name(name)
            if existing is None:
                return 1
            try:
                return int(existing.metadata.get("revision", "1")) + 1
            except ValueError:
                return 2
        return 1 + sum(
            1 for entry in self.store.documents() if entry.file_name == name
        )

    def _journalled_committed(self, name: str, marker: int) -> bool:
        """Did the journalled ingest's transaction survive recovery?"""
        if self.replace_existing:
            existing = self.store.lookup_by_name(name)
            if existing is None:
                return False
            try:
                revision = int(existing.metadata.get("revision", "1"))
            except ValueError:
                revision = 1
            return revision >= marker
        count = sum(
            1 for entry in self.store.documents() if entry.file_name == name
        )
        return count >= marker

    # -- internals ------------------------------------------------------------------

    def _ingest(self, path: str) -> IngestRecord:
        with self.tracer.span("daemon.ingest", path=path) as span:
            record = self._ingest_once(path)
            span.annotate(status=record.status, attempts=record.attempts)
        obs.inc("repro_server_ingest_total", status=record.status)
        if record.node_count:
            obs.inc("repro_server_ingest_nodes_total", record.node_count)
        return record

    def _ingest_once(self, path: str) -> IngestRecord:
        name = base_name(path)
        stats = RetryStats()
        try:
            with self.tracer.span("daemon.read"):
                content = self.vfs.read(path)
                modified = self.vfs.entry(path).modified
            with self.tracer.span("daemon.journal"):
                self._journal_begin(path, content)

            def store_once():
                if self.replace_existing:
                    return self.store.replace_text(
                        text=content, name=name, file_date=modified
                    )
                return self.store.store_text(
                    text=content, name=name, file_date=modified
                )

            with self.tracer.span("daemon.store", name=name):
                if self.retry is not None:
                    result = call_with_retry(
                        store_once, self.retry, self.clock,
                        self._retry_rng, stats,
                    )
                else:
                    result = store_once()
        except ReproError as error:
            # The failure was *observed* — quarantining records it, so the
            # journal entry has served its purpose.  (A crash never reaches
            # this handler: CrashError is a BaseException by design.)
            with self.tracer.span("daemon.quarantine"):
                self._journal_clear()
                self._remember_skip(path)
                self._move(path, self.error_folder)
            return IngestRecord(
                path=path,
                status="failed",
                error=str(error),
                attempts=max(stats.attempts, 1),
            )
        with self.tracer.span("daemon.finalize"):
            if self.keep_originals:
                self._move(path, self.processed_folder)
            else:
                try:
                    self.vfs.delete(path)
                except ReproError:
                    self._remember_skip(path)
            self._journal_clear()
        return IngestRecord(
            path=path,
            status="stored",
            doc_id=result.doc_id,
            node_count=result.node_count,
            attempts=max(stats.attempts, 1),
        )

    def _move(self, path: str, folder: str) -> None:
        name = base_name(path)
        target = folder + "/" + name
        try:
            if self.vfs.exists(target):
                # Disambiguate repeats with the logical timestamp; the stamp
                # alone can collide (same name, same %H%M%S second — or a day
                # apart on the logical clock), so fall back to a counter.
                stamp = self.vfs.entry(path).modified.strftime("%H%M%S")
                target = f"{folder}/{stamp}-{name}"
                counter = 1
                while self.vfs.exists(target):
                    target = f"{folder}/{stamp}-{counter}-{name}"
                    counter += 1
            self.vfs.move(path, target)
        except ReproError:
            # The move itself failed (e.g. an injected filesystem fault):
            # the file stays where it is, but its revision is remembered
            # so the next poll does not pick it up again.
            self._remember_skip(path)

    def _remember_skip(self, path: str) -> None:
        name = base_name(path)
        try:
            self._skip_revisions.add((name, _digest(self.vfs.read(path))))
        except ReproError:
            # Content unreadable: skip every revision of this name rather
            # than loop on a file we cannot even fingerprint.
            self._skip_revisions.add((name, None))

    def _is_skipped(self, path: str) -> bool:
        name = base_name(path)
        if (name, None) in self._skip_revisions:
            return True
        try:
            digest = _digest(self.vfs.read(path))
        except ReproError:
            return False  # let _ingest observe (and record) the failure
        return (name, digest) in self._skip_revisions

    # -- reporting --------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        stored = sum(1 for record in self.history if record.ok)
        failed = len(self.history) - stored
        return {
            "stored": stored,
            "failed": failed,
            "nodes": sum(record.node_count for record in self.history),
        }
