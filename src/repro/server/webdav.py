"""WebDAV verbs over the virtual filesystem.

"Communication between the user folders and the NETMARK server is done
using WebDAV [12], which is a set of extensions to the HTTP protocol which
allows users to collaboratively edit and manage files on remote web
servers."

The server implements the RFC 2518 verb set this workflow exercises —
``PUT``, ``GET``, ``DELETE``, ``MKCOL``, ``COPY``, ``MOVE``, ``PROPFIND``
(depth 0/1), ``PROPPATCH``, and class-2 ``LOCK``/``UNLOCK`` (exclusive
write locks, so two knowledge workers editing the same dropped document
do not clobber each other) — with HTTP status semantics.  Transport is
in-process: a request is a method call, a response a dataclass.  The
*dragging a document into a desktop folder* gesture is therefore
``dav.put("/incoming/report.ndoc", text)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import WebDavError
from repro.server.vfs import VirtualFileSystem, base_name, normalize_path


@dataclass(frozen=True)
class DavResponse:
    """HTTP-style response: status code plus optional body/properties."""

    status: int
    body: str = ""
    properties: tuple["ResourceProps", ...] = field(default=())

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass(frozen=True)
class ResourceProps:
    """PROPFIND result for one resource."""

    href: str
    is_collection: bool
    size: int = 0
    modified: str = ""
    custom: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class LockInfo:
    """An exclusive write lock on one resource."""

    token: str
    owner: str


class WebDavServer:
    """In-process WebDAV endpoint over one virtual filesystem."""

    def __init__(self, vfs: VirtualFileSystem | None = None) -> None:
        self.vfs = vfs or VirtualFileSystem()
        self._locks: dict[str, LockInfo] = {}
        self._token_counter = itertools.count(1)

    # -- locking (RFC 2518 class 2, exclusive write locks) --------------------

    def lock(self, path: str, owner: str = "") -> DavResponse:
        """Take an exclusive write lock; body carries the lock token."""
        path = normalize_path(path)
        if not self.vfs.is_file(path):
            return DavResponse(404, f"not found: {path}")
        if path in self._locks:
            return DavResponse(423, f"already locked: {path}")
        token = f"opaquelocktoken:{next(self._token_counter):08d}"
        self._locks[path] = LockInfo(token, owner)
        return DavResponse(200, token)

    def unlock(self, path: str, token: str) -> DavResponse:
        path = normalize_path(path)
        lock = self._locks.get(path)
        if lock is None:
            return DavResponse(409, f"not locked: {path}")
        if lock.token != token:
            return DavResponse(403, "lock token mismatch")
        del self._locks[path]
        return DavResponse(204)

    def lock_info(self, path: str) -> LockInfo | None:
        return self._locks.get(normalize_path(path))

    def _write_allowed(self, path: str, token: str | None) -> DavResponse | None:
        """None when the write may proceed, else the 423 response."""
        lock = self._locks.get(normalize_path(path))
        if lock is None or lock.token == token:
            return None
        return DavResponse(423, f"locked by {lock.owner or 'another client'}")

    # -- verbs ---------------------------------------------------------------

    def put(
        self, path: str, content: str, lock_token: str | None = None
    ) -> DavResponse:
        """Create or replace a file; 201 on create, 204 on overwrite."""
        denied = self._write_allowed(path, lock_token)
        if denied is not None:
            return denied
        created = not self.vfs.is_file(path)
        try:
            self.vfs.write(path, content)
        except WebDavError as error:
            return DavResponse(error.status, str(error))
        return DavResponse(201 if created else 204)

    def get(self, path: str) -> DavResponse:
        try:
            return DavResponse(200, self.vfs.read(path))
        except WebDavError as error:
            return DavResponse(error.status, str(error))

    def delete(self, path: str, lock_token: str | None = None) -> DavResponse:
        denied = self._write_allowed(path, lock_token)
        if denied is not None:
            return denied
        try:
            self.vfs.delete(path)
        except WebDavError as error:
            return DavResponse(error.status, str(error))
        self._locks.pop(normalize_path(path), None)
        return DavResponse(204)

    def mkcol(self, path: str) -> DavResponse:
        try:
            self.vfs.mkdir(path)
        except WebDavError as error:
            return DavResponse(error.status, str(error))
        return DavResponse(201)

    def move(
        self, source: str, destination: str, lock_token: str | None = None
    ) -> DavResponse:
        denied = self._write_allowed(source, lock_token)
        if denied is not None:
            return denied
        try:
            self.vfs.move(source, destination)
        except WebDavError as error:
            return DavResponse(error.status, str(error))
        self._locks.pop(normalize_path(source), None)
        return DavResponse(201)

    def copy(self, source: str, destination: str) -> DavResponse:
        try:
            self.vfs.copy(source, destination)
        except WebDavError as error:
            return DavResponse(error.status, str(error))
        return DavResponse(201)

    def propfind(self, path: str, depth: int = 0) -> DavResponse:
        """Depth 0: the resource itself.  Depth 1: plus direct children."""
        if depth not in (0, 1):
            return DavResponse(400, "depth must be 0 or 1")
        path = normalize_path(path)
        if not self.vfs.exists(path):
            return DavResponse(404, f"not found: {path}")
        props = [self._props_for(path)]
        if depth == 1 and self.vfs.is_dir(path):
            prefix = path if path.endswith("/") else path + "/"
            for name in self.vfs.listdir(path):
                props.append(self._props_for(prefix + name.rstrip("/")))
        return DavResponse(207, properties=tuple(props))

    def proppatch(self, path: str, properties: dict[str, str]) -> DavResponse:
        """Set custom (dead) properties on a file."""
        if not self.vfs.is_file(path):
            return DavResponse(404, f"not found: {path}")
        self.vfs.entry(path).properties.update(properties)
        return DavResponse(207)

    # -- internals -----------------------------------------------------------

    def _props_for(self, path: str) -> ResourceProps:
        if self.vfs.is_dir(path):
            return ResourceProps(href=path, is_collection=True)
        entry = self.vfs.entry(path)
        return ResourceProps(
            href=path,
            is_collection=False,
            size=entry.size,
            modified=entry.modified.isoformat(),
            custom=tuple(sorted(entry.properties.items())),
        )

    # -- convenience used by examples -------------------------------------------

    def drop(self, folder: str, file_name: str, content: str) -> DavResponse:
        """The drag-and-drop gesture: PUT ``file_name`` into ``folder``."""
        folder = normalize_path(folder)
        if not self.vfs.is_dir(folder):
            self.vfs.mkdir(folder, parents=True)
        target = folder.rstrip("/") + "/" + base_name("/" + file_name)
        return self.put(target, content)
