"""Retry with exponential backoff and full jitter — on logical time.

A :class:`RetryPolicy` is pure configuration (attempt budget, backoff
curve, which error branch counts as transient); :func:`call_with_retry`
executes one operation under a policy, burning backoff as
:class:`~repro.resilience.clock.LogicalClock` ticks and drawing jitter
from a caller-supplied seeded ``random.Random`` so that every retry
schedule replays exactly.

Transience is an *error-type* property: the default retryable branch is
the injected-operational errors (``SourceUnavailableError``,
``SourceTimeoutError``).  ``CircuitOpenError`` is never retried, even if
a caller lists it — retrying an open circuit defeats the breaker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import (
    CircuitOpenError,
    ReproError,
    ResilienceError,
    SourceTimeoutError,
    SourceUnavailableError,
)
from repro.resilience.clock import LogicalClock

T = TypeVar("T")

#: The errors a policy treats as transient unless told otherwise.
DEFAULT_RETRYABLE: tuple[type[ReproError], ...] = (
    SourceUnavailableError,
    SourceTimeoutError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries.

    Backoff after failed attempt *n* (1-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * multiplier**(n-1))]`` — the
    classic full-jitter scheme, computed in logical ticks.
    """

    max_attempts: int = 3
    base_delay: int = 1
    multiplier: int = 2
    max_delay: int = 32
    retryable: tuple[type[ReproError], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("backoff delays cannot be negative")
        if self.multiplier < 1:
            raise ResilienceError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def is_transient(self, error: BaseException) -> bool:
        """Is ``error`` worth another attempt under this policy?"""
        if isinstance(error, CircuitOpenError):
            return False
        return isinstance(error, self.retryable)

    def backoff(self, attempt: int, rng: random.Random) -> int:
        """Full-jitter delay (ticks) after failed attempt ``attempt``."""
        ceiling = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if ceiling <= 0:
            return 0
        return rng.randint(0, ceiling)


@dataclass
class RetryStats:
    """What one retried call actually did (for reports and replay tests)."""

    attempts: int = 0
    retries: int = 0
    backoff_ticks: int = 0
    errors: list[str] = field(default_factory=list)


def call_with_retry(
    operation: Callable[[], T],
    policy: RetryPolicy,
    clock: LogicalClock,
    rng: random.Random,
    stats: RetryStats | None = None,
) -> T:
    """Run ``operation`` under ``policy``; returns its value.

    Re-raises the last error once the attempt budget is exhausted, and
    immediately for any error the policy does not consider transient.
    ``stats`` (when given) accumulates attempts/retries/backoff so
    callers can report the work without re-deriving it.
    """
    stats = stats if stats is not None else RetryStats()
    for attempt in range(1, policy.max_attempts + 1):
        stats.attempts += 1
        try:
            return operation()
        except ReproError as error:
            if not policy.is_transient(error):
                raise
            stats.errors.append(str(error))
            if attempt == policy.max_attempts:
                raise
            delay = policy.backoff(attempt, rng)
            clock.advance(delay)
            stats.retries += 1
            stats.backoff_ticks += delay
    raise ResilienceError("unreachable: retry loop exited without outcome")
