"""Heartbeat failure detection on the logical clock.

A :class:`HeartbeatMonitor` is one observer's view of who is alive: each
peer that wants to be considered live must :meth:`beat` within
``timeout`` ticks of :class:`~repro.resilience.clock.LogicalClock` time.
There is no background thread — like every resilience primitive, time
only moves when the harness advances the clock, so a detection schedule
replays bit-for-bit for one seed.

The monitor is deliberately *per observer*: under a network partition
two nodes legitimately disagree about who is alive, so the cluster layer
gives every node its own monitor and routes beats through the simulated
network (:mod:`repro.resilience.netsim`).
"""

from __future__ import annotations

from repro import obs
from repro.errors import ResilienceError
from repro.resilience.clock import LogicalClock


class HeartbeatMonitor:
    """One observer's liveness table: peer -> last heartbeat tick."""

    def __init__(
        self,
        clock: LogicalClock,
        timeout: int,
        observer: str = "monitor",
    ) -> None:
        if timeout < 1:
            raise ResilienceError(
                f"heartbeat timeout must be >= 1 tick, got {timeout}"
            )
        self.clock = clock
        self.timeout = timeout
        self.observer = observer
        self._last_seen: dict[str, int] = {}

    def beat(self, peer: str) -> int:
        """Record a heartbeat from ``peer``; returns the tick recorded."""
        tick = self.clock.now()
        self._last_seen[peer] = tick
        obs.inc(
            "repro_resilience_heartbeats_total", observer=self.observer
        )
        return tick

    def last_seen(self, peer: str) -> int | None:
        """Tick of ``peer``'s latest beat, or None if never heard from."""
        return self._last_seen.get(peer)

    def alive(self, peer: str) -> bool:
        """Has ``peer`` beaten within the timeout window?

        A peer never heard from is *not* alive — a fresh observer must
        collect a first heartbeat before trusting anyone, which is also
        what stops a rejoining node from instantly "detecting" the
        whole cluster as dead.
        """
        seen = self._last_seen.get(peer)
        if seen is None:
            return False
        return self.clock.now() - seen <= self.timeout

    def suspects(self) -> list[str]:
        """Peers heard from before but silent past the timeout, sorted."""
        return sorted(
            peer for peer in self._last_seen if not self.alive(peer)
        )

    def forget(self, peer: str) -> None:
        """Drop ``peer`` from the table (it left the membership)."""
        self._last_seen.pop(peer, None)

    def peers(self) -> list[str]:
        """Every peer ever heard from, sorted."""
        return sorted(self._last_seen)
