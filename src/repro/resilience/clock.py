"""A logical clock: deterministic time for the resilience layer.

The determinism rules (``repro.analysis``) ban wall-clock reads in
library code — timestamps enter the system as data.  Retry backoff,
breaker cooldowns, and injected latency therefore run on *ticks*: a
monotonically increasing integer that only moves when someone calls
:meth:`LogicalClock.advance`.  Same seed, same plan, same call order ⇒
the same tick at every decision point, so every resilience run replays
exactly.
"""

from __future__ import annotations

from repro.errors import ResilienceError


class LogicalClock:
    """Monotonic integer time; shared by retries, breakers, and faults."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ResilienceError(f"clock cannot start at {start}")
        self._now = int(start)

    def now(self) -> int:
        """The current tick."""
        return self._now

    def advance(self, ticks: int = 1) -> int:
        """Move time forward by ``ticks``; returns the new tick."""
        if ticks < 0:
            raise ResilienceError(f"clock cannot move backwards ({ticks})")
        self._now += int(ticks)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock(tick={self._now})"
