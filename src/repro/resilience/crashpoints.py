"""Deterministic crash-point enumeration for durable devices.

The recovery property worth having is universally quantified: *at every
point the process could die, recovery lands on a transaction boundary*.
This module enumerates those points mechanically instead of hoping a
few hand-picked ones generalise:

1. run the workload once against a counting pass-through device to
   learn how many log appends it performs (and to capture the uncrashed
   baseline for byte-identity comparison);
2. re-run it once per ``(append index, fault kind)`` pair with a
   :class:`~repro.resilience.faults.FaultPlan` scripted to kill the
   process exactly there — ``crash`` dies before the bytes land,
   ``torn`` dies halfway through them;
3. hand each surviving device back to the caller, who recovers from it
   and asserts whatever "consistent" means for their component.

The harness is deliberately ignorant of what it is crashing: it speaks
only the duck-typed device protocol, so it sits below the ORDBMS in the
layer DAG and the same matrix can later drive any other durable device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import CrashError
from repro.resilience.faults import FaultPlan


class _CountingDevice:
    """Pass-through device wrapper that counts appends."""

    def __init__(self, target: Any) -> None:
        self.target = target
        self.appends = 0

    def append(self, data: str) -> None:
        self.appends += 1
        self.target.append(data)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.target, name)


@dataclass(frozen=True)
class CrashPoint:
    """One scripted death: which append it hit, how, and what survived."""

    index: int  # 1-based append that faulted
    kind: str  # "crash" (die before write) or "torn" (die mid-write)
    device: Any  # the surviving device, ready for recovery
    crashed: bool  # the CrashError was actually observed


@dataclass(frozen=True)
class CrashMatrix:
    """Everything one matrix run produced."""

    #: Device from the uncrashed run (byte-identity baseline).
    baseline: Any
    #: Appends the uncrashed workload performs — the matrix width.
    total_appends: int
    points: tuple[CrashPoint, ...]


def crash_matrix(
    device_factory: Callable[[], Any],
    run: Callable[[Any], None],
    *,
    kinds: Sequence[str] = ("crash", "torn"),
    component: str = "wal",
) -> CrashMatrix:
    """Kill ``run`` at every append of its device, once per fault kind.

    ``device_factory`` must build a fresh, empty device per invocation;
    ``run`` receives the (possibly fault-wrapped) device, builds its
    component on top and performs the workload.  A run that never
    appends yields an empty matrix rather than an error — the caller's
    assertions will notice a workload that logged nothing.
    """
    baseline = _CountingDevice(device_factory())
    run(baseline)
    points: list[CrashPoint] = []
    for kind in kinds:
        for index in range(1, baseline.appends + 1):
            device = device_factory()
            plan = FaultPlan()
            plan.fail(component, "append", kind=kind, after=index - 1, times=1)
            crashed = False
            try:
                run(plan.wrap_log_device(device, component))
            except CrashError:
                crashed = True
            points.append(CrashPoint(index, kind, device, crashed))
    return CrashMatrix(
        baseline=baseline,
        total_appends=baseline.appends,
        points=tuple(points),
    )
