"""Circuit breakers: stop paying for a source that keeps failing.

Classic three-state machine, keyed per source name and driven entirely
by the :class:`~repro.resilience.clock.LogicalClock`:

* **closed** — calls flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips; calls are refused (the router skips the source without
  paying its latency) until ``cooldown`` ticks have elapsed.
* **half-open** — after the cooldown one probe traffic is let through;
  ``probe_successes`` successes re-close the breaker, any failure
  re-opens it (and restarts the cooldown).

Every transition is recorded with its tick so replay tests can assert
the exact trip schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitOpenError, ResilienceError
from repro.resilience.clock import LogicalClock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip threshold and recovery schedule, in logical ticks."""

    failure_threshold: int = 3
    cooldown: int = 16
    probe_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown < 0:
            raise ResilienceError("cooldown cannot be negative")
        if self.probe_successes < 1:
            raise ResilienceError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, stamped with the tick it happened at."""

    tick: int
    old_state: str
    new_state: str


class CircuitBreaker:
    """One breaker protecting one named component."""

    def __init__(
        self, name: str, config: BreakerConfig, clock: LogicalClock
    ) -> None:
        self.name = name
        self.config = config
        self._clock = clock
        self.state = CLOSED
        self.trips = 0
        self.transitions: list[BreakerTransition] = []
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at: int | None = None

    # -- the call gate ------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now? (Moves open → half-open on time.)"""
        if self.state == OPEN:
            assert self._opened_at is not None
            if self._clock.now() - self._opened_at >= self.config.cooldown:
                self._transition(HALF_OPEN)
                self._probe_successes = 0
                return True
            return False
        return True

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` instead of returning False."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit for {self.name!r} is open "
                f"(cooldown {self.config.cooldown} ticks)"
            )

    # -- outcome reporting --------------------------------------------------

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.probe_successes:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self._consecutive_failures >= self.config.failure_threshold
        ):
            self._trip()

    # -- internals ----------------------------------------------------------

    def _trip(self) -> None:
        self._transition(OPEN)
        self.trips += 1
        self._opened_at = self._clock.now()
        self._consecutive_failures = 0

    def _transition(self, new_state: str) -> None:
        self.transitions.append(
            BreakerTransition(self._clock.now(), self.state, new_state)
        )
        self.state = new_state


class BreakerBoard:
    """All breakers of one router, created on first use per source name."""

    def __init__(self, config: BreakerConfig, clock: LogicalClock) -> None:
        self.config = config
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, name: str) -> CircuitBreaker:
        if name not in self._breakers:
            self._breakers[name] = CircuitBreaker(
                name, self.config, self._clock
            )
        return self._breakers[name]

    def names(self) -> list[str]:
        return sorted(self._breakers)

    def open_names(self) -> list[str]:
        return sorted(
            name
            for name, breaker in self._breakers.items()
            if breaker.state == OPEN
        )

    @property
    def trips(self) -> int:
        """Total trips across all breakers (a chaos-report headline)."""
        return sum(breaker.trips for breaker in self._breakers.values())

    def transitions(self) -> list[tuple[str, BreakerTransition]]:
        """Every (source, transition) pair, in deterministic order."""
        return [
            (name, transition)
            for name in self.names()
            for transition in self._breakers[name].transitions
        ]
