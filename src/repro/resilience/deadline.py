"""Deadlines, budgets and cooperative cancellation on the logical clock.

Overload protection needs one vocabulary for "how much longer is this
request allowed to run" that every tier — worker pool, HTTP facade,
query plan, federation router — can consult cheaply.  Like the fault
machinery (PR 2), it runs on :class:`~repro.resilience.clock.LogicalClock`
ticks so every overload drill is deterministic and replayable; the real
server composes a :func:`wall_tick_source` at its composition root,
where wall time is allowed to enter the system as data.

Three primitives, smallest first:

:class:`Deadline`
    An absolute expiry tick on a clock.  ``remaining()`` is the budget
    left (never negative); ``tightened`` takes the earlier of two
    deadlines, which is how a router hands each source the *remaining*
    budget rather than the original one.

:class:`CancellationToken`
    A one-way latch flipped by the submitter (``cancel``), observed by
    the executor.  Cross-thread by construction: the flag is a
    :class:`threading.Event`, so a worker sees an abandoning client's
    cancel at its next batch boundary.

:class:`Budget`
    What a request actually carries: optional deadline, optional token,
    and the partial-results policy.  ``admits(site)`` is the one check
    operators call — it raises :class:`~repro.errors.QueryCancelledError`
    on cancellation, raises :class:`~repro.errors.QueryTimeoutError` on
    expiry, or (with ``partial_ok``) records the expiry and returns
    ``False`` so the plan stops pulling and the caller marks the answer
    partial.
"""

from __future__ import annotations

import threading
from typing import Callable, Protocol

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ResilienceError,
)

__all__ = [
    "Budget",
    "CancellationToken",
    "Deadline",
    "TickSource",
    "wall_tick_source",
]


class TickSource(Protocol):
    """Anything with a ``now() -> int`` — a LogicalClock or an adapter."""

    def now(self) -> int: ...


class _WallTicks:
    """Integer ticks derived from an injected wall-clock callable.

    The determinism rules ban wall-clock *reads* in library code; an
    adapter that is handed the callable keeps that true — only a
    composition root (``__main__``, a deployment script) ever writes
    ``time.monotonic`` next to this constructor.
    """

    __slots__ = ("_wall", "_ticks_per_second", "_origin")

    def __init__(
        self, wall: Callable[[], float], ticks_per_second: int
    ) -> None:
        if ticks_per_second <= 0:
            raise ResilienceError(
                f"ticks_per_second must be positive, got {ticks_per_second}"
            )
        self._wall = wall
        self._ticks_per_second = ticks_per_second
        self._origin = wall()

    def now(self) -> int:
        return int((self._wall() - self._origin) * self._ticks_per_second)


def wall_tick_source(
    wall: Callable[[], float], ticks_per_second: int = 1000
) -> TickSource:
    """A tick source over an injected monotonic wall clock.

    ``wall_tick_source(time.monotonic)`` gives millisecond ticks; pass
    it wherever a :class:`~repro.resilience.clock.LogicalClock` is
    accepted to run real-time deadlines on a production server.
    """
    return _WallTicks(wall, ticks_per_second)


class Deadline:
    """An absolute expiry tick on a (logical or adapted) clock."""

    __slots__ = ("clock", "expires_at")

    def __init__(self, clock: TickSource, budget_ticks: int) -> None:
        if budget_ticks < 0:
            raise ResilienceError(
                f"a deadline budget cannot be negative ({budget_ticks})"
            )
        self.clock = clock
        self.expires_at = clock.now() + int(budget_ticks)

    @classmethod
    def at(cls, clock: TickSource, expires_at: int) -> "Deadline":
        """A deadline at an absolute tick (may already be in the past)."""
        deadline = cls.__new__(cls)
        deadline.clock = clock
        deadline.expires_at = int(expires_at)
        return deadline

    def remaining(self) -> int:
        """Ticks left before expiry, clamped at zero."""
        return max(0, self.expires_at - self.clock.now())

    def expired(self) -> bool:
        return self.clock.now() >= self.expires_at

    def tightened(self, budget_ticks: int) -> "Deadline":
        """The earlier of this deadline and ``now + budget_ticks``.

        How nested scopes (a per-source sub-deadline under a request
        deadline) compose: a child may only shrink the budget.
        """
        child = Deadline(self.clock, budget_ticks)
        if self.expires_at < child.expires_at:
            child.expires_at = self.expires_at
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(expires_at={self.expires_at}, "
            f"remaining={self.remaining()})"
        )


class CancellationToken:
    """A one-way cancel latch: submitter flips it, executor observes it."""

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = threading.Event()
        # repro: guarded-by(_cancelled) written once by the cancelling
        # thread before the event is set; executors read it only after
        # observing the event.
        self.reason = ""

    def cancel(self, reason: str = "cancelled by submitter") -> None:
        """Request cancellation (idempotent; first reason wins)."""
        if not self._cancelled.is_set():
            self.reason = reason
            self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def check(self, site: str = "") -> None:
        """Raise :class:`QueryCancelledError` if cancellation was requested."""
        if self._cancelled.is_set():
            where = f" at {site}" if site else ""
            raise QueryCancelledError(
                f"request cancelled{where}: {self.reason}"
            )


class Budget:
    """One request's time-and-cancellation envelope.

    Mutable on purpose: ``timed_out`` flips when a ``partial_ok`` budget
    expires, and the HTTP layer may tighten the deadline with a
    query-supplied ``Deadline=`` parameter.  A budget is owned by one
    executing request; only the token inside is cross-thread.
    """

    __slots__ = ("deadline", "token", "partial_ok", "timed_out")

    def __init__(
        self,
        deadline: Deadline | None = None,
        token: CancellationToken | None = None,
        partial_ok: bool = False,
    ) -> None:
        self.deadline = deadline
        self.token = token
        self.partial_ok = partial_ok
        # repro: guarded-by(gil) set and read only on the thread
        # executing the request; the submitter never reads it.
        self.timed_out = False

    # -- state queries ------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        return self.token is not None and self.token.cancelled

    @property
    def expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired()

    def remaining(self) -> int | None:
        """Ticks left on the deadline (None when no deadline is set)."""
        if self.deadline is None:
            return None
        return self.deadline.remaining()

    # -- composition --------------------------------------------------------

    def tighten(self, clock: TickSource, budget_ticks: int) -> None:
        """Shrink (never grow) the deadline to ``now + budget_ticks``."""
        if self.deadline is None:
            self.deadline = Deadline(clock, budget_ticks)
        else:
            self.deadline = self.deadline.tightened(budget_ticks)

    # -- the one check operators call --------------------------------------

    def admits(self, site: str = "") -> bool:
        """May work continue?  The cooperative-cancellation checkpoint.

        * Cancelled → raises :class:`QueryCancelledError` (always; a
          cancelled client wants no answer, partial or otherwise).
        * Expired with ``partial_ok`` → records ``timed_out`` and
          returns ``False``: stop pulling, keep what you have.
        * Expired without → raises :class:`QueryTimeoutError`.
        * Otherwise → ``True``.
        """
        if self.token is not None:
            self.token.check(site)
        if self.timed_out:
            return False
        if self.deadline is not None and self.deadline.expired():
            if self.partial_ok:
                self.timed_out = True
                return False
            where = f" at {site}" if site else ""
            raise QueryTimeoutError(
                f"deadline expired{where} "
                f"(expiry tick {self.deadline.expires_at})"
            )
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Budget(deadline={self.deadline!r}, "
            f"cancelled={self.cancelled}, partial_ok={self.partial_ok}, "
            f"timed_out={self.timed_out})"
        )
