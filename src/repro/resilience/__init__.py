"""Deterministic resilience: fault injection, retries, circuit breakers.

The paper's pitch is that NETMARK stays useful when the enterprise
around it is messy — sources come and go, the daemon quarantines poison
documents rather than wedging.  This package makes that testable: a
:class:`FaultPlan` provokes failures on demand, a :class:`RetryPolicy`
absorbs transient ones, a :class:`BreakerBoard` stops paying for a
source that keeps failing, and everything runs on a :class:`LogicalClock`
with seeded randomness so every run replays exactly.

The chaos harness (:mod:`repro.resilience.harness`) sits on top of the
federation tier and is imported explicitly, not re-exported here — the
core primitives below must stay importable from the layers they protect.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    BreakerConfig,
    BreakerTransition,
    CircuitBreaker,
)
from repro.resilience.clock import LogicalClock
from repro.resilience.crashpoints import CrashMatrix, CrashPoint, crash_matrix
from repro.resilience.deadline import (
    Budget,
    CancellationToken,
    Deadline,
    wall_tick_source,
)
from repro.resilience.faults import (
    FaultEvent,
    FaultPlan,
    FaultProxy,
    FaultRule,
    LogDeviceFaultProxy,
)
from repro.resilience.heartbeat import HeartbeatMonitor
from repro.resilience.netsim import Network, NetworkEvent
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import (
    DEFAULT_RETRYABLE,
    RetryPolicy,
    RetryStats,
    call_with_retry,
)

__all__ = [
    "CLOSED",
    "DEFAULT_RETRYABLE",
    "HALF_OPEN",
    "OPEN",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerTransition",
    "Budget",
    "CancellationToken",
    "CircuitBreaker",
    "CrashMatrix",
    "CrashPoint",
    "Deadline",
    "FaultEvent",
    "FaultPlan",
    "FaultProxy",
    "FaultRule",
    "HeartbeatMonitor",
    "LogDeviceFaultProxy",
    "LogicalClock",
    "Network",
    "NetworkEvent",
    "ResiliencePolicy",
    "RetryPolicy",
    "RetryStats",
    "call_with_retry",
    "crash_matrix",
    "wall_tick_source",
]
