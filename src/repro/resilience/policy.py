"""The bundle the router executes under: retry + breakers + clock + RNG.

One :class:`ResiliencePolicy` holds everything fault-tolerant execution
needs, pre-wired to share a single :class:`LogicalClock` (so breaker
cooldowns and retry backoff live on the same timeline) and a single
seeded ``random.Random`` (so jitter replays).  Construct one per router;
pass the same clock to the :class:`~repro.resilience.faults.FaultPlan`
when injected latency should count against breaker cooldowns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.resilience.breaker import BreakerBoard, BreakerConfig
from repro.resilience.clock import LogicalClock
from repro.resilience.retry import RetryPolicy


@dataclass
class ResiliencePolicy:
    """Everything a router needs to execute with fault tolerance."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    clock: LogicalClock = field(default_factory=LogicalClock)
    seed: int = 0

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)
        self.breakers = BreakerBoard(self.breaker, self.clock)
