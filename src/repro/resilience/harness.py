"""The chaos harness: the FIG8 federated workload, under faults.

Composition root (like the ``repro.netmark`` facade): it builds a
multi-source federation from the standard workload corpus, wraps the
sources in a :class:`~repro.resilience.faults.FaultPlan`, drives XDB
queries through the router under a
:class:`~repro.resilience.policy.ResiliencePolicy`, and condenses what
happened — complete/partial/failed answers, retries, breaker trips,
injected faults — into a :class:`ChaosReport` whose
:meth:`~ChaosReport.signature` replays bit-for-bit for one seed.

``benchmarks/bench_fig8_faulty_federation.py`` is the reporting surface;
this module is the machinery, so tests can assert completeness bounds
without importing a benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import FederationError
from repro.federation.router import Router  # lint: allow-layering(composition root: the chaos harness drives the federated stack under faults)
from repro.federation.sources import NetmarkSource  # lint: allow-layering(composition root: the chaos harness drives the federated stack under faults)
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import ResiliencePolicy
from repro.store.xmlstore import XmlStore  # lint: allow-layering(composition root: the chaos harness drives the federated stack under faults)
from repro.workloads.corpus import CorpusSpec, generate_corpus  # lint: allow-layering(composition root: the chaos harness drives the federated stack under faults)

#: Queries every chaos run exercises by default: a pure context search, a
#: planted-term content search, and a combined query (the augmentation
#: path when capability-limited sources join the bank).
DEFAULT_QUERIES: tuple[str, ...] = (
    "Context=Budget",
    "Content=chaos",
    "Context=Schedule&Content=chaos",
)


def build_sources(
    source_count: int = 3,
    docs_per_source: int = 6,
    seed: int = 1400,
) -> list[NetmarkSource]:
    """Deterministic NETMARK sources over the standard workload corpus."""
    sources: list[NetmarkSource] = []
    for index in range(source_count):
        store = XmlStore()
        files = generate_corpus(
            CorpusSpec(
                documents=docs_per_source,
                seed=seed + index,
                formats=("md",),
                planted_term="chaos",
                plant_every=3,
            )
        )
        for file in files:
            store.store_text(file.text, f"s{index}-{file.name}")
        sources.append(NetmarkSource(f"src{index:02d}", store))
    return sources


@dataclass(frozen=True)
class ChaosOutcome:
    """One query's fate under the plan."""

    query: str
    status: str  # "complete" | "partial" | "failed"
    matches: int
    failed_sources: tuple[str, ...]
    skipped_sources: tuple[str, ...]
    retries: int


@dataclass
class ChaosReport:
    """Everything one chaos run did, in replayable form."""

    outcomes: list[ChaosOutcome]
    injected: int
    trips: int
    transitions: tuple[tuple[str, int, str, str], ...]

    @property
    def complete(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == "complete")

    @property
    def partial(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == "partial")

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == "failed")

    @property
    def retries(self) -> int:
        return sum(outcome.retries for outcome in self.outcomes)

    def signature(self) -> tuple:
        """Deterministic fingerprint: equal across replays of one seed."""
        return (
            tuple(self.outcomes),
            self.injected,
            self.trips,
            self.transitions,
        )


def run_chaos(
    sources: Sequence[NetmarkSource],
    queries: Sequence[str] = DEFAULT_QUERIES,
    *,
    plan: FaultPlan | None = None,
    policy: ResiliencePolicy | None = None,
    rounds: int = 1,
    databank: str = "chaos",
) -> ChaosReport:
    """Fan ``queries`` out ``rounds`` times under ``plan``/``policy``."""
    router = Router(resilience=policy)
    bank = router.create_databank(databank, "chaos harness rig")
    for source in sources:
        bank.add_source(
            plan.wrap_source(source) if plan is not None else source
        )
    outcomes: list[ChaosOutcome] = []
    for _ in range(rounds):
        for query in queries:
            target = f"{query}&databank={databank}"
            try:
                results = router.execute(target)
            except FederationError:
                report = router.last_report
                outcomes.append(
                    ChaosOutcome(
                        query=query,
                        status="failed",
                        matches=0,
                        failed_sources=tuple(sorted(report.failed_sources)),
                        skipped_sources=tuple(report.skipped_sources),
                        retries=report.total_retries,
                    )
                )
                continue
            report = router.last_report
            outcomes.append(
                ChaosOutcome(
                    query=query,
                    status="partial" if results.partial else "complete",
                    matches=len(results),
                    failed_sources=tuple(sorted(report.failed_sources)),
                    skipped_sources=tuple(report.skipped_sources),
                    retries=report.total_retries,
                )
            )
    transitions = ()
    trips = 0
    if policy is not None:
        transitions = tuple(
            (name, transition.tick, transition.old_state, transition.new_state)
            for name, transition in policy.breakers.transitions()
        )
        trips = policy.breakers.trips
    return ChaosReport(
        outcomes=outcomes,
        injected=plan.injected() if plan is not None else 0,
        trips=trips,
        transitions=transitions,
    )


def healthy_baseline(
    sources: Sequence[NetmarkSource],
    queries: Sequence[str] = DEFAULT_QUERIES,
    exclude: Sequence[str] = (),
) -> dict[str, int]:
    """Match counts per query using only the sources not in ``exclude``.

    The completeness bound for partial answers: a degraded fan-out that
    lost exactly the sources in ``exclude`` must still return every
    match the remaining sources hold.
    """
    router = Router()
    bank = router.create_databank("baseline", "healthy-only control")
    for source in sources:
        if source.name not in exclude:
            bank.add_source(source)
    return {
        query: len(router.execute(f"{query}&databank=baseline"))
        for query in queries
    }
