"""Deterministic fault injection: provoke failures on demand.

A :class:`FaultPlan` decides, per ``(component, operation)`` call site,
whether a call fails, stalls, or proceeds.  Components are wrapped in
duck-typed proxies (:meth:`FaultPlan.wrap_source`, :meth:`wrap_store`,
:meth:`wrap_vfs`) that consult the plan before delegating, so the wrapped
object's own code never changes.  Fault kinds:

* ``unavailable`` — raise :class:`~repro.errors.SourceUnavailableError`;
* ``timeout`` — advance the logical clock by ``latency`` ticks, then
  raise :class:`~repro.errors.SourceTimeoutError`;
* ``slow`` — advance the clock by ``latency`` ticks and let the call
  proceed;
* ``crash`` — raise :class:`~repro.errors.CrashError` (a modelled
  process death; derives from ``BaseException`` so no library handler
  can absorb it);
* ``torn`` — write half the payload, then crash (death mid-write);
* ``corrupt`` — silently mangle the payload and let the call succeed.

The last three are write-path faults for durable devices: they fire
through :meth:`FaultPlan.wrap_log_device`, which proxies a WAL
:class:`~repro.ordbms.wal.LogDevice` (duck-typed — this package never
imports the ORDBMS) and applies the data-mangling kinds to the bytes
themselves.

Rules are scripted (``fail twice on native_search, then recover``) or
seeded-probabilistic (:meth:`FaultPlan.sometimes`); both are fully
deterministic: given the same seed and the same call sequence, the same
faults fire at the same ticks.  Every injection is recorded as a
:class:`FaultEvent` for replay assertions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import (
    CrashError,
    ResilienceError,
    SourceTimeoutError,
    SourceUnavailableError,
)
from repro.resilience.clock import LogicalClock

#: Fault kinds a rule may inject.
KINDS = ("unavailable", "timeout", "slow", "crash", "torn", "corrupt")

#: Kinds that mangle written data instead of raising; only meaningful on
#: log devices (:meth:`FaultPlan.wrap_log_device`).
MANGLING_KINDS = ("torn", "corrupt")

#: Operations gated on each wrappable component type.
SOURCE_OPERATIONS = ("native_search", "fetch_document", "document_names")
STORE_OPERATIONS = (
    "store_text",
    "replace_text",
    "store_document",
    "document",
    "delete_document",
)
VFS_OPERATIONS = ("read", "write", "move", "copy", "delete")
LOG_OPERATIONS = ("append", "sync", "truncate_log", "save_checkpoint")
#: 2PC crash points: the coordinator consults ``apply("2pc", op)`` right
#: before journaling a prepare, writing a decision, and delivering each
#: commit/abort — the classic windows a distributed commit must survive.
TWO_PHASE_OPERATIONS = ("prepare", "decide", "commit", "abort")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: where, what, and when (logical tick)."""

    tick: int
    component: str
    operation: str
    kind: str


@dataclass
class FaultRule:
    """One injection site script.

    Matches calls on ``component`` whose operation equals ``operation``
    (``"*"`` matches any gated operation).  The first ``after`` matching
    calls pass untouched; the next ``times`` calls fault (``None`` =
    forever); later calls pass again — the N-failures-then-recover
    script.  With ``probability`` set, each otherwise-eligible call
    faults only when the plan's seeded RNG says so.
    """

    component: str
    operation: str = "*"
    kind: str = "unavailable"
    times: int | None = 1
    after: int = 0
    probability: float | None = None
    latency: int = 0
    seen: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r} (one of {KINDS})"
            )
        if self.times is not None and self.times < 0:
            raise ResilienceError(f"times cannot be negative ({self.times})")
        if self.after < 0 or self.latency < 0:
            raise ResilienceError("after/latency cannot be negative")
        if self.probability is not None and not 0 <= self.probability <= 1:
            raise ResilienceError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def matches(self, component: str, operation: str) -> bool:
        return self.component == component and self.operation in ("*", operation)

    def due(self, rng: random.Random) -> bool:
        """Consume one matching call; does the fault fire on it?"""
        index = self.seen
        self.seen += 1
        if index < self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability is not None and rng.random() >= self.probability:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """All scripted trouble for one run, plus the record of what fired."""

    def __init__(self, seed: int = 0, clock: LogicalClock | None = None) -> None:
        self.clock = clock if clock is not None else LogicalClock()
        self.rules: list[FaultRule] = []
        self.events: list[FaultEvent] = []
        self._rng = random.Random(seed)

    # -- scripting ----------------------------------------------------------

    def fail(
        self,
        component: str,
        operation: str = "*",
        *,
        kind: str = "unavailable",
        times: int | None = 1,
        after: int = 0,
        latency: int = 0,
    ) -> FaultRule:
        """Script ``times`` failures (then recovery) at one site."""
        rule = FaultRule(
            component=component,
            operation=operation,
            kind=kind,
            times=times,
            after=after,
            latency=latency,
        )
        self.rules.append(rule)
        return rule

    def sometimes(
        self,
        component: str,
        operation: str = "*",
        *,
        probability: float,
        kind: str = "unavailable",
        times: int | None = None,
        latency: int = 0,
    ) -> FaultRule:
        """Script a seeded coin-flip fault at one site."""
        rule = FaultRule(
            component=component,
            operation=operation,
            kind=kind,
            times=times,
            probability=probability,
            latency=latency,
        )
        self.rules.append(rule)
        return rule

    def slow(
        self,
        component: str,
        operation: str = "*",
        *,
        latency: int,
        times: int | None = None,
    ) -> FaultRule:
        """Script added latency (ticks) without an error."""
        return self.fail(
            component, operation, kind="slow", times=times, latency=latency
        )

    # -- the injection gate -------------------------------------------------

    def apply(self, component: str, operation: str) -> None:
        """Called by proxies before delegating; raises when a fault fires."""
        self.poll(component, operation)

    def poll(self, component: str, operation: str) -> str | None:
        """Gate one call, reporting data-mangling kinds to the caller.

        Raises for the error kinds (``unavailable``, ``timeout``,
        ``crash``); returns ``"torn"``/``"corrupt"`` when a mangling
        fault fired so a device proxy can damage the payload; returns
        None when the call proceeds untouched.
        """
        fired: str | None = None
        for rule in self.rules:
            if not rule.matches(component, operation):
                continue
            if not rule.due(self._rng):
                continue
            kind = self._inject(rule, component, operation)
            if kind is not None:
                fired = kind
        return fired

    def injected(self, component: str | None = None) -> int:
        """How many faults fired (optionally for one component)."""
        return sum(
            1
            for event in self.events
            if component is None or event.component == component
        )

    # -- wrapping -----------------------------------------------------------

    def wrap_source(self, source: Any, component: str | None = None) -> Any:
        """Proxy an ``InformationSource`` (component defaults to its name)."""
        return FaultProxy(
            self, component or source.name, source, SOURCE_OPERATIONS
        )

    def wrap_store(self, store: Any, component: str = "store") -> Any:
        """Proxy an ``XmlStore``."""
        return FaultProxy(self, component, store, STORE_OPERATIONS)

    def wrap_vfs(self, vfs: Any, component: str = "vfs") -> Any:
        """Proxy a ``VirtualFileSystem``."""
        return FaultProxy(self, component, vfs, VFS_OPERATIONS)

    def wrap_log_device(self, device: Any, component: str = "wal") -> Any:
        """Proxy a WAL ``LogDevice``; enables torn/corrupt/crash faults."""
        return LogDeviceFaultProxy(self, component, device)

    # -- internals ----------------------------------------------------------

    def _inject(
        self, rule: FaultRule, component: str, operation: str
    ) -> str | None:
        if rule.latency:
            self.clock.advance(rule.latency)
        self.events.append(
            FaultEvent(self.clock.now(), component, operation, rule.kind)
        )
        site = f"{component}.{operation}"
        if rule.kind == "unavailable":
            raise SourceUnavailableError(f"injected: {site} is unavailable")
        if rule.kind == "timeout":
            raise SourceTimeoutError(
                f"injected: {site} timed out after {rule.latency} ticks"
            )
        if rule.kind == "crash":
            raise CrashError(f"injected: process died at {site}")
        if rule.kind in MANGLING_KINDS:
            return rule.kind
        # "slow": latency already charged; the call proceeds.
        return None


class FaultProxy:
    """Duck-typed wrapper: delegates everything, gates named operations.

    Wrapping instead of subclassing keeps the resilience layer below the
    components it wraps — the proxy needs nothing from the wrapped type
    but the operation names, so any source/store/filesystem (including
    test doubles) can be made faulty.
    """

    def __init__(
        self,
        plan: FaultPlan,
        component: str,
        target: Any,
        operations: Sequence[str],
    ) -> None:
        self._plan = plan
        self._component = component
        self._target = target
        self._operations = frozenset(operations)

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._target, name)
        if name in self._operations and callable(attr):
            plan, component = self._plan, self._component

            def gated(*args: Any, **kwargs: Any) -> Any:
                plan.apply(component, name)
                return attr(*args, **kwargs)

            gated.__name__ = name
            return gated
        return attr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultProxy({self._component!r}, {self._target!r})"


def _mangle(data: str) -> str:
    """Deterministically damage one character of ``data`` (bit rot).

    Flips the last character before any trailing newline — for a WAL
    record line that is a CRC hex digit, guaranteeing detection.
    """
    text = data[:-1] if data.endswith("\n") else data
    tail = data[len(text):]
    if not text:
        return data
    flipped = "0" if text[-1] == "X" else "X"
    return text[:-1] + flipped + tail


class LogDeviceFaultProxy:
    """Fault gate for a WAL ``LogDevice``: can damage the bytes themselves.

    Write operations consult the plan first.  ``crash`` dies before the
    write, ``torn`` writes half the payload and then dies (a genuinely
    torn append), ``corrupt`` mangles one character and lets the call
    "succeed" (silent bit rot — the seed for mid-log corruption tests).
    Reads always pass through: recovery must be able to see whatever
    the injected trouble left behind.
    """

    def __init__(self, plan: FaultPlan, component: str, target: Any) -> None:
        self._plan = plan
        self._component = component
        self._target = target

    def append(self, data: str) -> None:
        kind = self._plan.poll(self._component, "append")
        if kind == "torn":
            self._target.append(data[: len(data) // 2])
            raise CrashError(
                f"injected: process died mid-append on {self._component}"
            )
        if kind == "corrupt":
            data = _mangle(data)
        self._target.append(data)

    def sync(self) -> None:
        self._plan.poll(self._component, "sync")
        self._target.sync()

    def truncate_log(self) -> None:
        self._plan.poll(self._component, "truncate_log")
        self._target.truncate_log()

    def save_checkpoint(self, text: str) -> None:
        kind = self._plan.poll(self._component, "save_checkpoint")
        if kind == "torn":
            self._target.save_checkpoint(text[: len(text) // 2])
            raise CrashError(
                f"injected: process died mid-checkpoint on {self._component}"
            )
        if kind == "corrupt":
            text = _mangle(text)
        self._target.save_checkpoint(text)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._target, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogDeviceFaultProxy({self._component!r}, {self._target!r})"
