"""Simulated cluster network: node kills and partitions, deterministically.

The cluster layer runs N logical Netmark nodes inside one process, so
"the network" between them is this object: every heartbeat, log-ship
batch and 2PC message asks :meth:`Network.check` before crossing.  The
harness scripts trouble directly — :meth:`kill` models a node death
(SIGKILL: the node stops answering *and* sending), :meth:`partition`
splits the membership into groups that cannot reach each other — and
every topology change is recorded as a :class:`NetworkEvent` at its
logical tick, so a run's fault timeline replays bit-for-bit.

Unreachability is symmetric and is reported with the resilience
vocabulary (:class:`~repro.errors.SourceUnavailableError`), so the
retry/breaker machinery treats a partitioned peer exactly like any
other downed source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResilienceError, SourceUnavailableError
from repro.resilience.clock import LogicalClock

#: Topology-change kinds recorded on the event log.
NODE_KILL = "node-kill"
NODE_REVIVE = "node-revive"
PARTITION = "partition"
HEAL = "heal"


@dataclass(frozen=True)
class NetworkEvent:
    """One topology change: what happened to whom, at which tick."""

    tick: int
    kind: str
    detail: str


class Network:
    """Reachability oracle for a fixed set of logical nodes."""

    def __init__(self, clock: LogicalClock, nodes: list[str]) -> None:
        if len(set(nodes)) != len(nodes):
            raise ResilienceError(f"duplicate node names in {nodes}")
        self.clock = clock
        self.nodes = tuple(nodes)
        self.events: list[NetworkEvent] = []
        self._dead: set[str] = set()
        #: node -> partition-group id; all nodes start in group 0.
        self._group: dict[str, int] = {name: 0 for name in nodes}

    # -- scripting ----------------------------------------------------------

    def kill(self, node: str) -> None:
        """Model a node death: it neither sends nor answers anything."""
        self._known(node)
        self._dead.add(node)
        self._record(NODE_KILL, node)

    def revive(self, node: str) -> None:
        """Bring a killed node back (its durable state is its own problem)."""
        self._known(node)
        self._dead.discard(node)
        self._record(NODE_REVIVE, node)

    def partition(self, *groups: list[str]) -> None:
        """Split the membership into isolated groups.

        Every node must appear in exactly one group; nodes within a
        group reach each other, nodes in different groups do not.
        """
        assignment: dict[str, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                self._known(node)
                if node in assignment:
                    raise ResilienceError(
                        f"node {node!r} appears in two partition groups"
                    )
                assignment[node] = index
        missing = set(self.nodes) - set(assignment)
        if missing:
            raise ResilienceError(
                f"partition omits nodes {sorted(missing)}"
            )
        self._group = assignment
        self._record(
            PARTITION,
            " | ".join(",".join(sorted(group)) for group in groups),
        )

    def heal(self) -> None:
        """Undo any partition (killed nodes stay dead)."""
        self._group = {name: 0 for name in self.nodes}
        self._record(HEAL, "all")

    # -- the oracle ---------------------------------------------------------

    def alive(self, node: str) -> bool:
        self._known(node)
        return node not in self._dead

    def reachable(self, src: str, dst: str) -> bool:
        """Can a message cross from ``src`` to ``dst`` right now?"""
        self._known(src)
        self._known(dst)
        if src in self._dead or dst in self._dead:
            return False
        return self._group[src] == self._group[dst]

    def check(self, src: str, dst: str) -> None:
        """Raise :class:`SourceUnavailableError` unless ``src`` reaches ``dst``."""
        if not self.reachable(src, dst):
            raise SourceUnavailableError(
                f"network: {src} cannot reach {dst} (dead or partitioned)"
            )

    def peers_of(self, node: str) -> list[str]:
        """Live nodes ``node`` can currently reach (itself excluded)."""
        return [
            other
            for other in self.nodes
            if other != node and self.reachable(node, other)
        ]

    # -- internals ----------------------------------------------------------

    def _known(self, node: str) -> None:
        if node not in self._group and node not in self.nodes:
            raise ResilienceError(f"unknown node {node!r}")

    def _record(self, kind: str, detail: str) -> None:
        self.events.append(NetworkEvent(self.clock.now(), kind, detail))
