"""Two-phase commit for federated ingest, with a journaled coordinator.

When one logical document must land in several stores atomically (the
federated-write path), the cluster runs textbook presumed-abort 2PC:

* **Phase 1** — the coordinator journals a ``PREPARE`` record *carrying
  the full payload* (file name + content, packed with the WAL's own
  value codec) for each participant, then collects votes.  Journaling
  the payload is what makes recovery possible: a participant that died
  between prepare and commit lost its in-memory prepared state, but the
  coordinator can re-deliver the commit from its journal.
* **Decision** — one ``DECIDE commit|abort`` record, CRC-stamped like
  every journal line.  The decision point is the moment of atomicity:
  once ``DECIDE commit`` is durable the transaction commits on every
  participant, no matter who crashes when.
* **Phase 2** — deliver the outcome to each participant, then journal
  ``DONE``.  Participant commit is idempotent (a content digest check
  skips re-application), so recovery can re-deliver blindly.

Presumed abort: a transaction with ``PREPARE`` records but no durable
decision aborts on recovery — the only safe reading of a coordinator
that died before deciding.

Crash points fire through ``FaultPlan.apply("2pc", op)`` with
``op`` in :data:`~repro.resilience.faults.TWO_PHASE_OPERATIONS`, one
gate before each journal write and each outcome delivery.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.converters import convert
from repro.errors import ReproError, TwoPhaseError
from repro.ordbms.valuecodec import pack_row, unpack_row
from repro.ordbms.wal import LogDevice
from repro.resilience.faults import FaultPlan

#: Journal record kinds.
PREPARE = "PREPARE"
VOTE = "VOTE"
DECIDE = "DECIDE"
DONE = "DONE"

COMMIT = "commit"
ABORT = "abort"

#: Metadata key participants stamp on committed documents; the digest
#: check behind idempotent commit re-delivery.
DIGEST_KEY = "ingest-digest"


def content_digest(content: str) -> str:
    """Stable digest of a payload (CRC32 hex — collision-tolerable:
    it only guards re-delivery of the *same* transaction)."""
    return f"{zlib.crc32(content.encode('utf-8')):08x}"


def _crc(body: str) -> str:
    return f"{zlib.crc32(body.encode('utf-8')):08x}"


class DecisionLog:
    """The coordinator's durable 2PC journal, one CRC'd line per event."""

    def __init__(self, device: LogDevice) -> None:
        self.device = device

    def append(self, *fields: str) -> None:
        for value in fields:
            if " " in value or "\n" in value or "|" in value:
                raise TwoPhaseError(
                    f"journal field {value!r} contains a separator"
                )
        body = " ".join(fields)
        self.device.append(f"{body}|{_crc(body)}\n")
        self.device.sync()

    def entries(self) -> list[tuple[str, ...]]:
        """Parse the journal; a torn last line is dropped (the append
        never became durable), damage elsewhere raises."""
        text = self.device.read_log()
        if not text:
            return []
        complete = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        entries: list[tuple[str, ...]] = []
        for index, line in enumerate(lines):
            last = index == len(lines) - 1
            body, sep, crc = line.rpartition("|")
            if not sep or _crc(body) != crc or (last and not complete):
                if last:
                    break  # torn tail: the write died with the writer
                raise TwoPhaseError(
                    f"2PC journal line {index + 1} is damaged mid-log"
                )
            entries.append(tuple(body.split(" ")))
        return entries


class StoreParticipant:
    """One store's side of the protocol: vote, then obey the decision."""

    def __init__(self, name: str, store: Any) -> None:
        self.name = name
        self.store = store
        #: gid -> (file_name, content) held between prepare and outcome.
        self._prepared: dict[str, tuple[str, str]] = {}

    def prepare(self, gid: str, file_name: str, content: str) -> bool:
        """Phase-1 vote: yes only if the ingest is certain to apply.

        Validation runs the real converter — a payload that cannot parse
        will never commit anywhere, so the participant votes no and the
        whole transaction aborts.
        """
        try:
            convert(content, file_name)
        except ReproError:
            return False
        self._prepared[gid] = (file_name, content)
        return True

    def commit(
        self, gid: str, file_name: str, content: str
    ) -> int | None:
        """Apply the decided commit; idempotent by content digest.

        The payload arrives with the call (from the coordinator's
        journal), so commit works even when this participant lost its
        prepared state in a crash.  Returns the document id, or None
        when the digest check proved the work was already done.
        """
        self._prepared.pop(gid, None)
        digest = content_digest(content)
        existing = self.store.lookup_by_name(file_name)
        if (
            existing is not None
            and existing.metadata.get(DIGEST_KEY) == digest
        ):
            return None
        document = convert(content, file_name)
        document.metadata[DIGEST_KEY] = digest
        if existing is not None:
            self.store.delete_document(existing.doc_id)
        result = self.store.store_document(document)
        return result.doc_id

    def abort(self, gid: str) -> None:
        """Drop prepared state; nothing was applied, nothing to undo."""
        self._prepared.pop(gid, None)

    @property
    def prepared(self) -> tuple[str, ...]:
        return tuple(sorted(self._prepared))


@dataclass(frozen=True)
class TwoPhaseOutcome:
    """Result of one distributed ingest."""

    gid: str
    outcome: str  # COMMIT or ABORT
    votes: dict[str, bool] = field(default_factory=dict)
    #: participant -> doc id (None = idempotent skip); commit only.
    applied: dict[str, int | None] = field(default_factory=dict)


class TwoPhaseCoordinator:
    """Drives the protocol across participants, journaling every step."""

    def __init__(
        self,
        journal: DecisionLog,
        participants: dict[str, StoreParticipant],
        faults: FaultPlan | None = None,
    ) -> None:
        if not participants:
            raise TwoPhaseError("2PC needs at least one participant")
        self.journal = journal
        self.participants = dict(sorted(participants.items()))
        self.faults = faults

    def _gate(self, operation: str) -> None:
        if self.faults is not None:
            self.faults.apply("2pc", operation)

    def ingest(
        self, gid: str, file_name: str, content: str
    ) -> TwoPhaseOutcome:
        """Run one document through the full protocol."""
        payload = pack_row((file_name, content))
        votes: dict[str, bool] = {}
        for name, participant in self.participants.items():
            self._gate("prepare")
            self.journal.append(PREPARE, gid, name, payload)
            try:
                votes[name] = participant.prepare(gid, file_name, content)
            except ReproError:
                # An unreachable participant cannot promise anything.
                votes[name] = False
            self.journal.append(
                VOTE, gid, name, "yes" if votes[name] else "no"
            )
        decision = COMMIT if all(votes.values()) else ABORT
        self._gate("decide")
        self.journal.append(DECIDE, gid, decision)
        applied: dict[str, int | None] = {}
        if decision == COMMIT:
            for name, participant in self.participants.items():
                self._gate("commit")
                applied[name] = participant.commit(gid, file_name, content)
        else:
            for name, participant in self.participants.items():
                self._gate("abort")
                participant.abort(gid)
        self.journal.append(DONE, gid)
        obs.inc("repro_cluster_twopc_total", outcome=decision)
        return TwoPhaseOutcome(
            gid=gid, outcome=decision, votes=votes, applied=applied
        )

    # -- crash recovery -----------------------------------------------------

    def recover(self) -> list[tuple[str, str]]:
        """Finish every transaction the journal left unresolved.

        Returns ``(gid, action)`` pairs in journal order, where action
        is ``commit`` (a durable commit decision was re-delivered) or
        ``abort`` (presumed abort, or an abort decision re-delivered).
        """
        prepared: dict[str, dict[str, str]] = {}
        decided: dict[str, str] = {}
        done: set[str] = set()
        order: list[str] = []
        for entry in self.journal.entries():
            kind = entry[0]
            if kind == PREPARE and len(entry) == 4:
                _, gid, name, payload = entry
                if gid not in prepared:
                    prepared[gid] = {}
                    order.append(gid)
                prepared[gid][name] = payload
            elif kind == DECIDE and len(entry) == 3:
                decided[entry[1]] = entry[2]
            elif kind == DONE and len(entry) == 2:
                done.add(entry[1])
            elif kind == VOTE:
                continue
            else:
                raise TwoPhaseError(
                    f"2PC journal holds malformed entry {entry!r}"
                )
        actions: list[tuple[str, str]] = []
        for gid in order:
            if gid in done:
                continue
            decision = decided.get(gid, ABORT)  # presumed abort
            if decision == COMMIT:
                for name, payload in sorted(prepared[gid].items()):
                    participant = self._participant(gid, name)
                    file_name, content = unpack_row(payload)
                    participant.commit(gid, file_name, content)
                actions.append((gid, COMMIT))
            else:
                for name in sorted(prepared[gid]):
                    self._participant(gid, name).abort(gid)
                actions.append((gid, ABORT))
            if gid not in decided:
                self.journal.append(DECIDE, gid, ABORT)
            self.journal.append(DONE, gid)
            obs.inc("repro_cluster_twopc_total", outcome=f"recovered-{decision}")
        return actions

    def _participant(self, gid: str, name: str) -> StoreParticipant:
        try:
            return self.participants[name]
        except KeyError:
            raise TwoPhaseError(
                f"journal names participant {name!r} for {gid} but the "
                f"coordinator knows no such store"
            ) from None
