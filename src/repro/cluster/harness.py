"""Failover scenario drivers shared by the cluster tests and benchmarks.

Three drills, all deterministic (logical clock, seeded fault plans, no
wall time), all assessed the same way:

* :func:`coordinator_kill_matrix` / :func:`follower_kill_matrix` —
  crash-point enumeration in the spirit of
  :func:`repro.resilience.crashpoints.crash_matrix`, lifted to a whole
  node: kill it at *every* WAL append of its device, once per fault
  kind, and after each death check the universal property — the cluster
  re-elects, every surviving replica converges to byte-identical state,
  and **no ledger-acknowledged ingest is lost**.
* :func:`partition_drill` — split a five-node cluster so the coordinator
  lands in the minority: it must self-demote, the majority must elect,
  the minority must refuse writes, and healing must reconverge everyone.
* :func:`twopc_crash_matrix` — kill the 2PC coordinator at every
  protocol gate and verify atomicity across participants after journal
  recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import (
    CrashError,
    NoQuorumError,
    SourceUnavailableError,
)
from repro.ordbms.wal import MemoryLogDevice, parse_log
from repro.resilience.faults import FaultPlan
from repro.store.fsck import check_store
from repro.store.xmlstore import XmlStore

from repro.cluster.cluster import NetmarkCluster
from repro.cluster.twophase import (
    ABORT,
    COMMIT,
    DecisionLog,
    StoreParticipant,
    TwoPhaseCoordinator,
)

#: Default workload: enough documents that replication, catch-up and
#: re-election all happen mid-stream, small enough to enumerate fully.
DOCS: tuple[tuple[str, str], ...] = (
    ("memo.md", "# Memo\n\nShip the failover matrix.\n"),
    ("notes.md", "# Notes\n\n- elections\n- shipping\n"),
    ("plan.md", "# Plan\n\nKill, elect, converge.\n"),
)

DEFAULT_NODES = ("n1", "n2", "n3")


class _CountingDevice:
    """Pass-through device wrapper that counts appends."""

    def __init__(self, target: Any) -> None:
        self.target = target
        self.appends = 0

    def append(self, data: str) -> None:
        self.appends += 1
        self.target.append(data)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.target, name)


@dataclass(frozen=True)
class DriveReport:
    """What one workload drive observed."""

    acked: int
    refusals: int
    #: Replication gap the moment the faulted node died (durable records
    #: on its device that no surviving replica had acked), or None if it
    #: never died while coordinating.
    lag_at_kill: int | None


@dataclass(frozen=True)
class FailoverPoint:
    """One scripted node death and its aftermath."""

    index: int  # 1-based device append that faulted
    kind: str  # "crash" or "torn"
    died_at_boot: bool  # the fault fired before the cluster existed
    acked: int  # ledger length once the workload finished
    lost: int  # acked ingests missing afterwards — MUST be 0
    converged: bool  # all live dumps byte-identical
    fsck_clean: bool  # every live store passes fsck
    failover_ticks: int  # death -> new coordinator (0 = no election)
    lag_at_kill: int | None
    winner: str | None  # coordinator after the dust settled


@dataclass(frozen=True)
class FailoverMatrix:
    """Everything one kill-matrix run produced."""

    faulted: str
    total_appends: int
    baseline_acked: int
    points: tuple[FailoverPoint, ...]

    @property
    def total_lost(self) -> int:
        return sum(point.lost for point in self.points)

    @property
    def all_converged(self) -> bool:
        return all(p.converged for p in self.points if not p.died_at_boot)

    @property
    def all_fsck_clean(self) -> bool:
        return all(p.fsck_clean for p in self.points if not p.died_at_boot)

    @property
    def max_failover_ticks(self) -> int:
        return max(
            (point.failover_ticks for point in self.points), default=0
        )


def drive_ingest(
    cluster: NetmarkCluster,
    documents: Sequence[tuple[str, str]] = DOCS,
    faulted: str | None = None,
    retries: int = 8,
) -> DriveReport:
    """Push the workload through, retrying around deaths and elections.

    A client loop: each refused ingest waits out a failure-detection
    window (ticking the cluster) and retries; an ingest that keeps
    failing is abandoned — what matters is that everything the ledger
    *acknowledged* survives.
    """
    refusals = 0
    lag_at_kill: int | None = None
    for file_name, content in documents:
        for _attempt in range(retries):
            try:
                cluster.ingest(file_name, content)
                break
            except SourceUnavailableError:
                refusals += 1
                if lag_at_kill is None and faulted is not None:
                    lag_at_kill = _death_gap(cluster, faulted)
                cluster.tick(cluster.heartbeat_timeout + 2)
            except NoQuorumError:
                refusals += 1
                cluster.tick(cluster.heartbeat_timeout + 2)
        cluster.tick(1)
    return DriveReport(
        acked=len(cluster.ledger),
        refusals=refusals,
        lag_at_kill=lag_at_kill,
    )


def _death_gap(cluster: NetmarkCluster, dead: str) -> int:
    """Durable records on the dead node's device beyond the highest
    surviving ack — the suffix failover is allowed to discard (none of
    it was ever acknowledged to a client)."""
    records, _torn = parse_log(cluster.nodes[dead].device.read_log())
    dead_last = records[-1].lsn if records else 0
    surviving = max(
        (
            node.acked_lsn
            for name, node in cluster.nodes.items()
            if name != dead and cluster.network.alive(name)
        ),
        default=0,
    )
    return max(0, dead_last - surviving)


def _settle(cluster: NetmarkCluster, faulted: str) -> None:
    """Re-elect, revive the victim, and bring every survivor in sync."""
    budget = 20 * (cluster.heartbeat_timeout + 2)
    while cluster.coordinator is None and budget > 0:
        cluster.tick(1)
        budget -= 1
    if not cluster.network.alive(faulted):
        cluster.revive(faulted)
    if cluster.coordinator is not None:
        for name in cluster.network.nodes:
            node = cluster.nodes[name]
            if (
                name == cluster.coordinator
                or not cluster.network.alive(name)
                or node.quarantine is not None
            ):
                continue
            cluster.catch_up(name)


def _assess(
    cluster: NetmarkCluster,
    index: int,
    kind: str,
    drive: DriveReport,
    faulted: str,
) -> FailoverPoint:
    _settle(cluster, faulted)
    missing = 0
    for receipt in cluster.ledger:
        for name, node in cluster.nodes.items():
            store = None
            if node.store is not None:
                store = node.store
            elif node.replica is not None and node.quarantine is None:
                store = node.replica.store
            if store is None:
                continue
            if store.lookup_by_name(receipt.file_name) is None:
                missing += 1
    dumps = list(cluster.dumps().values())
    converged = len(dumps) >= 2 and len(set(dumps)) == 1
    fsck_clean = True
    for name, node in cluster.nodes.items():
        database = None
        if node.store is not None:
            database = node.store.database
        elif node.replica is not None and node.quarantine is None:
            database = node.replica.database
        if database is not None and not check_store(database).ok:
            fsck_clean = False
    kill_tick = next(
        (
            event.tick
            for event in cluster.network.events
            if event.kind == "node-kill"
        ),
        None,
    )
    failover_ticks = 0
    if kill_tick is not None:
        election_tick = next(
            (
                record.tick
                for record in cluster.elections
                if record.tick >= kill_tick
            ),
            None,
        )
        if election_tick is not None:
            failover_ticks = election_tick - kill_tick
    return FailoverPoint(
        index=index,
        kind=kind,
        died_at_boot=False,
        acked=drive.acked,
        lost=missing,
        converged=converged,
        fsck_clean=fsck_clean,
        failover_ticks=failover_ticks,
        lag_at_kill=drive.lag_at_kill,
        winner=cluster.coordinator,
    )


def _kill_matrix(
    faulted: str,
    documents: Sequence[tuple[str, str]],
    kinds: Sequence[str],
    nodes: Sequence[str],
    heartbeat_timeout: int,
) -> FailoverMatrix:
    counter = _CountingDevice(MemoryLogDevice())
    baseline = NetmarkCluster(
        list(nodes),
        heartbeat_timeout=heartbeat_timeout,
        devices={faulted: counter},
    )
    base_drive = drive_ingest(baseline, documents)
    component = f"wal-{faulted}"
    points: list[FailoverPoint] = []
    for kind in kinds:
        for index in range(1, counter.appends + 1):
            plan = FaultPlan()
            plan.fail(
                component, "append", kind=kind, after=index - 1, times=1
            )
            device = plan.wrap_log_device(MemoryLogDevice(), component)
            try:
                cluster = NetmarkCluster(
                    list(nodes),
                    heartbeat_timeout=heartbeat_timeout,
                    devices={faulted: device},
                )
            except CrashError:
                # Death during bootstrap: no cluster, no ledger, nothing
                # to lose.  Recorded so the matrix width stays honest.
                points.append(
                    FailoverPoint(
                        index=index, kind=kind, died_at_boot=True,
                        acked=0, lost=0, converged=True, fsck_clean=True,
                        failover_ticks=0, lag_at_kill=None, winner=None,
                    )
                )
                continue
            drive = drive_ingest(cluster, documents, faulted=faulted)
            points.append(_assess(cluster, index, kind, drive, faulted))
    return FailoverMatrix(
        faulted=faulted,
        total_appends=counter.appends,
        baseline_acked=base_drive.acked,
        points=tuple(points),
    )


def coordinator_kill_matrix(
    documents: Sequence[tuple[str, str]] = DOCS,
    kinds: Sequence[str] = ("crash", "torn"),
    nodes: Sequence[str] = DEFAULT_NODES,
    heartbeat_timeout: int = 3,
) -> FailoverMatrix:
    """Kill the initial coordinator at every append of its device."""
    return _kill_matrix(nodes[0], documents, kinds, nodes, heartbeat_timeout)


def follower_kill_matrix(
    documents: Sequence[tuple[str, str]] = DOCS,
    kinds: Sequence[str] = ("crash", "torn"),
    nodes: Sequence[str] = DEFAULT_NODES,
    heartbeat_timeout: int = 3,
) -> FailoverMatrix:
    """Kill one follower at every append of its device (no election —
    the write path survives on the remaining majority)."""
    return _kill_matrix(nodes[1], documents, kinds, nodes, heartbeat_timeout)


# ---------------------------------------------------------------------------
# Partition drill
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionDrill:
    """What the minority-coordinator partition exercise observed."""

    demoted: str
    winner: str | None
    refused_in_minority: int
    acked_total: int
    lost: int
    converged: bool
    fsck_clean: bool
    failover_ticks: int


def partition_drill(
    documents: Sequence[tuple[str, str]] = DOCS,
    heartbeat_timeout: int = 2,
) -> PartitionDrill:
    """Partition a 5-node cluster so the coordinator is in the minority.

    The coordinator must refuse writes (quorum pre-check), self-demote,
    and the majority side must elect a replacement; after healing, every
    node reconverges and nothing acknowledged is lost.
    """
    names = ["n1", "n2", "n3", "n4", "n5"]
    cluster = NetmarkCluster(names, heartbeat_timeout=heartbeat_timeout)
    cluster.tick(1)
    first = cluster.coordinator
    assert first is not None
    cluster.ingest(*documents[0])
    cluster.tick(1)
    minority = [first, _other(names, first)]
    majority = [name for name in names if name not in minority]
    cluster.partition(minority, majority)
    partition_tick = cluster.clock.now()
    refused = 0
    try:
        cluster.ingest("minority.md", "# Never\n\nMust not commit.\n")
    except NoQuorumError:
        refused += 1
    cluster.tick(heartbeat_timeout + 2)
    winner = cluster.coordinator
    failover_ticks = (
        cluster.elections[-1].tick - partition_tick
        if cluster.elections
        else 0
    )
    for file_name, content in documents[1:]:
        cluster.ingest(file_name, content)
        cluster.tick(1)
    cluster.heal()
    cluster.tick(heartbeat_timeout + 2)
    for name in names:
        if name != cluster.coordinator and not cluster.nodes[name].in_sync:
            cluster.catch_up(name)
    missing = sum(
        1
        for receipt in cluster.ledger
        for node in cluster.nodes.values()
        if (node.store or (node.replica.store if node.replica else None))
        and (node.store or node.replica.store).lookup_by_name(
            receipt.file_name
        )
        is None
    )
    dumps = list(cluster.dumps().values())
    fsck_clean = all(
        check_store(
            (node.store or node.replica.store).database
        ).ok
        for node in cluster.nodes.values()
        if node.store is not None or node.replica is not None
    )
    return PartitionDrill(
        demoted=first,
        winner=winner,
        refused_in_minority=refused,
        acked_total=len(cluster.ledger),
        lost=missing,
        converged=len(dumps) == len(names) and len(set(dumps)) == 1,
        fsck_clean=fsck_clean,
        failover_ticks=failover_ticks,
    )


def _other(names: Sequence[str], taken: str) -> str:
    return next(name for name in names if name != taken)


# ---------------------------------------------------------------------------
# 2PC crash matrix
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TwoPhasePoint:
    """One scripted coordinator death inside the 2PC state machine."""

    operation: str  # which protocol gate fired
    occurrence: int  # 1-based occurrence of that gate
    crashed: bool
    #: Post-recovery: the document is on every participant or on none.
    atomic: bool
    committed_everywhere: bool


@dataclass(frozen=True)
class TwoPhaseMatrix:
    points: tuple[TwoPhasePoint, ...]

    @property
    def all_atomic(self) -> bool:
        return all(point.atomic for point in self.points)


def twopc_crash_matrix(
    participants: int = 2,
    document: tuple[str, str] = DOCS[0],
) -> TwoPhaseMatrix:
    """Kill the 2PC coordinator at every gate; recovery must keep the
    all-or-nothing promise.

    Participants survive each crash (only the coordinator process dies);
    the journal is the sole recovery input — exactly the asymmetry the
    payload-carrying PREPARE records exist for.
    """
    file_name, content = document
    gates = [("prepare", participants), ("decide", 1),
             ("commit", participants)]
    points: list[TwoPhasePoint] = []
    for operation, occurrences in gates:
        for occurrence in range(1, occurrences + 1):
            journal_device = MemoryLogDevice()
            stores = {
                f"s{i}": XmlStore() for i in range(1, participants + 1)
            }
            members = {
                name: StoreParticipant(name, store)
                for name, store in stores.items()
            }
            plan = FaultPlan()
            plan.fail(
                "2pc", operation, kind="crash",
                after=occurrence - 1, times=1,
            )
            coordinator = TwoPhaseCoordinator(
                DecisionLog(journal_device), members, faults=plan
            )
            crashed = False
            try:
                coordinator.ingest("txn-1", file_name, content)
            except CrashError:
                crashed = True
            # Restart: a fresh coordinator over the same journal and the
            # surviving participants finishes whatever was unresolved.
            TwoPhaseCoordinator(
                DecisionLog(journal_device), members
            ).recover()
            present = [
                store.lookup_by_name(file_name) is not None
                for store in stores.values()
            ]
            points.append(
                TwoPhasePoint(
                    operation=operation,
                    occurrence=occurrence,
                    crashed=crashed,
                    atomic=all(present) or not any(present),
                    committed_everywhere=all(present),
                )
            )
    return TwoPhaseMatrix(points=tuple(points))


# Re-exported for callers that assert on decisions.
__all__ = [
    "ABORT",
    "COMMIT",
    "DOCS",
    "DriveReport",
    "FailoverMatrix",
    "FailoverPoint",
    "PartitionDrill",
    "TwoPhaseMatrix",
    "TwoPhasePoint",
    "coordinator_kill_matrix",
    "drive_ingest",
    "follower_kill_matrix",
    "partition_drill",
    "twopc_crash_matrix",
]
