"""repro.cluster — replicated Netmark: WAL shipping, election, failover.

The paper's middleware is "lean" because each node is nothing more than
an intelligent storage component; this package makes N of them act as
one service that survives node deaths without losing an acknowledged
ingest.  Everything is built from machinery the repo already has:

* replication is **WAL shipping** — the coordinator's own durable log
  records, re-applied through the same ARIES-lite replay that crash
  recovery uses (:mod:`repro.cluster.ship`, :mod:`repro.cluster.replica`);
* failover is a **bully election** on heartbeats over the simulated
  network, preferring the most caught-up in-sync replica and gated by a
  majority quorum (:mod:`repro.cluster.election`);
* federated writes run **two-phase commit** with a journaled, payload-
  carrying coordinator (:mod:`repro.cluster.twophase`);
* :class:`~repro.cluster.cluster.NetmarkCluster` ties it together and is
  the OS stand-in for its nodes — the one place an injected
  :class:`~repro.errors.CrashError` is allowed to stop meaning "the test
  is over" and start meaning "that node is gone".

Everything runs on the logical clock with seeded randomness: a failover
trace — heartbeats, elections, 2PC decisions, kills — replays
bit-for-bit from its fault-plan seed.
"""

from repro.cluster.cluster import (
    COORDINATOR,
    FOLLOWER,
    ClusterNode,
    ClusterStats,
    IngestReceipt,
    NetmarkCluster,
    NodeView,
)
from repro.cluster.election import ElectionRecord, elect
from repro.cluster.replica import FollowerReplica
from repro.cluster.ship import CheckpointBundle, LogShipper, ShipBatch
from repro.cluster.twophase import (
    DecisionLog,
    StoreParticipant,
    TwoPhaseCoordinator,
    TwoPhaseOutcome,
)

__all__ = [
    "COORDINATOR",
    "FOLLOWER",
    "CheckpointBundle",
    "ClusterNode",
    "ClusterStats",
    "DecisionLog",
    "ElectionRecord",
    "FollowerReplica",
    "IngestReceipt",
    "LogShipper",
    "NetmarkCluster",
    "NodeView",
    "ShipBatch",
    "StoreParticipant",
    "TwoPhaseCoordinator",
    "TwoPhaseOutcome",
    "elect",
]
