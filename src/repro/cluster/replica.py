"""The follower replica: applies shipped WAL records, acks durable LSNs.

A :class:`FollowerReplica` owns one log device (its "disk") and the
in-memory state recovered from it.  Shipped records are first appended
to the device and synced — *then* applied to memory and acknowledged, so
an acked LSN is always durable on the follower and a follower killed
mid-batch reopens from its last durable record (any torn tail trimmed by
:func:`~repro.ordbms.recovery.recover_follower`).

A follower never allocates LSNs: it has no
:class:`~repro.ordbms.wal.WriteAheadLog`, and its
:class:`~repro.ordbms.recovery.StreamReplayer` deliberately leaves
in-flight transactions *open* across reopens — the coordinator may still
ship the COMMIT, or a promoted coordinator ships an explicit ROLLBACK.
Reads go through the ordinary :class:`~repro.store.xmlstore.XmlStore`
facade adopted over the replayed database.
"""

from __future__ import annotations

from repro import obs
from repro.errors import ClusterError
from repro.ordbms.recovery import recover_follower
from repro.ordbms.snapshot import dump_database
from repro.ordbms.wal import (
    LogDevice,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.sgml.config import DEFAULT_CONFIG, NodeTypeConfig
from repro.store.xmlstore import XmlStore

from repro.cluster.ship import CheckpointBundle, ShipBatch


def _install(device: LogDevice, bundle: CheckpointBundle) -> None:
    """Replace a device's durable content with the bundle's, atomically
    enough for the simulation: checkpoint slot first (its save is the
    atomic step on real devices), then the log."""
    lsn, _ = decode_checkpoint(bundle.checkpoint_text)
    if lsn < 0:
        raise ClusterError(f"bundle checkpoint carries negative LSN {lsn}")
    device.save_checkpoint(bundle.checkpoint_text)
    device.truncate_log()
    for record in bundle.tail:
        device.append(record.encode())
    device.sync()


class FollowerReplica:
    """One replica's applied state plus the device it recovers from."""

    def __init__(
        self,
        name: str,
        device: LogDevice,
        config: NodeTypeConfig = DEFAULT_CONFIG,
    ) -> None:
        self.name = name
        self.device = device
        self.config = config
        recovered = recover_follower(device, name)
        self.database = recovered.database
        self.replayer = recovered.replayer
        self.torn_tail = recovered.torn_tail
        self._store: XmlStore | None = None

    @classmethod
    def bootstrap(
        cls,
        name: str,
        device: LogDevice,
        bundle: CheckpointBundle,
        config: NodeTypeConfig = DEFAULT_CONFIG,
    ) -> "FollowerReplica":
        """Initialise a replica's device wholesale from a bundle.

        Used on first join (an empty device has no schema — checkpoints
        carry it) and on rejoin after quarantine, where the local log
        can no longer be trusted and must be replaced, not recovered.
        """
        _install(device, bundle)
        return cls(name, device, config)

    # -- identity -----------------------------------------------------------

    @property
    def applied_lsn(self) -> int:
        """Highest LSN applied to memory — equal to the durable ack."""
        return self.replayer.applied_lsn

    @property
    def acked_lsn(self) -> int:
        """The LSN this replica acknowledges to the coordinator.

        Identical to :attr:`applied_lsn` by construction: records are
        synced to the device before they are applied, so everything
        applied is durable.
        """
        return self.replayer.applied_lsn

    @property
    def in_flight(self) -> tuple[int, ...]:
        """Transactions begun in the stream but not yet resolved."""
        return self.replayer.in_flight

    @property
    def store(self) -> XmlStore:
        """Read-only store view over the applied state.

        Adopted lazily: a replica that was just bundle-bootstrapped has
        the NETMARK schema (checkpoints carry it); a genuinely empty
        database has nothing to adopt and raising beats pretending.
        """
        if self._store is None:
            self._store = XmlStore.adopt(self.database, self.config)
        return self._store

    def dump(self) -> str:
        """Canonical snapshot text — byte-identical across converged
        replicas (the convergence assertion the harness makes)."""
        return dump_database(self.database)

    # -- the apply path -----------------------------------------------------

    def apply_batch(self, batch: ShipBatch) -> int:
        """Durably append then apply one shipment; returns the new ack.

        Records at or below :attr:`applied_lsn` are skipped *and not
        re-appended* — re-shipping an overlap (catch-up after a bundle
        install) is idempotent on both the log and the state.
        """
        fresh = [
            record
            for record in batch.records
            if record.lsn > self.replayer.applied_lsn
        ]
        if not fresh:
            return self.acked_lsn
        for record in fresh:
            self.device.append(record.encode())
        self.device.sync()
        for record in fresh:
            self.replayer.apply(record)
        obs.inc(
            "repro_cluster_ship_records_total",
            len(fresh),
            replica=self.name,
        )
        return self.acked_lsn

    def install_bundle(self, bundle: CheckpointBundle) -> int:
        """Full resync: adopt the coordinator's checkpoint and log.

        Replaces this replica's durable state wholesale — checkpoint
        slot, log, and in-memory database all become copies of the
        coordinator's.  The one legal divergence repair: anything this
        replica had that the coordinator does not is discarded (it was
        never acknowledged to a client, or the coordinator would have
        it).
        """
        _install(self.device, bundle)
        recovered = recover_follower(self.device, self.name)
        self.database = recovered.database
        self.replayer = recovered.replayer
        self.torn_tail = recovered.torn_tail
        self._store = None
        obs.inc("repro_cluster_resyncs_total", replica=self.name)
        return self.acked_lsn

    def compact(self) -> int:
        """Fold applied state into this replica's own checkpoint slot.

        Cannot run while a shipped transaction is still open — the
        snapshot would capture its un-committed mutations as if they
        were permanent.  Returns the covered LSN.
        """
        if self.replayer.in_flight:
            raise ClusterError(
                f"replica {self.name} has open transactions "
                f"{self.replayer.in_flight}; compact between batches"
            )
        covered = self.applied_lsn
        self.device.save_checkpoint(
            encode_checkpoint(covered, self.dump())
        )
        self.device.truncate_log()
        self.device.sync()
        obs.inc("repro_cluster_compactions_total", replica=self.name)
        return covered
