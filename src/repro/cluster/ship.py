"""WAL shipping: the replication stream between coordinator and replicas.

Replication reuses the durability format wholesale — what ships is the
coordinator's own WAL records, re-encoded byte-for-byte, so a follower's
log device ends up holding the same text a local crash would recover
from.  A :class:`LogShipper` reads the coordinator's device and cuts
either a :class:`ShipBatch` (the tail of records past a follower's
acknowledged LSN) or, when the coordinator has checkpointed past what
the follower has, a :class:`CheckpointBundle` carrying the full
checkpoint slot plus the live log — the full-resync payload.

The shipper is read-only over the device: it never appends, never
truncates, and can therefore run against a live coordinator between any
two transactions (the single-writer engine guarantees the log ends on a
transaction boundary whenever control is outside ``Database.begin()``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import ClusterError
from repro.ordbms.wal import (
    LogDevice,
    WalRecord,
    decode_checkpoint,
    parse_log,
)


@dataclass(frozen=True)
class ShipBatch:
    """One shipment: records a follower is missing, in LSN order."""

    records: tuple[WalRecord, ...]

    @property
    def first_lsn(self) -> int:
        return self.records[0].lsn if self.records else 0

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class CheckpointBundle:
    """Full-resync payload: the coordinator's checkpoint slot + live log.

    ``checkpoint_text`` is the *encoded* slot (magic, covered LSN, CRC,
    snapshot) so the receiving replica installs it verbatim and its next
    reopen verifies the same CRC the coordinator's would.
    """

    checkpoint_text: str
    tail: tuple[WalRecord, ...]

    @property
    def checkpoint_lsn(self) -> int:
        lsn, _ = decode_checkpoint(self.checkpoint_text)
        return lsn

    @property
    def last_lsn(self) -> int:
        if self.tail:
            return self.tail[-1].lsn
        return self.checkpoint_lsn


class LogShipper:
    """Read side of replication, bound to one coordinator log device."""

    def __init__(self, device: LogDevice, component: str = "ship") -> None:
        self.device = device
        self.component = component
        self.batches_cut = 0

    def checkpoint_lsn(self) -> int:
        """LSN covered by the device's checkpoint slot (0 when none)."""
        text = self.device.load_checkpoint()
        if text is None:
            return 0
        lsn, _ = decode_checkpoint(text)
        return lsn

    def log_records(self) -> tuple[WalRecord, ...]:
        """Every record currently in the live log.

        The coordinator's log is never torn while the process is alive
        (shipping happens between transactions), so a parse failure here
        is real damage and propagates as
        :class:`~repro.errors.CorruptLogError`.
        """
        records, torn_tail = parse_log(self.device.read_log())
        if torn_tail is not None:
            raise ClusterError(
                f"coordinator log ends in a torn record ({torn_tail}); "
                f"refusing to ship an unfinished transaction"
            )
        return tuple(records)

    def can_ship_from(self, acked_lsn: int) -> bool:
        """Can a follower at ``acked_lsn`` catch up by tail shipping?

        Only when every record past ``acked_lsn`` is still in the live
        log — i.e. the coordinator has not checkpointed past the
        follower.  Otherwise the follower needs :meth:`bundle`.
        """
        return acked_lsn >= self.checkpoint_lsn()

    def batch_after(self, acked_lsn: int) -> ShipBatch:
        """Cut the tail of records with LSNs above ``acked_lsn``.

        Raises :class:`~repro.errors.ClusterError` when the gap is no
        longer shippable (records folded into a checkpoint) — callers
        check :meth:`can_ship_from` and fall back to :meth:`bundle`.
        """
        if not self.can_ship_from(acked_lsn):
            raise ClusterError(
                f"records after LSN {acked_lsn} were folded into the "
                f"checkpoint at LSN {self.checkpoint_lsn()}; "
                f"follower needs a full resync bundle"
            )
        records = tuple(
            record
            for record in self.log_records()
            if record.lsn > acked_lsn
        )
        self.batches_cut += 1
        obs.inc("repro_cluster_ship_batches_total", component=self.component)
        obs.observe(
            "repro_cluster_ship_batch_records",
            len(records),
            component=self.component,
        )
        return ShipBatch(records=records)

    def bundle(self) -> CheckpointBundle:
        """Cut the full-resync payload: checkpoint slot + live log."""
        text = self.device.load_checkpoint()
        if text is None:
            raise ClusterError(
                "coordinator device has no checkpoint slot; a replica "
                "cannot bootstrap without the schema baseline"
            )
        obs.inc(
            "repro_cluster_ship_bundles_total", component=self.component
        )
        return CheckpointBundle(
            checkpoint_text=text, tail=self.log_records()
        )
